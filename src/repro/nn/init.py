"""Weight-initialisation schemes for the neural substrate.

Orthogonal initialisation with per-layer gains is the standard PPO recipe
(policy head gain 0.01, value head gain 1.0, hidden gain sqrt(2)); Xavier
uniform is provided for comparison/ablation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = ["orthogonal", "xavier_uniform", "zeros", "constant"]


def orthogonal(
    fan_in: int, fan_out: int, *, gain: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """An orthogonal ``(fan_in, fan_out)`` weight matrix scaled by ``gain``.

    Rows/columns are orthonormal (whichever dimension is smaller), obtained
    from the QR decomposition of a Gaussian matrix with sign correction so
    the distribution is uniform over the orthogonal group.
    """
    if fan_in < 1 or fan_out < 1:
        raise ValueError(f"fan_in/fan_out must be >= 1, got {fan_in}, {fan_out}")
    rng = as_generator(seed)
    rows, cols = max(fan_in, fan_out), min(fan_in, fan_out)
    gaussian = rng.normal(size=(rows, cols))
    q, r = np.linalg.qr(gaussian)
    q *= np.sign(np.diag(r))  # make the factorisation unique/uniform
    if fan_in < fan_out:
        q = q.T
    # C-order is a contract, not a nicety: BLAS kernels pick summation
    # orders by operand layout, so a transposed (Fortran-ordered) weight
    # would make batch-1 forwards bitwise-diverge from the same weights
    # adopted into a flat optimiser buffer.
    return np.ascontiguousarray(gain * q[:fan_in, :fan_out])


def xavier_uniform(
    fan_in: int, fan_out: int, *, gain: float = 1.0, seed: SeedLike = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in < 1 or fan_out < 1:
        raise ValueError(f"fan_in/fan_out must be >= 1, got {fan_in}, {fan_out}")
    rng = as_generator(seed)
    limit = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """A zero array (bias initialisation)."""
    return np.zeros(shape)


def constant(value: float, *shape: int) -> np.ndarray:
    """A constant-filled array (e.g. initial log-std)."""
    return np.full(shape, float(value))
