"""From-scratch numpy neural-network substrate (PyTorch replacement).

Provides the reverse-mode autograd tensor, nn-style modules, optimisers,
and the Gaussian policy distribution used by :mod:`repro.drl`.
"""

from repro.nn.distributions import DiagonalGaussian
from repro.nn.init import constant, orthogonal, xavier_uniform, zeros
from repro.nn.modules import MLP, Identity, Linear, Module, ReLU, Sequential, Tanh
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "DiagonalGaussian",
    "constant",
    "orthogonal",
    "xavier_uniform",
    "zeros",
    "MLP",
    "Identity",
    "Linear",
    "Module",
    "ReLU",
    "Sequential",
    "Tanh",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "Tensor",
    "is_grad_enabled",
    "no_grad",
]
