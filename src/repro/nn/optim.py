"""First-order optimisers: SGD (with momentum) and Adam.

The paper trains with Adam at lr = 1e-5 (Sec. V-A). Both optimisers also
implement global-norm gradient clipping, the standard PPO stabiliser.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.errors import NeuralNetworkError
from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm. Parameters without gradients are skipped.
    """
    if max_norm <= 0.0:
        raise NeuralNetworkError(f"max_norm must be > 0, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float((g**2).sum()) for g in grads))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float) -> None:
        self._parameters = list(parameters)
        if not self._parameters:
            raise NeuralNetworkError("optimizer received no parameters")
        if learning_rate <= 0.0:
            raise NeuralNetworkError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    @property
    def parameters(self) -> list[Tensor]:
        """The parameters this optimiser updates."""
        return self._parameters

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for parameter in self._parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float,
        *,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise NeuralNetworkError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self._parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self._parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.data = parameter.data + velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 1e-5,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise NeuralNetworkError(
                f"betas must be in [0, 1), got {beta1}, {beta2}"
            )
        if epsilon <= 0.0:
            raise NeuralNetworkError(f"epsilon must be > 0, got {epsilon}")
        self.beta1, self.beta2, self.epsilon = float(beta1), float(beta2), float(epsilon)
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self._parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self._parameters]

    @property
    def step_count(self) -> int:
        """Number of updates applied so far."""
        return self._step_count

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(
            self._parameters, self._first_moment, self._second_moment
        ):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )
