"""First-order optimisers: SGD (with momentum) and Adam.

The paper trains with Adam at lr = 1e-5 (Sec. V-A). Both optimisers also
implement global-norm gradient clipping, the standard PPO stabiliser.

Two families live here:

- the reference per-parameter optimisers (:class:`SGD`, :class:`Adam`)
  that loop over the parameter list — the seed implementation, kept as
  the bitwise ground truth;
- the fused flat-parameter optimisers (:class:`FlatSGD`,
  :class:`FlatAdam`) that re-bind every parameter's data as a view into
  one contiguous buffer so the whole update (including global-norm
  clipping) is a handful of array operations instead of ``N`` Python-loop
  updates.  The fused update is bitwise-identical to the per-parameter
  path (pinned by ``tests/test_backend_conformance.py``).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.backend import xp

from repro.errors import NeuralNetworkError
from repro.nn.tensor import Tensor

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "FlatOptimizer",
    "FlatSGD",
    "FlatAdam",
    "clip_grad_norm",
    "global_grad_norm",
]


def global_grad_norm(grads: Sequence) -> float:
    """Global L2 norm of a gradient list in one fused reduction.

    The per-array squared sums are stacked and reduced *sequentially*
    (``cumsum``), which is the exact association order of the reference
    ``sum(float((g**2).sum()) for g in grads)`` Python loop — so the
    result is bitwise-identical — while crossing the array/host boundary
    once instead of once per parameter.
    """
    if not grads:
        return 0.0
    squares = xp.stack([(g**2).sum() for g in grads])
    return float(xp.sqrt(xp.cumsum(squares)[-1]))


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm. Parameters without gradients are skipped.
    The norm is computed by :func:`global_grad_norm` — one fused reduction,
    bitwise-equal to the historical per-parameter Python sum.
    """
    if max_norm <= 0.0:
        raise NeuralNetworkError(f"max_norm must be > 0, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    total = global_grad_norm(grads)
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float) -> None:
        self._parameters = list(parameters)
        if not self._parameters:
            raise NeuralNetworkError("optimizer received no parameters")
        if learning_rate <= 0.0:
            raise NeuralNetworkError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    @property
    def parameters(self) -> list[Tensor]:
        """The parameters this optimiser updates."""
        return self._parameters

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for parameter in self._parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float,
        *,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise NeuralNetworkError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [xp.zeros_like(p.data) for p in self._parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self._parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.data = parameter.data + velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 1e-5,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise NeuralNetworkError(
                f"betas must be in [0, 1), got {beta1}, {beta2}"
            )
        if epsilon <= 0.0:
            raise NeuralNetworkError(f"epsilon must be > 0, got {epsilon}")
        self.beta1, self.beta2, self.epsilon = float(beta1), float(beta2), float(epsilon)
        self._step_count = 0
        self._first_moment = [xp.zeros_like(p.data) for p in self._parameters]
        self._second_moment = [xp.zeros_like(p.data) for p in self._parameters]

    @property
    def step_count(self) -> int:
        """Number of updates applied so far."""
        return self._step_count

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(
            self._parameters, self._first_moment, self._second_moment
        ):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.learning_rate * m_hat / (
                xp.sqrt(v_hat) + self.epsilon
            )


class FlatOptimizer(Optimizer):
    """Optimiser whose parameters are views into one contiguous buffer.

    On construction every parameter's ``data`` array is re-bound
    (values preserved) to a slice of a single flat float64 vector, so a
    full update — gradient gather, global-norm clip, and the first-order
    rule — is a handful of whole-buffer array operations instead of a
    Python loop over ``N`` parameters. The arithmetic is elementwise, so
    each parameter receives bitwise the numbers the per-parameter
    reference optimiser produces.

    Callers that compute gradients themselves (the fused PPO update) can
    write them directly into :attr:`grad_views` and call
    :meth:`fused_step` with ``from_views=True``, skipping the per-tensor
    ``.grad`` round trip entirely. If any code re-binds a parameter's
    ``data`` (``Module.load_state_dict`` does), the next step re-adopts
    the new values into the flat buffer transparently.

    Unlike :func:`clip_grad_norm`, the fused clip scales the optimiser's
    private gradient buffer, not the parameters' ``.grad`` arrays.

    Parameters are adopted in C order (the layout every ``nn.init``
    scheme guarantees); supplying a Fortran-ordered parameter would
    change its memory layout and hence layout-sensitive BLAS results.
    """

    # Segment starts are padded to 64-byte boundaries so every parameter
    # view keeps the alignment class of a standalone numpy allocation —
    # BLAS kernels (notably the batch-1 matvec) pick summation orders by
    # operand alignment, and an 8-byte-odd view would break the bitwise
    # contract with the never-rebound reference network.
    _ALIGN = 8  # float64 elements per 64 bytes

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float) -> None:
        super().__init__(parameters, learning_rate)
        segments: list[tuple[int, int]] = []
        cursor = 0
        for parameter in self._parameters:
            size = int(parameter.data.size)
            segments.append((cursor, size))
            cursor += -(-size // self._ALIGN) * self._ALIGN
        self._segments = segments
        self._size = cursor
        self._theta = xp.zeros(self._size, dtype=xp.float64)
        self._grad = xp.zeros(self._size, dtype=xp.float64)
        # Step scratch: the update rules run allocation-free through these
        # (elementwise ops with the reference association order, so out=
        # changes no bits — only where the temporaries live).
        self._scratch_a = xp.zeros(self._size, dtype=xp.float64)
        self._scratch_b = xp.zeros(self._size, dtype=xp.float64)
        self._views: list = []
        self._grad_views: list = []
        for parameter, (start, size) in zip(self._parameters, segments):
            view = self._theta[start : start + size].reshape(parameter.data.shape)
            view[...] = parameter.data
            parameter.data = view
            self._views.append(view)
            self._grad_views.append(
                self._grad[start : start + size].reshape(view.shape)
            )

    @property
    def flat_parameters(self):
        """The contiguous parameter vector (the parameters view into it;
        segments are 64-byte aligned, so padding cells — always zero —
        sit between them)."""
        return self._theta

    @property
    def flat_grad(self):
        """The contiguous gradient buffer backing :attr:`grad_views`."""
        return self._grad

    @property
    def grad_views(self) -> list:
        """Per-parameter views into :attr:`flat_grad`, in parameter order."""
        return list(self._grad_views)

    def _adopt(self) -> None:
        """Re-attach any parameter whose ``data`` was re-bound elsewhere."""
        for parameter, view in zip(self._parameters, self._views):
            if parameter.data is not view:
                view[...] = parameter.data
                parameter.data = view

    def _begin_step(self) -> None:
        """Per-step bookkeeping before the update (e.g. Adam's counter)."""

    def _flat_grad_norm(self) -> float:
        """Global L2 norm of the whole gradient buffer.

        Bitwise-equal to :func:`global_grad_norm` over the per-parameter
        views: one squared-multiply over the flat buffer, then per-segment
        slice sums accumulated left-to-right (each 1-D slice covers the
        same C-contiguous memory as its reshaped view, so numpy's pairwise
        reduction returns the identical bits; padding cells are outside
        every slice). Saves the per-view square allocations and the
        stack/cumsum round trip on the per-update hot path.
        """
        squares = self._scratch_a
        xp.multiply(self._grad, self._grad, out=squares)
        total = 0.0
        for start, size in self._segments:
            total += float(squares[start : start + size].sum())
        return math.sqrt(total)

    def _apply_flat(self) -> None:
        """Apply the update rule to the whole flat buffer at once."""
        raise NotImplementedError

    def _apply_segments(self, active: list[int]) -> None:
        """Apply the update rule to the given parameter segments only."""
        raise NotImplementedError

    def fused_step(
        self, *, max_grad_norm: float | None = None, from_views: bool = False
    ) -> float | None:
        """Gather gradients, optionally clip, and apply one fused update.

        With ``from_views=True`` the caller has already written every
        gradient into :attr:`grad_views` and all parameters participate;
        otherwise gradients are gathered from each parameter's ``.grad``
        and parameters with ``grad is None`` are skipped, exactly like
        the per-parameter reference optimisers.

        Returns the pre-clip global gradient norm when ``max_grad_norm``
        is given (matching :func:`clip_grad_norm`), else ``None``.
        """
        self._adopt()
        if from_views:
            active = list(range(len(self._parameters)))
        else:
            active = []
            for index, parameter in enumerate(self._parameters):
                if parameter.grad is not None:
                    self._grad_views[index][...] = parameter.grad
                    active.append(index)
        norm: float | None = None
        if max_grad_norm is not None:
            if max_grad_norm <= 0.0:
                raise NeuralNetworkError(f"max_norm must be > 0, got {max_grad_norm}")
            norm = (
                self._flat_grad_norm()
                if len(active) == len(self._parameters)
                else global_grad_norm([self._grad_views[i] for i in active])
            )
            if norm > max_grad_norm and norm > 0.0:
                scale = max_grad_norm / norm
                if len(active) == len(self._parameters):
                    self._grad *= scale
                else:
                    for index in active:
                        self._grad_views[index] *= scale
        self._begin_step()
        if len(active) == len(self._parameters):
            self._apply_flat()
        elif active:
            self._apply_segments(active)
        return norm

    def step(self) -> None:
        self.fused_step()


class FlatSGD(FlatOptimizer):
    """Fused flat-buffer SGD, bitwise-equal to :class:`SGD`."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float,
        *,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise NeuralNetworkError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = xp.zeros(self._size, dtype=xp.float64)

    def _apply_flat(self) -> None:
        velocity = self._velocity
        scaled = self._scratch_a
        velocity *= self.momentum
        xp.multiply(self._grad, self.learning_rate, out=scaled)
        velocity -= scaled
        self._theta += velocity

    def _apply_segments(self, active: list[int]) -> None:
        for index in active:
            start, size = self._segments[index]
            end = start + size
            velocity = self._velocity[start:end]
            velocity *= self.momentum
            velocity -= self.learning_rate * self._grad[start:end]
            self._theta[start:end] += velocity


class FlatAdam(FlatOptimizer):
    """Fused flat-buffer Adam, bitwise-equal to :class:`Adam`."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 1e-5,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise NeuralNetworkError(
                f"betas must be in [0, 1), got {beta1}, {beta2}"
            )
        if epsilon <= 0.0:
            raise NeuralNetworkError(f"epsilon must be > 0, got {epsilon}")
        self.beta1, self.beta2, self.epsilon = float(beta1), float(beta2), float(epsilon)
        self._step_count = 0
        self._first_moment = xp.zeros(self._size, dtype=xp.float64)
        self._second_moment = xp.zeros(self._size, dtype=xp.float64)

    @property
    def step_count(self) -> int:
        """Number of updates applied so far."""
        return self._step_count

    def _begin_step(self) -> None:
        self._step_count += 1

    def _apply_flat(self) -> None:
        # Allocation-free replica of the reference rule: every out= op is
        # elementwise with the reference's association (and scalar factors
        # commuted, which multiplication rounding permits), so each cell
        # receives bitwise the per-parameter Adam numbers.
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        grad = self._grad
        m = self._first_moment
        v = self._second_moment
        a = self._scratch_a
        b = self._scratch_b
        m *= self.beta1
        xp.multiply(grad, 1.0 - self.beta1, out=a)
        m += a
        v *= self.beta2
        xp.multiply(grad, grad, out=a)  # grad**2: one multiply, one rounding
        a *= 1.0 - self.beta2
        v += a
        xp.divide(m, bias1, out=a)  # m_hat
        a *= self.learning_rate
        xp.divide(v, bias2, out=b)  # v_hat
        xp.sqrt(b, out=b)
        b += self.epsilon
        a /= b
        self._theta -= a

    def _apply_segments(self, active: list[int]) -> None:
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index in active:
            start, size = self._segments[index]
            end = start + size
            grad = self._grad[start:end]
            m = self._first_moment[start:end]
            v = self._second_moment[start:end]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            self._theta[start:end] -= self.learning_rate * m_hat / (
                xp.sqrt(v_hat) + self.epsilon
            )
