"""A minimal reverse-mode autograd engine over numpy arrays.

This is the PyTorch replacement for the paper's actor-critic PPO (the
execution environment has no torch). It implements exactly the operator set
the DRL stack needs — dense linear algebra, pointwise nonlinearities, and
the clip/minimum ops of the PPO surrogate — with full broadcasting support
and gradient accumulation through shared sub-graphs.

Design notes:
- ``Tensor`` wraps a float64 ``numpy.ndarray``; gradients are plain arrays.
- The graph is built eagerly; ``backward()`` runs a topological sort and
  calls each node's pull-back closure.
- Broadcasting is handled by summing gradients over broadcast axes
  (:func:`_unbroadcast`), so biases and scalar coefficients "just work".
- Gradient correctness for every op is verified against central finite
  differences in ``tests/test_nn_tensor.py``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.backend import xp

from repro.errors import GradientError

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad)."""

    def __enter__(self) -> None:
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Whether new operations will be recorded on the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: xp.ndarray, shape: tuple[int, ...]) -> xp.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy-backed autograd tensor.

    Attributes:
        data: the underlying float64 array.
        grad: accumulated gradient (same shape as ``data``), or None.
        requires_grad: whether this tensor participates in autograd.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: xp.ndarray | float | int | list,
        *,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[xp.ndarray], None] | None = None,
    ) -> None:
        self.data = xp.asarray(data, dtype=xp.float64)
        self.grad: xp.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """A zero-filled tensor."""
        return Tensor(xp.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """A one-filled tensor."""
        return Tensor(xp.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def _lift(value: "Tensor | float | int | xp.ndarray") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------ #
    # shape / dtype conveniences
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def item(self) -> float:
        """The value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item(self)

    def numpy(self) -> xp.ndarray:
        """A detached copy of the data."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------ #
    # graph plumbing
    # ------------------------------------------------------------------ #
    def _make(
        self,
        data: xp.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[xp.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: xp.ndarray) -> None:
        grad = _unbroadcast(xp.asarray(grad, dtype=xp.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, gradient: xp.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            gradient: seed gradient; defaults to 1 (requires a scalar).

        Raises:
            GradientError: if called on a non-scalar without a seed, or on
                a tensor outside any graph.
        """
        if not self.requires_grad:
            raise GradientError("backward() on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise GradientError(
                    f"backward() without a gradient requires a scalar, "
                    f"got shape {self.shape}"
                )
            gradient = xp.ones_like(self.data)

        # Topological order via iterative DFS (recursion-free: graphs from
        # long rollouts can exceed Python's recursion limit).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(xp.asarray(gradient, dtype=xp.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic ops
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other = Tensor._lift(other)

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad)
            other.requires_grad and other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self + (-Tensor._lift(other))

    def __rsub__(self, other: float) -> "Tensor":
        return Tensor._lift(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other = Tensor._lift(other)

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad * other.data)
            other.requires_grad and other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other = Tensor._lift(other)

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad / other.data)
            other.requires_grad and other._accumulate(
                -grad * self.data / (other.data**2)
            )

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: float) -> "Tensor":
        return Tensor._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(
                grad * exponent * self.data ** (exponent - 1)
            )

        return self._make(self.data**exponent, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        """2-D matrix multiplication (batched inputs as (batch, features))."""
        other = Tensor._lift(other)

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad @ other.data.T)
            other.requires_grad and other._accumulate(self.data.T @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # pointwise nonlinearities
    # ------------------------------------------------------------------ #
    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        out_data = xp.tanh(self.data)

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Rectified linear unit."""

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad * (self.data > 0.0))

        return self._make(xp.maximum(self.data, 0.0), (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = xp.exp(self.data)

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural log."""

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad / self.data)

        return self._make(xp.log(self.data), (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid."""
        out_data = 1.0 / (1.0 + xp.exp(-self.data))

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def clamp(self, low: float, high: float) -> "Tensor":
        """Clip values to ``[low, high]``; gradient is zero outside.

        This is the ``f_clip`` of Eq. (19).
        """
        if low > high:
            raise ValueError(f"clamp bounds inverted: {low} > {high}")
        inside = (self.data >= low) & (self.data <= high)

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad * inside)

        return self._make(xp.clip(self.data, low, high), (self,), backward)

    def minimum(self, other: "Tensor") -> "Tensor":
        """Elementwise minimum; subgradient routes to the smaller branch
        (ties split evenly). Used by the PPO surrogate ``min(·,·)``."""
        other = Tensor._lift(other)
        self_smaller = self.data < other.data
        tie = self.data == other.data

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(
                grad * (self_smaller + 0.5 * tie)
            )
            other.requires_grad and other._accumulate(
                grad * (~self_smaller & ~tie) + grad * 0.5 * tie
            )

        return self._make(xp.minimum(self.data, other.data), (self, other), backward)

    # ------------------------------------------------------------------ #
    # reductions and reshaping
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""

        def backward(grad: xp.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = xp.expand_dims(g, axis)
            self._accumulate(xp.broadcast_to(g, self.data.shape))

        return self._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (all axes when None)."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, preserving gradient flow."""

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(grad.reshape(self.data.shape))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def squeeze(self, axis: int = -1) -> "Tensor":
        """Remove a size-1 axis."""
        if self.data.shape[axis] != 1:
            raise ValueError(
                f"cannot squeeze axis {axis} of shape {self.data.shape}"
            )

        def backward(grad: xp.ndarray) -> None:
            self.requires_grad and self._accumulate(
                xp.expand_dims(grad, axis).reshape(self.data.shape)
            )

        return self._make(xp.squeeze(self.data, axis=axis), (self,), backward)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = -1) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient routing."""
        tensor_list = [Tensor._lift(t) for t in tensors]
        if not tensor_list:
            raise ValueError("concatenate needs at least one tensor")
        sizes = [t.data.shape[axis] for t in tensor_list]
        offsets = xp.cumsum([0] + sizes)

        def backward(grad: xp.ndarray) -> None:
            for tensor, start, end in zip(tensor_list, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, end)
                    tensor._accumulate(grad[tuple(index)])

        data = xp.concatenate([t.data for t in tensor_list], axis=axis)
        out = Tensor(data)
        if _GRAD_ENABLED and any(t.requires_grad for t in tensor_list):
            out.requires_grad = True
            out._parents = tuple(t for t in tensor_list if t.requires_grad)
            out._backward = backward
        return out


def _raise_item(tensor: Tensor) -> float:
    raise ValueError(f"item() requires a single-element tensor, got {tensor.shape}")
