"""Probability distributions for stochastic policies.

The MSP's pricing policy ``π_θ(p | o)`` is a diagonal Gaussian whose mean
comes from the actor head and whose log-standard-deviation is a learned
free parameter — the standard continuous-control PPO parameterisation.
Log-probabilities and entropy are differentiable Tensor expressions so they
can sit inside the surrogate loss of Eq. (15).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_generator

__all__ = ["DiagonalGaussian"]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


class DiagonalGaussian:
    """A batch of independent Gaussians ``N(mean, exp(log_std)^2)``.

    Args:
        mean: Tensor of shape (batch, action_dim).
        log_std: Tensor broadcastable to ``mean`` (usually (action_dim,)).
    """

    def __init__(self, mean: Tensor, log_std: Tensor) -> None:
        self.mean = mean
        self.log_std = log_std

    @property
    def std(self) -> np.ndarray:
        """Standard deviation as a plain array (no graph)."""
        return np.exp(np.broadcast_to(self.log_std.data, self.mean.shape))

    def sample(self, seed: SeedLike = None) -> np.ndarray:
        """Draw actions (no gradient flows through sampling)."""
        rng = as_generator(seed)
        noise = rng.normal(size=self.mean.shape)
        return self.mean.data + self.std * noise

    def mode(self) -> np.ndarray:
        """The distribution mode (the mean) — deterministic evaluation."""
        return self.mean.data.copy()

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Differentiable log-density of ``actions`` summed over action dims.

        Returns a Tensor of shape (batch,).
        """
        actions = np.asarray(actions, dtype=np.float64)
        if actions.shape != self.mean.shape:
            raise ValueError(
                f"actions shape {actions.shape} != mean shape {self.mean.shape}"
            )
        inv_std = (-self.log_std).exp()
        standardized = (Tensor(actions) - self.mean) * inv_std
        per_dim = (
            standardized * standardized * (-0.5)
            - self.log_std
            - _LOG_SQRT_2PI
        )
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        """Differentiable entropy summed over action dims, shape (batch,)."""
        # H = 0.5 + 0.5 log(2π) + log σ, per dimension.
        per_dim = self.log_std + (0.5 + _LOG_SQRT_2PI)
        broadcast = per_dim + Tensor(np.zeros(self.mean.shape))
        return broadcast.sum(axis=-1)

    def kl_divergence(self, other: "DiagonalGaussian") -> Tensor:
        """KL(self || other), summed over action dims (diagnostics)."""
        var_ratio = ((self.log_std - other.log_std) * 2.0).exp()
        mean_term = ((self.mean - other.mean) * (-other.log_std).exp()) ** 2.0
        per_dim = (var_ratio + mean_term - 1.0) * 0.5 + (
            other.log_std - self.log_std
        )
        return per_dim.sum(axis=-1)
