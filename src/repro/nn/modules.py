"""Neural-network modules: Module base, Linear, activations, MLP.

Mirrors the torch.nn API surface the paper's implementation would use:
``Module.parameters()`` feeds the optimiser, ``Linear`` layers compose into
an ``MLP`` with two 64-unit hidden layers (paper Sec. V-A).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import NeuralNetworkError
from repro.nn.init import orthogonal, zeros
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Module", "Linear", "Tanh", "ReLU", "Identity", "Sequential", "MLP"]


class Module:
    """Base class: tracks parameters and sub-modules by attribute assignment."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor of this module and its children."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield (dotted-name, tensor) pairs."""
        for name, parameter in self._parameters.items():
            yield f"{prefix}{name}", parameter
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter data in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise NeuralNetworkError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise NeuralNetworkError(
                    f"shape mismatch for {name!r}: "
                    f"{value.shape} vs {parameter.data.shape}"
                )
            parameter.data = value.copy()

    def forward(self, x: Tensor) -> Tensor:
        """Compute the module's output."""
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Linear(Module):
    """Affine layer ``y = x W + b`` with orthogonal initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        gain: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise NeuralNetworkError(
                f"features must be >= 1, got {in_features}, {out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            orthogonal(in_features, out_features, gain=gain, seed=seed),
            requires_grad=True,
        )
        self.bias = Tensor(zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise NeuralNetworkError(
                f"expected input of width {self.in_features}, got {x.shape}"
            )
        return x @ self.weight + self.bias


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = []
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


def _activation(name: str) -> Module:
    table = {"tanh": Tanh, "relu": ReLU, "identity": Identity}
    if name not in table:
        raise NeuralNetworkError(
            f"unknown activation {name!r}; choose from {sorted(table)}"
        )
    return table[name]()


class MLP(Module):
    """A fully connected network with configurable hidden sizes.

    The paper uses two hidden layers of 64 units; the default output gain
    of 0.01 is the PPO policy-head convention (small initial actions).
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        *,
        activation: str = "tanh",
        output_gain: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = as_generator(seed)
        sizes = [in_features, *hidden_sizes]
        layers: list[Module] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            layers.append(
                Linear(fan_in, fan_out, gain=float(np.sqrt(2.0)), seed=rng)
            )
            layers.append(_activation(activation))
        layers.append(Linear(sizes[-1], out_features, gain=output_gain, seed=rng))
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
