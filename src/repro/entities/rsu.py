"""RoadSide Unit (RSU) and edge-server resource model.

RSUs host VTs on their edge servers and have a finite radio coverage
radius. The mobility substrate uses coverage to detect handovers; the
migration substrate uses the edge server's resource accounting to check a
destination RSU can actually admit an incoming twin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import MigrationError
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["EdgeServer", "RoadsideUnit"]


@dataclass
class EdgeServer:
    """Finite-capacity compute/storage attached to an RSU.

    Attributes:
        storage_mb: total VT storage capacity.
        compute_units: abstract rendering-compute capacity.
    """

    storage_mb: float
    compute_units: float
    _used_storage_mb: float = field(default=0.0, repr=False)
    _used_compute: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        require_positive("storage_mb", self.storage_mb)
        require_positive("compute_units", self.compute_units)

    @property
    def free_storage_mb(self) -> float:
        """Unused storage."""
        return self.storage_mb - self._used_storage_mb

    @property
    def free_compute(self) -> float:
        """Unused compute."""
        return self.compute_units - self._used_compute

    def admit(self, storage_mb: float, compute: float = 1.0) -> None:
        """Reserve resources for an incoming VT.

        Raises:
            MigrationError: if either resource would be oversubscribed.
        """
        require_non_negative("storage_mb", storage_mb)
        require_non_negative("compute", compute)
        if storage_mb > self.free_storage_mb + 1e-12:
            raise MigrationError(
                f"edge server storage exhausted: need {storage_mb} MB, "
                f"free {self.free_storage_mb} MB"
            )
        if compute > self.free_compute + 1e-12:
            raise MigrationError(
                f"edge server compute exhausted: need {compute}, "
                f"free {self.free_compute}"
            )
        self._used_storage_mb += storage_mb
        self._used_compute += compute

    def evict(self, storage_mb: float, compute: float = 1.0) -> None:
        """Release resources held by a departing VT."""
        require_non_negative("storage_mb", storage_mb)
        require_non_negative("compute", compute)
        self._used_storage_mb = max(0.0, self._used_storage_mb - storage_mb)
        self._used_compute = max(0.0, self._used_compute - compute)


@dataclass
class RoadsideUnit:
    """An RSU: position, coverage, and an attached edge server.

    Attributes:
        rsu_id: unique identifier.
        position_m: (x, y) position in metres.
        coverage_radius_m: radio coverage radius.
        edge: the attached edge server.
    """

    rsu_id: str
    position_m: tuple[float, float]
    coverage_radius_m: float
    edge: EdgeServer = field(
        default_factory=lambda: EdgeServer(storage_mb=16_384.0, compute_units=64.0)
    )
    hosted_vt_ids: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        require_positive("coverage_radius_m", self.coverage_radius_m)

    def distance_to(self, point_m: tuple[float, float]) -> float:
        """Euclidean distance from the RSU to ``point_m``."""
        dx = self.position_m[0] - point_m[0]
        dy = self.position_m[1] - point_m[1]
        return math.hypot(dx, dy)

    def covers(self, point_m: tuple[float, float]) -> bool:
        """Whether ``point_m`` lies inside this RSU's coverage disc."""
        return self.distance_to(point_m) <= self.coverage_radius_m

    def host(self, vt_id: str, storage_mb: float) -> None:
        """Admit a VT onto the edge server and record the hosting."""
        if vt_id in self.hosted_vt_ids:
            raise MigrationError(f"{vt_id!r} already hosted on {self.rsu_id!r}")
        self.edge.admit(storage_mb)
        self.hosted_vt_ids.add(vt_id)

    def unhost(self, vt_id: str, storage_mb: float) -> None:
        """Release a VT from the edge server."""
        if vt_id not in self.hosted_vt_ids:
            raise MigrationError(f"{vt_id!r} not hosted on {self.rsu_id!r}")
        self.edge.evict(storage_mb)
        self.hosted_vt_ids.discard(vt_id)
