"""Vehicular Twin (VT) payload model.

A VT is the digital replica of a vehicle/VMU deployed on an RSU edge server.
Per the paper (Sec. III-A), the migrated VT data ``D_n`` comprises system
configuration (CPU/GPU state), historical memory data, and real-time VMU
state, and is transmitted *in blocks* during migration. This module models
that composition so the migration substrate can do block-level transfer and
pre-copy dirty-memory iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["VtPayload", "VtBlock", "VehicularTwin"]


@dataclass(frozen=True)
class VtPayload:
    """Composition of a VT's migratable state, in megabytes.

    Attributes:
        config_mb: system configuration (CPU/GPU/device model) snapshot.
        memory_mb: historical memory data (the bulk; dirtied during pre-copy).
        realtime_mb: real-time VMU state (pose, sensor fusion outputs).
    """

    config_mb: float
    memory_mb: float
    realtime_mb: float

    def __post_init__(self) -> None:
        require_non_negative("config_mb", self.config_mb)
        require_non_negative("memory_mb", self.memory_mb)
        require_non_negative("realtime_mb", self.realtime_mb)

    @property
    def total_mb(self) -> float:
        """Total migratable size ``D_n`` in MB."""
        return self.config_mb + self.memory_mb + self.realtime_mb

    @staticmethod
    def with_total(total_mb: float, *, memory_fraction: float = 0.8,
                   config_fraction: float = 0.1) -> "VtPayload":
        """Split a total size into the three components.

        Defaults put 80% in memory, 10% in config, remainder in real-time
        state — representative of live-VM images where memory dominates.
        """
        require_positive("total_mb", total_mb)
        if not 0.0 <= memory_fraction + config_fraction <= 1.0:
            raise ValueError(
                "memory_fraction + config_fraction must be in [0, 1], got "
                f"{memory_fraction + config_fraction}"
            )
        memory = total_mb * memory_fraction
        config = total_mb * config_fraction
        realtime = total_mb - memory - config
        return VtPayload(config_mb=config, memory_mb=memory, realtime_mb=realtime)


@dataclass(frozen=True)
class VtBlock:
    """One transmission block of a VT migration.

    Attributes:
        sequence: 0-based position in the migration stream.
        size_mb: block size in MB.
        kind: which payload component the block belongs to.
    """

    sequence: int
    size_mb: float
    kind: str

    def __post_init__(self) -> None:
        require_non_negative("size_mb", self.size_mb)
        if self.sequence < 0:
            raise ValueError(f"sequence must be >= 0, got {self.sequence}")


@dataclass
class VehicularTwin:
    """A VT instance: identity, payload, and current host RSU.

    Attributes:
        vt_id: unique identifier.
        vmu_id: the VMU this twin mirrors.
        payload: migratable state composition.
        host_rsu_id: id of the RSU currently hosting this twin (None if
            not yet deployed).
        dirty_rate_mb_s: rate at which memory is re-dirtied while the twin
            keeps serving during live migration (drives pre-copy rounds).
    """

    vt_id: str
    vmu_id: str
    payload: VtPayload
    host_rsu_id: str | None = None
    dirty_rate_mb_s: float = 0.0
    _migration_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        require_non_negative("dirty_rate_mb_s", self.dirty_rate_mb_s)

    @property
    def data_size_mb(self) -> float:
        """Total migratable size ``D_n`` in MB."""
        return self.payload.total_mb

    @property
    def migration_count(self) -> int:
        """How many times this twin has been migrated."""
        return self._migration_count

    def blocks(self, block_size_mb: float) -> list[VtBlock]:
        """Split the payload into transmission blocks of ``block_size_mb``.

        Blocks are emitted config -> memory -> realtime; the final block of
        each component may be smaller. Total block size equals the payload.
        """
        require_positive("block_size_mb", block_size_mb)
        blocks: list[VtBlock] = []
        sequence = 0
        for kind, size in (
            ("config", self.payload.config_mb),
            ("memory", self.payload.memory_mb),
            ("realtime", self.payload.realtime_mb),
        ):
            remaining = size
            while remaining > 0.0:
                chunk = min(block_size_mb, remaining)
                blocks.append(VtBlock(sequence=sequence, size_mb=chunk, kind=kind))
                sequence += 1
                remaining -= chunk
        return blocks

    def record_migration(self, new_host_rsu_id: str) -> None:
        """Move the twin to a new host RSU (bookkeeping only)."""
        self.host_rsu_id = new_host_rsu_id
        self._migration_count += 1
