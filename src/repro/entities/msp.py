"""Metaverse Service Provider (MSP): the monopolist bandwidth seller.

The MSP manages all RSUs, owns the inter-RSU spectrum (an OFDMA pool of
``B_max`` bandwidth), and posts the unit price ``p`` that leads the
Stackelberg game. This entity tracks the ledger of a trading round so
integration tests can audit revenue = Σ p·b and cost = Σ C·b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.utils.validation import require_in_range, require_non_negative, require_positive

__all__ = ["TradeRecord", "MetaverseServiceProvider"]


@dataclass(frozen=True)
class TradeRecord:
    """One bandwidth sale: who bought, how much, and at what price."""

    vmu_id: str
    bandwidth: float
    unit_price: float

    @property
    def revenue(self) -> float:
        """Payment received from the VMU."""
        return self.bandwidth * self.unit_price


@dataclass
class MetaverseServiceProvider:
    """The monopolist bandwidth seller.

    Attributes:
        max_bandwidth: sellable bandwidth ``B_max`` (market units).
        unit_cost: unit transmission cost ``C``.
        max_price: price ceiling ``p_max``.
    """

    max_bandwidth: float = constants.MAX_BANDWIDTH
    unit_cost: float = constants.UNIT_TRANSMISSION_COST
    max_price: float = constants.MAX_PRICE
    _ledger: list[TradeRecord] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        require_positive("max_bandwidth", self.max_bandwidth)
        require_positive("unit_cost", self.unit_cost)
        require_positive("max_price", self.max_price)
        if self.unit_cost > self.max_price:
            raise ValueError(
                f"unit_cost ({self.unit_cost}) must not exceed "
                f"max_price ({self.max_price}): no feasible price exists"
            )

    def validate_price(self, price: float) -> float:
        """Check ``C <= p <= p_max`` and return the price."""
        return require_in_range("price", price, self.unit_cost, self.max_price)

    def clamp_price(self, price: float) -> float:
        """Project an arbitrary proposal onto the feasible ``[C, p_max]``."""
        return min(max(price, self.unit_cost), self.max_price)

    def record_sale(self, vmu_id: str, bandwidth: float, unit_price: float) -> TradeRecord:
        """Append a sale to the ledger."""
        require_non_negative("bandwidth", bandwidth)
        self.validate_price(unit_price)
        record = TradeRecord(vmu_id=vmu_id, bandwidth=bandwidth, unit_price=unit_price)
        self._ledger.append(record)
        return record

    def clear_ledger(self) -> None:
        """Forget recorded sales (new trading round)."""
        self._ledger.clear()

    @property
    def ledger(self) -> tuple[TradeRecord, ...]:
        """Immutable view of recorded sales."""
        return tuple(self._ledger)

    @property
    def total_bandwidth_sold(self) -> float:
        """Σ b over the ledger."""
        return sum(record.bandwidth for record in self._ledger)

    @property
    def total_revenue(self) -> float:
        """Σ p·b over the ledger."""
        return sum(record.revenue for record in self._ledger)

    @property
    def total_cost(self) -> float:
        """Σ C·b over the ledger."""
        return self.unit_cost * self.total_bandwidth_sold

    @property
    def profit(self) -> float:
        """Σ (p − C)·b — the MSP utility of Eq. (4) over the ledger."""
        return self.total_revenue - self.total_cost
