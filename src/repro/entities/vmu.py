"""Vehicular Metaverse User (VMU) entity and population sampling.

A VMU is the economic follower in the Stackelberg game: it owns one VT of
size ``D_n`` and values migration freshness with immersion coefficient
``α_n``. Populations can be sampled from the paper's parameter ranges
(D_n ∈ [100, 300] MB, α_n ∈ [5, 20]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.utils.rng import SeedLike, as_generator
from repro.utils.units import megabytes_to_data_units
from repro.utils.validation import require_positive

__all__ = ["VmuProfile", "sample_population", "paper_fig2_population", "uniform_population"]


@dataclass(frozen=True)
class VmuProfile:
    """The game-relevant parameters of one VMU.

    Attributes:
        vmu_id: unique identifier.
        data_size_mb: VT data size ``D_n`` in megabytes.
        immersion_coef: immersion coefficient ``α_n`` (unit profit of
            immersion in ``G_n = α_n ln(1 + 1/A_n)``).
    """

    vmu_id: str
    data_size_mb: float
    immersion_coef: float

    def __post_init__(self) -> None:
        require_positive("data_size_mb", self.data_size_mb)
        require_positive("immersion_coef", self.immersion_coef)

    @property
    def data_units(self) -> float:
        """``D_n`` in the game's natural data units (100 MB each)."""
        return megabytes_to_data_units(self.data_size_mb, constants.DATA_UNIT_MB)


def sample_population(
    count: int,
    *,
    seed: SeedLike = None,
    data_range_mb: tuple[float, float] = constants.VT_DATA_SIZE_RANGE_MB,
    immersion_range: tuple[float, float] = constants.IMMERSION_COEF_RANGE,
) -> list[VmuProfile]:
    """Sample ``count`` VMUs uniformly from the paper's parameter ranges."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    lo_d, hi_d = data_range_mb
    lo_a, hi_a = immersion_range
    if lo_d > hi_d or lo_a > hi_a:
        raise ValueError("ranges must satisfy low <= high")
    rng = as_generator(seed)
    return [
        VmuProfile(
            vmu_id=f"vmu-{i}",
            data_size_mb=float(rng.uniform(lo_d, hi_d)),
            immersion_coef=float(rng.uniform(lo_a, hi_a)),
        )
        for i in range(count)
    ]


def paper_fig2_population() -> list[VmuProfile]:
    """The two-VMU population of Fig. 2 / Fig. 3(a-b):
    α1 = α2 = 5, D1 = 200 MB, D2 = 100 MB."""
    return [
        VmuProfile(vmu_id="vmu-0", data_size_mb=200.0, immersion_coef=5.0),
        VmuProfile(vmu_id="vmu-1", data_size_mb=100.0, immersion_coef=5.0),
    ]


def uniform_population(
    count: int, *, data_size_mb: float = 100.0, immersion_coef: float = 5.0
) -> list[VmuProfile]:
    """``count`` identical VMUs — the Fig. 3(c-d) setting
    (D_n = 100 MB, α_n = 5)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [
        VmuProfile(
            vmu_id=f"vmu-{i}",
            data_size_mb=data_size_mb,
            immersion_coef=immersion_coef,
        )
        for i in range(count)
    ]
