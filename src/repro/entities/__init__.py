"""Metaverse entities: VMUs, VTs, RSUs, the MSP, and the world registry."""

from repro.entities.msp import MetaverseServiceProvider, TradeRecord
from repro.entities.registry import World
from repro.entities.rsu import EdgeServer, RoadsideUnit
from repro.entities.vmu import (
    VmuProfile,
    paper_fig2_population,
    sample_population,
    uniform_population,
)
from repro.entities.vt import VehicularTwin, VtBlock, VtPayload

__all__ = [
    "MetaverseServiceProvider",
    "TradeRecord",
    "World",
    "EdgeServer",
    "RoadsideUnit",
    "VmuProfile",
    "paper_fig2_population",
    "sample_population",
    "uniform_population",
    "VehicularTwin",
    "VtBlock",
    "VtPayload",
]
