"""A world registry binding VMUs, VTs, and RSUs together.

The numerical game only needs :class:`~repro.entities.vmu.VmuProfile`
lists, but the end-to-end examples (mobility -> handover -> migration)
need a coherent world where each VMU has exactly one VT hosted on exactly
one RSU. The registry enforces those invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.entities.rsu import RoadsideUnit
from repro.entities.vmu import VmuProfile
from repro.entities.vt import VehicularTwin, VtPayload
from repro.errors import ConfigurationError

__all__ = ["World"]


@dataclass
class World:
    """Container for one scenario's entities with identity invariants."""

    vmus: dict[str, VmuProfile] = field(default_factory=dict)
    twins: dict[str, VehicularTwin] = field(default_factory=dict)
    rsus: dict[str, RoadsideUnit] = field(default_factory=dict)

    def add_rsu(self, rsu: RoadsideUnit) -> RoadsideUnit:
        """Register an RSU; ids must be unique."""
        if rsu.rsu_id in self.rsus:
            raise ConfigurationError(f"duplicate RSU id {rsu.rsu_id!r}")
        self.rsus[rsu.rsu_id] = rsu
        return rsu

    def add_vmu(self, vmu: VmuProfile, *, host_rsu_id: str | None = None,
                dirty_rate_mb_s: float = 0.0) -> VehicularTwin:
        """Register a VMU and create its twin, optionally hosting it."""
        if vmu.vmu_id in self.vmus:
            raise ConfigurationError(f"duplicate VMU id {vmu.vmu_id!r}")
        self.vmus[vmu.vmu_id] = vmu
        twin = VehicularTwin(
            vt_id=f"vt:{vmu.vmu_id}",
            vmu_id=vmu.vmu_id,
            payload=VtPayload.with_total(vmu.data_size_mb),
            dirty_rate_mb_s=dirty_rate_mb_s,
        )
        self.twins[twin.vt_id] = twin
        if host_rsu_id is not None:
            self.host_twin(twin.vt_id, host_rsu_id)
        return twin

    def twin_of(self, vmu_id: str) -> VehicularTwin:
        """The twin belonging to ``vmu_id``."""
        vt_id = f"vt:{vmu_id}"
        if vt_id not in self.twins:
            raise ConfigurationError(f"no twin registered for VMU {vmu_id!r}")
        return self.twins[vt_id]

    def host_twin(self, vt_id: str, rsu_id: str) -> None:
        """Place a twin on an RSU's edge server (initial deployment)."""
        twin = self._twin(vt_id)
        rsu = self._rsu(rsu_id)
        if twin.host_rsu_id is not None:
            raise ConfigurationError(
                f"{vt_id!r} already hosted on {twin.host_rsu_id!r}; "
                "use migrate_twin"
            )
        rsu.host(vt_id, twin.data_size_mb)
        twin.host_rsu_id = rsu_id

    def migrate_twin(self, vt_id: str, destination_rsu_id: str) -> None:
        """Atomically move a twin between RSUs (bookkeeping of a completed
        migration; the timing is the migration substrate's job)."""
        twin = self._twin(vt_id)
        if twin.host_rsu_id is None:
            raise ConfigurationError(f"{vt_id!r} is not hosted anywhere")
        if twin.host_rsu_id == destination_rsu_id:
            raise ConfigurationError(
                f"{vt_id!r} already hosted on {destination_rsu_id!r}"
            )
        source = self._rsu(twin.host_rsu_id)
        destination = self._rsu(destination_rsu_id)
        destination.host(vt_id, twin.data_size_mb)
        source.unhost(vt_id, twin.data_size_mb)
        twin.record_migration(destination_rsu_id)

    def check_invariants(self) -> None:
        """Raise if any identity/hosting invariant is violated."""
        for vt_id, twin in self.twins.items():
            if twin.vmu_id not in self.vmus:
                raise ConfigurationError(f"{vt_id!r} references unknown VMU")
            if twin.host_rsu_id is not None:
                rsu = self._rsu(twin.host_rsu_id)
                if vt_id not in rsu.hosted_vt_ids:
                    raise ConfigurationError(
                        f"{vt_id!r} claims host {twin.host_rsu_id!r} but the "
                        "RSU does not list it"
                    )
        for rsu in self.rsus.values():
            for vt_id in rsu.hosted_vt_ids:
                twin = self._twin(vt_id)
                if twin.host_rsu_id != rsu.rsu_id:
                    raise ConfigurationError(
                        f"{rsu.rsu_id!r} lists {vt_id!r} but the twin points "
                        f"at {twin.host_rsu_id!r}"
                    )

    def _twin(self, vt_id: str) -> VehicularTwin:
        if vt_id not in self.twins:
            raise ConfigurationError(f"unknown twin {vt_id!r}")
        return self.twins[vt_id]

    def _rsu(self, rsu_id: str) -> RoadsideUnit:
        if rsu_id not in self.rsus:
            raise ConfigurationError(f"unknown RSU {rsu_id!r}")
        return self.rsus[rsu_id]
