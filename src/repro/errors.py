"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch a single base class. Sub-classes are grouped by
subsystem so callers can be selective without string-matching messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class UnitError(ConfigurationError):
    """A quantity was supplied in the wrong unit or with an invalid value."""


class ChannelError(ReproError):
    """The wireless-channel substrate was asked to do something impossible."""


class AllocationError(ChannelError):
    """OFDMA subchannel allocation could not satisfy a request."""


class GameError(ReproError):
    """A game-theoretic computation failed (no equilibrium, empty market...)."""


class InfeasibleMarketError(GameError):
    """No price in ``[C, p_max]`` induces positive demand from any follower."""


class MigrationError(ReproError):
    """The live-migration substrate hit an invalid state."""


class MobilityError(ReproError):
    """The mobility substrate hit an invalid state (off-road position...)."""


class NeuralNetworkError(ReproError):
    """An invalid operation on the autograd/neural-network substrate."""


class GradientError(NeuralNetworkError):
    """Backward pass requested on a graph that cannot provide gradients."""


class EnvironmentError_(ReproError):
    """The RL environment was driven through an invalid transition.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`EnvironmentError` alias of :class:`OSError`.
    """


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or produced invalid output."""
