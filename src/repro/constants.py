"""Default parameters from the paper's evaluation section (Sec. V-A).

All defaults are module-level constants so experiments, tests, and examples
share one source of truth. The unit-system calibration is documented in
DESIGN.md §3: data sizes enter the game in units of 100 MB
(:data:`DATA_UNIT_MB`), and bandwidth strategies are *reported* in market
units that are ``BANDWIDTH_REPORT_SCALE`` times the natural unit used inside
the utility formulas.
"""

from __future__ import annotations

# --- Radio parameters (paper Sec. V-A) -----------------------------------
TRANSMIT_POWER_DBM: float = 40.0
"""Transmitter power of the source RSU, ``ρ`` (dBm)."""

CHANNEL_GAIN_DB: float = -20.0
"""Unit channel power gain, ``h0`` (dB)."""

RSU_DISTANCE_M: float = 500.0
"""Distance between source and destination RSU, ``d`` (metres)."""

PATH_LOSS_EXPONENT: float = 2.0
"""Path-loss coefficient, ``ε`` (dimensionless)."""

NOISE_POWER_DBM: float = -150.0
"""Average noise power, ``N0`` (dBm)."""

# --- Market parameters -----------------------------------------------------
MAX_BANDWIDTH: float = 50.0
"""MSP's maximum sellable bandwidth ``B_max`` (market units; see DESIGN.md)."""

UNIT_TRANSMISSION_COST: float = 5.0
"""MSP's unit transmission cost ``C``."""

MAX_PRICE: float = 50.0
"""MSP's maximum unit selling price ``p_max``."""

BANDWIDTH_REPORT_SCALE: float = 100.0
"""Market (reported) bandwidth units per natural bandwidth unit.

The paper's Figs. 3(b)/3(d) report bandwidth strategies (and compare the sum
against ``B_max = 50``) on an axis that is 100x the natural unit appearing in
the utility formulas; see DESIGN.md §3 for the calibration evidence.
"""

# --- VMU population (paper Sec. V-A) ---------------------------------------
DATA_UNIT_MB: float = 100.0
"""Megabytes per natural data unit: ``D_n`` enters the game as MB / 100."""

VT_DATA_SIZE_RANGE_MB: tuple[float, float] = (100.0, 300.0)
"""Range of VT data sizes ``D_n`` (MB)."""

IMMERSION_COEF_RANGE: tuple[float, float] = (5.0, 20.0)
"""Range of immersion coefficients ``α_n``."""

MAX_VMUS: int = 6
"""Largest population size evaluated in the paper (``N ∈ [1, 6]``)."""

# --- DRL hyper-parameters (paper Sec. V-A) ---------------------------------
HISTORY_LENGTH: int = 4
"""Observation history length ``L`` (past rounds of (price, demands))."""

NUM_EPISODES: int = 500
"""Training episodes ``E``."""

ROUNDS_PER_EPISODE: int = 100
"""Game rounds per episode ``K``."""

UPDATE_EPOCHS: int = 10
"""PPO epochs per update, ``M``."""

BATCH_SIZE: int = 20
"""Mini-batch size ``I`` (the paper's ``D = 20``)."""

LEARNING_RATE: float = 1e-5
"""Adam learning rate (paper: ``lr = 0.00001``)."""

HIDDEN_SIZES: tuple[int, int] = (64, 64)
"""Two hidden layers of 64 nodes each."""

PPO_CLIP_EPSILON: float = 0.2
"""Clipping parameter ``ϵ`` in Eq. (19) (standard PPO default)."""

VALUE_LOSS_COEF: float = 0.5
"""Loss coefficient ``c`` of the value-function term in Eq. (14)."""

DISCOUNT_GAMMA: float = 0.99
"""Reward discount factor ``γ`` in Eq. (13)."""

GAE_LAMBDA: float = 0.95
"""GAE(λ) parameter (paper cites Schulman et al. [14])."""
