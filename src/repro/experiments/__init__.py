"""Experiment harness: a declarative spec registry over scheduler jobs.

Every experiment — the paper figures, robustness sweeps, ablations,
welfare analysis, multiseed comparison — is a registered
:class:`~repro.experiments.api.ExperimentSpec`:
:func:`~repro.experiments.api.run_experiment` is the one entry point, a
spec's ``plan()`` compiles it into scheduler :class:`Job`s (per seed /
per market point / per grid cell), and the historical ``run_*`` functions
are thin shims kept for convenience (bitwise-equal either way).
"""

from repro.experiments.ablations import (
    CapacityAblationResult,
    HistoryAblationResult,
    RewardAblationResult,
    run_capacity_ablation,
    run_history_ablation,
    run_reward_ablation,
)
from repro.experiments.api import (
    ExperimentPlan,
    ExperimentSpec,
    ParamSpec,
    experiment_names,
    get_experiment,
    result_from_payload,
    result_to_payload,
    run_experiment,
    schedule,
)
from repro.experiments.bayesian import BayesianPricingResult, run_bayesian_pricing
from repro.experiments.cityscale import CityScaleResult, run_city_sweep
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3_cost import CostSweepResult, run_fig3_cost
from repro.experiments.fig3_vmus import VmuSweepResult, run_fig3_vmus
from repro.experiments.multiseed import MultiSeedResult, run_multiseed_comparison
from repro.experiments.price_of_anarchy import (
    PriceOfAnarchyResult,
    run_price_of_anarchy,
)
from repro.experiments.pricing_service import (
    PricingServiceResult,
    run_pricing_service,
)
from repro.experiments.robustness import (
    DistanceSweepResult,
    FadingSweepResult,
    PopulationSweepResult,
    run_distance_sweep,
    run_fading_sweep,
    run_population_sweep,
)
from repro.experiments.runner import (
    FleetTrainedPricing,
    PolicyEvaluation,
    TrainedPricing,
    compare_schemes,
    compare_schemes_scheduled,
    compare_schemes_stacked,
    evaluate_policies_stacked,
    evaluate_policy,
    train_drl,
    train_drl_fleet,
)
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    config_from_payload,
    config_to_payload,
    execute_job,
    market_from_payload,
    market_to_payload,
    register_job_kind,
)
from repro.experiments.welfare import WelfareResult, run_welfare

__all__ = [
    "CapacityAblationResult",
    "HistoryAblationResult",
    "RewardAblationResult",
    "run_capacity_ablation",
    "run_history_ablation",
    "run_reward_ablation",
    "ExperimentPlan",
    "ExperimentSpec",
    "ParamSpec",
    "experiment_names",
    "get_experiment",
    "result_from_payload",
    "result_to_payload",
    "run_experiment",
    "schedule",
    "ExperimentConfig",
    "BayesianPricingResult",
    "run_bayesian_pricing",
    "Fig2Result",
    "run_fig2",
    "PriceOfAnarchyResult",
    "run_price_of_anarchy",
    "CityScaleResult",
    "run_city_sweep",
    "CostSweepResult",
    "run_fig3_cost",
    "VmuSweepResult",
    "run_fig3_vmus",
    "MultiSeedResult",
    "run_multiseed_comparison",
    "PricingServiceResult",
    "run_pricing_service",
    "DistanceSweepResult",
    "FadingSweepResult",
    "PopulationSweepResult",
    "run_distance_sweep",
    "run_fading_sweep",
    "run_population_sweep",
    "FleetTrainedPricing",
    "PolicyEvaluation",
    "TrainedPricing",
    "compare_schemes",
    "compare_schemes_scheduled",
    "compare_schemes_stacked",
    "evaluate_policies_stacked",
    "evaluate_policy",
    "train_drl",
    "train_drl_fleet",
    "Job",
    "JobScheduler",
    "config_from_payload",
    "config_to_payload",
    "execute_job",
    "market_from_payload",
    "market_to_payload",
    "register_job_kind",
    "WelfareResult",
    "run_welfare",
]
