"""Welfare experiment: monopoly equilibrium vs the social planner.

Wraps :func:`repro.core.welfare.welfare_report` as a registered
:class:`~repro.experiments.api.ExperimentSpec` so the welfare analysis
runs through the same ``run_experiment`` entry point — and the same
scheduler jobs/caching — as every other experiment. The single work unit
is one ``welfare_report`` job (the market's stacked monopoly solve plus
the planner's price search).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.stackelberg import StackelbergMarket
from repro.core.welfare import WelfareReport, welfare_report
from repro.experiments import api
from repro.experiments.api import MARKET_PARAM, ExperimentPlan
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    market_from_payload,
    market_to_payload,
)
from repro.utils.tables import Table

__all__ = [
    "WelfareResult",
    "run_welfare",
    "run_welfare_report_job",
    "WELFARE",
]


@dataclass
class WelfareResult:
    """Welfare decomposition of one market, as an experiment result."""

    monopoly_price: float
    monopoly_welfare: float
    monopoly_msp_share: float
    planner_price: float
    planner_welfare: float
    deadweight_loss: float
    efficiency: float

    def table(self) -> Table:
        """Printable summary (the CLI's welfare figure)."""
        table = Table(
            headers=("quantity", "value"),
            title="Welfare analysis — monopoly vs planner",
        )
        rows = {
            "monopoly price": self.monopoly_price,
            "monopoly welfare": self.monopoly_welfare,
            "MSP share of welfare": self.monopoly_msp_share,
            "planner price": self.planner_price,
            "planner welfare": self.planner_welfare,
            "deadweight loss": self.deadweight_loss,
            "efficiency": self.efficiency,
        }
        for name, value in rows.items():
            table.add_row(name, value)
        return table


def _result_from_report(report: WelfareReport) -> WelfareResult:
    return WelfareResult(
        monopoly_price=float(report.monopoly_price),
        monopoly_welfare=float(report.monopoly_welfare),
        monopoly_msp_share=float(report.monopoly_msp_share),
        planner_price=float(report.planner_price),
        planner_welfare=float(report.planner_welfare),
        deadweight_loss=float(report.deadweight_loss),
        efficiency=float(report.efficiency),
    )


def run_welfare_report_job(payload: Mapping) -> dict:
    """Job kind ``welfare_report``: one market's welfare decomposition.

    The market's monopoly equilibrium is the ``M = 1`` stacked solve and
    the planner search is deterministic, so a report computed in a worker
    is bitwise-equal to the in-process one.
    """
    market = market_from_payload(payload["market"])
    return api.result_to_payload(_result_from_report(welfare_report(market)))


def _plan(params) -> ExperimentPlan:
    market = api.resolve_market(params)
    job = Job("welfare_report", {"market": market_to_payload(market)})
    return ExperimentPlan("welfare", dict(params), [job])


def _assemble(plan: ExperimentPlan, results: list) -> WelfareResult:
    return api.result_from_payload(WelfareResult, results[0])


def _direct(params) -> WelfareResult:
    return _result_from_report(welfare_report(api.resolve_market(params)))


WELFARE = api.register(
    api.ExperimentSpec(
        name="welfare",
        description=(
            "Welfare analysis — monopoly equilibrium vs the social "
            "planner (welfare split, deadweight loss, efficiency)"
        ),
        params=(MARKET_PARAM,),
        result_type=WelfareResult,
        plan=_plan,
        assemble=_assemble,
        direct=_direct,
    )
)


def run_welfare(
    *,
    market: StackelbergMarket | None = None,
    scheduler: JobScheduler | None = None,
) -> WelfareResult:
    """Welfare decomposition of ``market`` (default: the paper's market).

    Thin shim over the ``welfare`` spec; with ``scheduler`` the report is
    one cached ``welfare_report`` job.
    """
    return api.run_experiment(
        WELFARE, {"market": market}, scheduler=scheduler
    )
