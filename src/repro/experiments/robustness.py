"""Robustness experiments beyond the paper's figures.

The paper evaluates one radio operating point (d = 500 m, no fading) and
one population draw. These sweeps probe how the equilibrium — and hence
everything plotted in Fig. 3 — shifts when the physical layer or the
population moves:

- :func:`run_distance_sweep` — RSU separation d: lower spectral
  efficiency raises AoTM and reshapes prices (`p* ∝ sqrt(SE)`).
- :func:`run_fading_sweep` — Monte-Carlo over fading draws: equilibrium
  price/utility distributions under Rayleigh/Rician/shadowing channels.
- :func:`run_population_sweep` — multiple random population draws from
  the paper's parameter ranges with multi-seed summary statistics.

Every sweep builds its whole market grid up front and solves it as one
:meth:`repro.core.marketstack.MarketStack.equilibria_stacked` pass —
bitwise-equal to the historical per-market ``equilibrium()`` loops. Pass a
:class:`repro.experiments.scheduler.JobScheduler` to any sweep and each
grid cell becomes one ``equilibrium_cell`` job instead — cached, resumable,
fan-out-able across processes, and still bitwise-equal (the scalar
equilibrium *is* the ``M = 1`` stacked solve).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.fading import FadingModel, RayleighFading
from repro.channel.link import paper_link
from repro.core.marketstack import MarketStack
from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population, sample_population
from repro.experiments import api
from repro.experiments.api import ExperimentPlan, ParamSpec
from repro.experiments.scheduler import Job, JobScheduler, market_to_payload
from repro.service.cache import EquilibriumCache, shared_cache
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import SummaryStats, summarize
from repro.utils.tables import Table

__all__ = [
    "DistanceSweepResult",
    "run_distance_sweep",
    "FadingSweepResult",
    "run_fading_sweep",
    "PopulationSweepResult",
    "run_population_sweep",
    "DISTANCE_SWEEP",
    "FADING_SWEEP",
    "POPULATION_SWEEP",
]


def _solve_grid(
    markets: list[StackelbergMarket],
    *,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
    cache: "EquilibriumCache | None" = None,
) -> list[tuple[float, float]]:
    """Per-market ``(price, msp_utility)`` equilibria for one sweep grid:
    one stacked solve over the whole grid (the specs' direct path; the
    scheduled path runs one ``equilibrium_cell`` job per market instead —
    same numbers, scalar equilibrium == ``M = 1`` stacked solve, pinned
    in ``tests/test_core_equilibria_stacked.py``). With either chunk knob
    set, the solve streams through ``equilibria_stacked_chunked`` — same
    bits, memory bounded by the chunk instead of the grid. With ``cache``
    set, rows come from the content-keyed
    :class:`~repro.service.cache.EquilibriumCache` instead: only markets
    the cache has never seen are solved (as one sub-stack), so repeated
    sweeps over overlapping grids reuse every clean row — still the same
    bits, because per-market equilibria are invariant to which stack a
    market is solved inside."""
    if cache is not None:
        rows = cache.equilibria(
            markets, chunk_size=chunk_size, chunk_bytes=chunk_bytes
        )
        return [(row.price, row.msp_utility) for row in rows]
    stack = MarketStack(markets)
    if chunk_size is not None or chunk_bytes is not None:
        solved = stack.equilibria_stacked_chunked(
            chunk_size=chunk_size, chunk_bytes=chunk_bytes
        )
    else:
        solved = stack.equilibria_stacked()
    cells = []
    for m in range(len(markets)):
        equilibrium = solved.equilibrium(m)
        cells.append((equilibrium.price, equilibrium.msp_utility))
    return cells


def _solve_grid_params(params, markets) -> list[tuple[float, float]]:
    """The direct path of a sweep spec carrying :data:`api.CHUNK_PARAMS`
    and the ``reuse_cache`` flag (rows via the process-wide
    :func:`repro.service.cache.shared_cache` when set)."""
    return _solve_grid(
        markets,
        chunk_size=params["chunk_size"],
        chunk_bytes=params["chunk_bytes"],
        cache=shared_cache() if params.get("reuse_cache") else None,
    )


CACHE_PARAMS: tuple[ParamSpec, ...] = (
    ParamSpec(
        "reuse_cache",
        "bool",
        False,
        "serve grid cells from the process-wide content-keyed equilibrium "
        "cache (direct path; repeated overlapping sweeps skip every "
        "already-solved market — same bits)",
    ),
)


def _grid_jobs(markets: list[StackelbergMarket]) -> list[Job]:
    """One ``equilibrium_cell`` job per market of a sweep grid."""
    return [
        Job("equilibrium_cell", {"market": market_to_payload(market)})
        for market in markets
    ]


def _cells_from_payloads(payloads: list) -> list[tuple[float, float]]:
    return [
        (float(payload["price"]), float(payload["msp_utility"]))
        for payload in payloads
    ]


@dataclass
class DistanceSweepResult:
    """Equilibrium vs RSU separation."""

    distances_m: tuple[float, ...]
    spectral_efficiencies: list[float] = field(default_factory=list)
    prices: list[float] = field(default_factory=list)
    msp_utilities: list[float] = field(default_factory=list)

    def table(self) -> Table:
        """Printable sweep table."""
        table = Table(
            headers=("d (m)", "SE (bit/s/Hz)", "p*", "MSP utility"),
            title="Robustness — equilibrium vs RSU separation",
        )
        for row in zip(
            self.distances_m, self.spectral_efficiencies, self.prices,
            self.msp_utilities,
        ):
            table.add_row(*row)
        return table


DEFAULT_DISTANCES = (250.0, 500.0, 1000.0, 2000.0, 4000.0)


def _distance_markets(params) -> list[StackelbergMarket]:
    vmus = paper_fig2_population()
    return [
        StackelbergMarket(vmus, link=paper_link().with_distance(d))
        for d in params["distances_m"]
    ]


def _distance_pack(params, markets, cells) -> DistanceSweepResult:
    result = DistanceSweepResult(distances_m=tuple(params["distances_m"]))
    for market, (price, msp_utility) in zip(markets, cells):
        result.spectral_efficiencies.append(market.spectral_efficiency)
        result.prices.append(price)
        result.msp_utilities.append(msp_utility)
    return result


def _distance_plan(params) -> ExperimentPlan:
    markets = _distance_markets(params)
    return ExperimentPlan(
        "distance_sweep",
        dict(params),
        _grid_jobs(markets),
        context={"markets": markets},
    )


def _distance_assemble(plan: ExperimentPlan, results: list) -> DistanceSweepResult:
    return _distance_pack(
        plan.params, plan.context["markets"], _cells_from_payloads(results)
    )


def _distance_direct(params) -> DistanceSweepResult:
    markets = _distance_markets(params)
    return _distance_pack(params, markets, _solve_grid_params(params, markets))


DISTANCE_SWEEP = api.register(
    api.ExperimentSpec(
        name="distance_sweep",
        description=(
            "Robustness — Stackelberg equilibrium vs RSU separation d "
            "(spectral efficiency, price, MSP utility per distance)"
        ),
        params=(
            ParamSpec("distances_m", "floats", DEFAULT_DISTANCES, "RSU separations to sweep (m)"),
        ) + api.CHUNK_PARAMS + CACHE_PARAMS,
        result_type=DistanceSweepResult,
        plan=_distance_plan,
        assemble=_distance_assemble,
        direct=_distance_direct,
    )
)


def run_distance_sweep(
    distances_m: tuple[float, ...] = DEFAULT_DISTANCES,
    *,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
    reuse_cache: bool = False,
    scheduler: JobScheduler | None = None,
) -> DistanceSweepResult:
    """Solve the paper's 2-VMU market across RSU separations.

    Thin shim over the ``distance_sweep`` spec: without a scheduler the
    swept markets form one :class:`MarketStack`, so every separation's
    equilibrium comes out of a single stacked solve; with one, each
    separation is one cached ``equilibrium_cell`` job.
    """
    return api.run_experiment(
        DISTANCE_SWEEP,
        {
            "distances_m": distances_m,
            "chunk_size": chunk_size,
            "chunk_bytes": chunk_bytes,
            "reuse_cache": reuse_cache,
        },
        scheduler=scheduler,
    )


@dataclass
class FadingSweepResult:
    """Equilibrium distribution under a stochastic channel."""

    price_stats: SummaryStats
    utility_stats: SummaryStats
    prices: list[float]
    utilities: list[float]

    def table(self) -> Table:
        """Printable summary."""
        table = Table(
            headers=("metric", "mean", "ci_low", "ci_high", "n"),
            title="Robustness — equilibrium under channel fading",
        )
        for name, stats in (
            ("p*", self.price_stats),
            ("MSP utility", self.utility_stats),
        ):
            table.add_row(
                name, stats.mean, stats.ci_low, stats.ci_high, stats.count
            )
        return table


def _fading_markets(params) -> list[StackelbergMarket]:
    draws = int(params["draws"])
    if draws < 2:
        raise ValueError(f"draws must be >= 2, got {draws}")
    fading = (
        params["fading"] if params["fading"] is not None else RayleighFading()
    )
    rng = as_generator(params["seed"])
    vmus = paper_fig2_population()
    gains = fading.sample(rng, size=draws)
    # The gains are drawn up front in this process, so the market grid is
    # a pure function of (fading, draws, seed) and each cell's job spec is
    # fully determined.
    return [
        StackelbergMarket(
            vmus, link=paper_link().with_fading_gain(float(max(gain, 1e-6)))
        )
        for gain in gains
    ]


def _fading_pack(cells) -> FadingSweepResult:
    prices = [price for price, _ in cells]
    utilities = [utility for _, utility in cells]
    return FadingSweepResult(
        price_stats=summarize(prices),
        utility_stats=summarize(utilities),
        prices=prices,
        utilities=utilities,
    )


def _fading_plan(params) -> ExperimentPlan:
    markets = _fading_markets(params)
    return ExperimentPlan(
        "fading_sweep", dict(params), _grid_jobs(markets)
    )


def _fading_assemble(plan: ExperimentPlan, results: list) -> FadingSweepResult:
    return _fading_pack(_cells_from_payloads(results))


def _fading_direct(params) -> FadingSweepResult:
    return _fading_pack(_solve_grid_params(params, _fading_markets(params)))


FADING_SWEEP = api.register(
    api.ExperimentSpec(
        name="fading_sweep",
        description=(
            "Robustness — Monte-Carlo the equilibrium over channel-fading "
            "realisations (price/utility distributions under "
            "Rayleigh/Rician/shadowing channels)"
        ),
        params=(
            ParamSpec("fading", "fading?", None, 'fading model: rayleigh (default) | nofading | JSON payload for parameterised models, e.g. {"model": "rician", "k_factor": 3} or {"model": "shadowing", "sigma_db": 4}'),
            ParamSpec("draws", "int", 50, "Monte-Carlo fading draws (>= 2)"),
            ParamSpec("seed", "seed", 0, "RNG seed for the fading draws"),
        ) + api.CHUNK_PARAMS + CACHE_PARAMS,
        result_type=FadingSweepResult,
        plan=_fading_plan,
        assemble=_fading_assemble,
        direct=_fading_direct,
    )
)


def run_fading_sweep(
    *,
    fading: FadingModel | None = None,
    draws: int = 50,
    seed: SeedLike = 0,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
    reuse_cache: bool = False,
    scheduler: JobScheduler | None = None,
) -> FadingSweepResult:
    """Monte-Carlo the equilibrium over fading realisations.

    Thin shim over the ``fading_sweep`` spec: the fading gains are drawn
    up front (a pure function of ``seed``); each realisation's market
    then solves in the stacked pass or, with ``scheduler``, as one cached
    ``equilibrium_cell`` job.
    """
    return api.run_experiment(
        FADING_SWEEP,
        {
            "fading": fading,
            "draws": draws,
            "seed": seed,
            "chunk_size": chunk_size,
            "chunk_bytes": chunk_bytes,
            "reuse_cache": reuse_cache,
        },
        scheduler=scheduler,
    )


@dataclass
class PopulationSweepResult:
    """Equilibrium statistics across random population draws."""

    utility_stats: SummaryStats
    price_stats: SummaryStats
    per_draw: list[tuple[float, float]]
    """(price, MSP utility) per population draw."""

    def table(self) -> Table:
        """Printable summary."""
        table = Table(
            headers=("metric", "mean", "ci_low", "ci_high", "n"),
            title="Robustness — equilibrium across random populations",
        )
        for name, stats in (
            ("p*", self.price_stats),
            ("MSP utility", self.utility_stats),
        ):
            table.add_row(
                name, stats.mean, stats.ci_low, stats.ci_high, stats.count
            )
        return table


def _population_markets(params) -> list[StackelbergMarket]:
    draws = int(params["draws"])
    if draws < 2:
        raise ValueError(f"draws must be >= 2, got {draws}")
    rng = as_generator(params["seed"])
    # Populations are drawn up front: the grid — and every cell's job
    # spec — is a pure function of (num_vmus, draws, seed).
    return [
        StackelbergMarket(sample_population(int(params["num_vmus"]), seed=rng))
        for _ in range(draws)
    ]


def _population_pack(per_draw) -> PopulationSweepResult:
    prices = [p for p, _ in per_draw]
    utilities = [u for _, u in per_draw]
    return PopulationSweepResult(
        utility_stats=summarize(utilities),
        price_stats=summarize(prices),
        per_draw=per_draw,
    )


def _population_plan(params) -> ExperimentPlan:
    markets = _population_markets(params)
    return ExperimentPlan(
        "population_sweep", dict(params), _grid_jobs(markets)
    )


def _population_assemble(
    plan: ExperimentPlan, results: list
) -> PopulationSweepResult:
    return _population_pack(_cells_from_payloads(results))


def _population_direct(params) -> PopulationSweepResult:
    return _population_pack(_solve_grid_params(params, _population_markets(params)))


POPULATION_SWEEP = api.register(
    api.ExperimentSpec(
        name="population_sweep",
        description=(
            "Robustness — equilibrium statistics across random population "
            "draws from the paper's parameter ranges"
        ),
        params=(
            ParamSpec("num_vmus", "int", 4, "VMUs per drawn population"),
            ParamSpec("draws", "int", 20, "random population draws (>= 2)"),
            ParamSpec("seed", "seed", 0, "RNG seed for the population draws"),
        ) + api.CHUNK_PARAMS + CACHE_PARAMS,
        result_type=PopulationSweepResult,
        plan=_population_plan,
        assemble=_population_assemble,
        direct=_population_direct,
    )
)


def run_population_sweep(
    *,
    num_vmus: int = 4,
    draws: int = 20,
    seed: SeedLike = 0,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
    reuse_cache: bool = False,
    scheduler: JobScheduler | None = None,
) -> PopulationSweepResult:
    """Solve the market for many random populations from the paper ranges.

    Thin shim over the ``population_sweep`` spec: populations are drawn
    up front (pure function of ``seed``); each draw's market solves in
    the stacked pass or, with ``scheduler``, as one cached
    ``equilibrium_cell`` job.
    """
    return api.run_experiment(
        POPULATION_SWEEP,
        {
            "num_vmus": num_vmus,
            "draws": draws,
            "seed": seed,
            "chunk_size": chunk_size,
            "chunk_bytes": chunk_bytes,
            "reuse_cache": reuse_cache,
        },
        scheduler=scheduler,
    )
