"""Robustness experiments beyond the paper's figures.

The paper evaluates one radio operating point (d = 500 m, no fading) and
one population draw. These sweeps probe how the equilibrium — and hence
everything plotted in Fig. 3 — shifts when the physical layer or the
population moves:

- :func:`run_distance_sweep` — RSU separation d: lower spectral
  efficiency raises AoTM and reshapes prices (`p* ∝ sqrt(SE)`).
- :func:`run_fading_sweep` — Monte-Carlo over fading draws: equilibrium
  price/utility distributions under Rayleigh/Rician/shadowing channels.
- :func:`run_population_sweep` — multiple random population draws from
  the paper's parameter ranges with multi-seed summary statistics.

Every sweep builds its whole market grid up front and solves it as one
:meth:`repro.core.marketstack.MarketStack.equilibria_stacked` pass —
bitwise-equal to the historical per-market ``equilibrium()`` loops. Pass a
:class:`repro.experiments.scheduler.JobScheduler` to any sweep and each
grid cell becomes one ``equilibrium_cell`` job instead — cached, resumable,
fan-out-able across processes, and still bitwise-equal (the scalar
equilibrium *is* the ``M = 1`` stacked solve).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.fading import FadingModel, RayleighFading
from repro.channel.link import paper_link
from repro.core.marketstack import MarketStack
from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population, sample_population
from repro.experiments.scheduler import Job, JobScheduler, market_to_payload
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import SummaryStats, summarize
from repro.utils.tables import Table

__all__ = [
    "DistanceSweepResult",
    "run_distance_sweep",
    "FadingSweepResult",
    "run_fading_sweep",
    "PopulationSweepResult",
    "run_population_sweep",
]


def _solve_grid(
    markets: list[StackelbergMarket], scheduler: JobScheduler | None
) -> list[tuple[float, float]]:
    """Per-market ``(price, msp_utility)`` equilibria for one sweep grid.

    Without a scheduler: one stacked solve over the whole grid. With one:
    one ``equilibrium_cell`` job per market — the same numbers (scalar
    equilibrium == ``M = 1`` stacked solve, pinned in
    ``tests/test_core_equilibria_stacked.py``), but cached/resumable and
    parallel across the scheduler's workers.
    """
    if scheduler is None:
        solved = MarketStack(markets).equilibria_stacked()
        cells = []
        for m in range(len(markets)):
            equilibrium = solved.equilibrium(m)
            cells.append((equilibrium.price, equilibrium.msp_utility))
        return cells
    jobs = [
        Job("equilibrium_cell", {"market": market_to_payload(market)})
        for market in markets
    ]
    return [
        (float(payload["price"]), float(payload["msp_utility"]))
        for payload in scheduler.run(jobs)
    ]


@dataclass
class DistanceSweepResult:
    """Equilibrium vs RSU separation."""

    distances_m: tuple[float, ...]
    spectral_efficiencies: list[float] = field(default_factory=list)
    prices: list[float] = field(default_factory=list)
    msp_utilities: list[float] = field(default_factory=list)

    def table(self) -> Table:
        """Printable sweep table."""
        table = Table(
            headers=("d (m)", "SE (bit/s/Hz)", "p*", "MSP utility"),
            title="Robustness — equilibrium vs RSU separation",
        )
        for row in zip(
            self.distances_m, self.spectral_efficiencies, self.prices,
            self.msp_utilities,
        ):
            table.add_row(*row)
        return table


def run_distance_sweep(
    distances_m: tuple[float, ...] = (250.0, 500.0, 1000.0, 2000.0, 4000.0),
    *,
    scheduler: JobScheduler | None = None,
) -> DistanceSweepResult:
    """Solve the paper's 2-VMU market across RSU separations.

    The swept markets form one :class:`MarketStack`, so every separation's
    equilibrium comes out of a single stacked solve (or, with
    ``scheduler``, one cached ``equilibrium_cell`` job per separation).
    """
    result = DistanceSweepResult(distances_m=tuple(distances_m))
    vmus = paper_fig2_population()
    markets = [
        StackelbergMarket(vmus, link=paper_link().with_distance(d))
        for d in distances_m
    ]
    cells = _solve_grid(markets, scheduler)
    for market, (price, msp_utility) in zip(markets, cells):
        result.spectral_efficiencies.append(market.spectral_efficiency)
        result.prices.append(price)
        result.msp_utilities.append(msp_utility)
    return result


@dataclass
class FadingSweepResult:
    """Equilibrium distribution under a stochastic channel."""

    price_stats: SummaryStats
    utility_stats: SummaryStats
    prices: list[float]
    utilities: list[float]

    def table(self) -> Table:
        """Printable summary."""
        table = Table(
            headers=("metric", "mean", "ci_low", "ci_high", "n"),
            title="Robustness — equilibrium under channel fading",
        )
        for name, stats in (
            ("p*", self.price_stats),
            ("MSP utility", self.utility_stats),
        ):
            table.add_row(
                name, stats.mean, stats.ci_low, stats.ci_high, stats.count
            )
        return table


def run_fading_sweep(
    *,
    fading: FadingModel | None = None,
    draws: int = 50,
    seed: SeedLike = 0,
    scheduler: JobScheduler | None = None,
) -> FadingSweepResult:
    """Monte-Carlo the equilibrium over fading realisations.

    The fading gains are drawn up front in this process (so the grid is a
    pure function of ``seed``); each realisation's market then solves in
    the stacked pass or, with ``scheduler``, as one cached job.
    """
    if draws < 2:
        raise ValueError(f"draws must be >= 2, got {draws}")
    fading = fading if fading is not None else RayleighFading()
    rng = as_generator(seed)
    vmus = paper_fig2_population()
    gains = fading.sample(rng, size=draws)
    # One stacked solve across every fading realisation's market.
    markets = [
        StackelbergMarket(
            vmus, link=paper_link().with_fading_gain(float(max(gain, 1e-6)))
        )
        for gain in gains
    ]
    cells = _solve_grid(markets, scheduler)
    prices = [price for price, _ in cells]
    utilities = [utility for _, utility in cells]
    return FadingSweepResult(
        price_stats=summarize(prices),
        utility_stats=summarize(utilities),
        prices=prices,
        utilities=utilities,
    )


@dataclass
class PopulationSweepResult:
    """Equilibrium statistics across random population draws."""

    utility_stats: SummaryStats
    price_stats: SummaryStats
    per_draw: list[tuple[float, float]]
    """(price, MSP utility) per population draw."""

    def table(self) -> Table:
        """Printable summary."""
        table = Table(
            headers=("metric", "mean", "ci_low", "ci_high", "n"),
            title="Robustness — equilibrium across random populations",
        )
        for name, stats in (
            ("p*", self.price_stats),
            ("MSP utility", self.utility_stats),
        ):
            table.add_row(
                name, stats.mean, stats.ci_low, stats.ci_high, stats.count
            )
        return table


def run_population_sweep(
    *,
    num_vmus: int = 4,
    draws: int = 20,
    seed: SeedLike = 0,
    scheduler: JobScheduler | None = None,
) -> PopulationSweepResult:
    """Solve the market for many random populations from the paper ranges.

    Populations are drawn up front (pure function of ``seed``); each
    draw's market solves in the stacked pass or, with ``scheduler``, as
    one cached ``equilibrium_cell`` job.
    """
    if draws < 2:
        raise ValueError(f"draws must be >= 2, got {draws}")
    rng = as_generator(seed)
    # One (ragged-capable) stacked solve across every population draw.
    markets = [
        StackelbergMarket(sample_population(num_vmus, seed=rng))
        for _ in range(draws)
    ]
    per_draw: list[tuple[float, float]] = _solve_grid(markets, scheduler)
    prices = [p for p, _ in per_draw]
    utilities = [u for _, u in per_draw]
    return PopulationSweepResult(
        utility_stats=summarize(utilities),
        price_stats=summarize(prices),
        per_draw=per_draw,
    )
