"""The ``pricing_service`` experiment: live-service churn scenarios.

Replays a deterministic stream of update events and price queries against
a :class:`~repro.service.LivePricingService` over a city-grid stack
(:mod:`repro.mobility.citygrid`), so ``run pricing_service --param m=1000
--param churn=0.05`` measures the incremental dirty-row solve under
realistic churn — join/leave storms, channel-fading drift, rush-hour
demand surges — with the usual fan-out/cache/resume.

Determinism: the initial markets and the whole event stream are a pure
function of the validated parameters (per-index city seeding plus one
``default_rng([seed, ...])`` stream for the churn draws), so the
``pricing_service`` job recomputes the identical scenario in a worker
process. The result's counting fields (queries, updates, rows resolved,
price checksums) are therefore bitwise-reproducible; the latency fields
(p50/p99/QPS) are measurements and excluded from result equality
(``compare=False``).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.channel.fading import RayleighFading
from repro.entities.vmu import VmuProfile, sample_population
from repro.errors import ConfigurationError
from repro.experiments import api
from repro.experiments.api import CHUNK_PARAMS, ExperimentPlan, ParamSpec
from repro.experiments.scheduler import Job, JobScheduler
from repro.mobility.citygrid import CityGridSpec, city_markets
from repro.service import (
    FadingDrift,
    LivePricingService,
    Query,
    UpdateMarket,
    VmuJoin,
    VmuLeave,
)
from repro.utils.tables import Table

__all__ = [
    "PricingServiceResult",
    "run_pricing_service",
    "run_pricing_service_job",
    "PRICING_SERVICE",
    "SCENARIOS",
]

SCENARIOS = ("mixed", "join_leave", "fading", "rush_hour")
"""Churn scenarios: VMU join/leave storms, channel-fading drift,
rush-hour demand surges, or a round-robin mix of all three."""


@dataclass
class PricingServiceResult:
    """One served churn scenario: work counters plus latency telemetry.

    Every field except the latency block is a pure function of the
    parameters (the event stream is deterministic); the latency fields
    are wall-clock measurements and excluded from equality.
    """

    num_markets: int
    windows: int
    scenario: str
    queries: int
    updates: int
    solves: int
    """Stacked solves the service ran (1 cold + 1 per dirty window)."""
    rows_resolved: int
    """Market rows actually solved — a cold service would pay
    ``solves · num_markets``."""
    feasible: int
    """Feasible markets in the final state."""
    final_mean_price: float
    """Mean equilibrium price over the final state's feasible markets."""
    quoted_feasible: int
    """Queries answered with a feasible quote."""
    quoted_price_sum: float
    """Σ of feasible quoted prices — the determinism checksum of every
    answer the service gave."""
    qps: float = field(compare=False, default=0.0)
    p50_ms: float = field(compare=False, default=0.0)
    p99_ms: float = field(compare=False, default=0.0)
    busy_s: float = field(compare=False, default=0.0)

    def table(self) -> Table:
        """Printable summary."""
        table = Table(
            headers=("metric", "value"),
            title=(
                f"Pricing service — {self.num_markets} markets, "
                f"{self.windows} windows of {self.scenario} churn"
            ),
        )
        table.add_row("queries answered", self.queries)
        table.add_row("updates applied", self.updates)
        table.add_row("stacked solves", self.solves)
        table.add_row("rows re-solved", self.rows_resolved)
        table.add_row(
            "rows a cold service would solve", self.solves * self.num_markets
        )
        table.add_row("feasible markets (final)", self.feasible)
        table.add_row("mean p* (final)", self.final_mean_price)
        table.add_row("QPS (busy)", self.qps)
        table.add_row("p50 latency (ms)", self.p50_ms)
        table.add_row("p99 latency (ms)", self.p99_ms)
        return table


SERVICE_PARAMS: tuple[ParamSpec, ...] = (
    ParamSpec("m", "int", 64, "number of live markets (city-grid junctions)"),
    ParamSpec("windows", "int", 20, "update/query micro-windows to serve"),
    ParamSpec("queries_per_window", "int", 32, "price queries per window"),
    ParamSpec("churn", "float", 0.05, "fraction of markets updated per window (>= 1 market)"),
    ParamSpec("scenario", "str", "mixed", "churn scenario: mixed | join_leave | fading | rush_hour"),
    ParamSpec("rush_amplitude", "float", 0.5, "peak demand surge of the rush_hour scenario (fraction of base vehicles/cell)"),
    ParamSpec("max_vmus", "int", 6, "max VMUs per market (population drawn in [1, max])"),
    ParamSpec("vehicles_per_cell", "float", 400.0, "base vehicle stream served per RSU cell"),
    ParamSpec("warm_start", "bool", False, "warm-start dirty rows' refinement from their previous equilibrium price"),
    ParamSpec("seed", "int", 0, "root seed of the city draw and the churn stream"),
)


def _city_spec(params: Mapping) -> CityGridSpec:
    return CityGridSpec.for_markets(
        int(params["m"]),
        max_vmus=int(params["max_vmus"]),
        vehicles_per_cell=float(params["vehicles_per_cell"]),
        seed=int(params["seed"]),
    )


def _churn_event(
    kind: str,
    target: int,
    *,
    spec: CityGridSpec,
    populations: list[list[str]],
    rng: np.random.Generator,
    rush_factor: float,
    serial: int,
):
    """One update event of the stream (pure function of the rng stream)."""
    if kind == "join_leave":
        # Leave when the market can spare a VMU and the coin says so;
        # otherwise a fresh uniquely-named VMU joins.
        if len(populations[target]) > 1 and rng.uniform() < 0.5:
            victim = int(rng.integers(len(populations[target])))
            vmu_id = populations[target].pop(victim)
            return VmuLeave(target, vmu_id)
        drawn = sample_population(1, seed=rng)[0]
        vmu = VmuProfile(
            vmu_id=f"live-{serial}",
            data_size_mb=drawn.data_size_mb,
            immersion_coef=drawn.immersion_coef,
        )
        populations[target].append(vmu.vmu_id)
        return VmuJoin(target, vmu)
    if kind == "fading":
        gain = float(max(RayleighFading().sample(rng, size=1)[0], 1e-6))
        return FadingDrift(target, gain)
    if kind == "rush_hour":
        surged = dataclasses.replace(
            spec, vehicles_per_cell=spec.vehicles_per_cell * rush_factor
        )
        market = city_markets(surged, target, target + 1)[0]
        populations[target] = [v.vmu_id for v in market.vmus]
        return UpdateMarket(target, market)
    raise ConfigurationError(
        f"unknown scenario {kind!r}; expected one of {SCENARIOS}"
    )


def _build_scenario(params: Mapping):
    """The initial markets and the full event stream for one run."""
    scenario = str(params["scenario"])
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; expected one of {SCENARIOS}"
        )
    churn = float(params["churn"])
    if churn < 0.0:
        raise ConfigurationError(f"churn must be >= 0, got {churn}")
    windows = int(params["windows"])
    queries_per_window = int(params["queries_per_window"])
    if windows < 1 or queries_per_window < 1:
        raise ConfigurationError(
            "windows and queries_per_window must be >= 1, got "
            f"{windows} and {queries_per_window}"
        )
    spec = _city_spec(params)
    markets = city_markets(spec)
    num_markets = spec.num_markets
    populations = [[v.vmu_id for v in market.vmus] for market in markets]
    rng = np.random.default_rng([int(params["seed"]), 0x5E21])
    updates_per_window = max(1, round(churn * num_markets))
    rush_amplitude = float(params["rush_amplitude"])
    rotation = ("join_leave", "fading", "rush_hour")
    events: list[object] = []
    serial = 0
    for window in range(windows):
        rush_factor = 1.0 + rush_amplitude * math.sin(
            math.pi * (window + 1) / windows
        )
        targets = rng.choice(
            num_markets, size=min(updates_per_window, num_markets),
            replace=False,
        )
        for position, target in enumerate(targets):
            kind = (
                rotation[(window + position) % len(rotation)]
                if scenario == "mixed"
                else scenario
            )
            events.append(
                _churn_event(
                    kind,
                    int(target),
                    spec=spec,
                    populations=populations,
                    rng=rng,
                    rush_factor=rush_factor,
                    serial=serial,
                )
            )
            serial += 1
        for index in rng.integers(0, num_markets, size=queries_per_window):
            events.append(Query(int(index)))
    return markets, events


def _run_service(params: Mapping) -> PricingServiceResult:
    markets, events = _build_scenario(params)
    service = LivePricingService(
        markets,
        warm_start=bool(params["warm_start"]),
        chunk_size=params["chunk_size"],
        chunk_bytes=params["chunk_bytes"],
    )
    quotes = service.serve(events)
    stats = service.stats()
    solved = service.equilibria()
    feasible = int(solved.feasible.sum())
    final_mean_price = (
        float(solved.prices[solved.feasible].mean()) if feasible else 0.0
    )
    quoted = [quote for quote in quotes if quote.feasible]
    return PricingServiceResult(
        num_markets=int(params["m"]),
        windows=int(params["windows"]),
        scenario=str(params["scenario"]),
        queries=stats.queries,
        updates=stats.updates,
        solves=stats.solves,
        rows_resolved=stats.rows_resolved,
        feasible=feasible,
        final_mean_price=final_mean_price,
        quoted_feasible=len(quoted),
        quoted_price_sum=float(sum(quote.price for quote in quoted)),
        qps=stats.qps,
        p50_ms=stats.p50_ms,
        p99_ms=stats.p99_ms,
        busy_s=stats.busy_s,
    )


def run_pricing_service_job(payload: Mapping) -> dict:
    """Job kind ``pricing_service``: serve one churn scenario end to end.

    The payload is the validated parameter dict (all JSON scalars). The
    scenario replays identically in any process, so every counting field
    of the result is bitwise-equal to the direct path; latency fields are
    re-measured wherever the job runs.
    """
    return api.result_to_payload(_run_service(payload))


def _plan(params: Mapping) -> ExperimentPlan:
    return ExperimentPlan(
        "pricing_service", dict(params), [Job("pricing_service", dict(params))]
    )


def _assemble(plan: ExperimentPlan, results: list) -> PricingServiceResult:
    return api.result_from_payload(PricingServiceResult, results[0])


PRICING_SERVICE = api.register(
    api.ExperimentSpec(
        name="pricing_service",
        description=(
            "Live pricing service under churn — incremental dirty-row "
            "re-solve over a mutable city-grid stack (join/leave storms, "
            "fading drift, rush-hour demand; p50/p99 latency and QPS)"
        ),
        params=SERVICE_PARAMS + CHUNK_PARAMS,
        result_type=PricingServiceResult,
        plan=_plan,
        assemble=_assemble,
        direct=_run_service,
    )
)


def run_pricing_service(
    m: int = 64,
    *,
    windows: int = 20,
    queries_per_window: int = 32,
    churn: float = 0.05,
    scenario: str = "mixed",
    warm_start: bool = False,
    seed: int = 0,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
    scheduler: JobScheduler | None = None,
) -> PricingServiceResult:
    """Serve one churn scenario against the live pricing service.

    Thin shim over the ``pricing_service`` spec: the event stream is a
    pure function of the parameters, so with ``scheduler`` the whole
    scenario runs as one cached, resumable ``pricing_service`` job —
    counting fields bitwise-equal to the in-process path.
    """
    return api.run_experiment(
        PRICING_SERVICE,
        {
            "m": m,
            "windows": windows,
            "queries_per_window": queries_per_window,
            "churn": churn,
            "scenario": scenario,
            "warm_start": warm_start,
            "seed": seed,
            "chunk_size": chunk_size,
            "chunk_bytes": chunk_bytes,
        },
        scheduler=scheduler,
    )
