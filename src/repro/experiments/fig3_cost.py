"""Experiments E3/E4 — Fig. 3(a)/(b): sweep over unit transmission cost C.

Setting (paper Sec. V-B): two VMUs, D = (200, 100) MB, α = (5, 5),
C swept from 5 to 9. Fig. 3(a) reports the MSP's utility and price per
scheme (proposed DRL vs random vs greedy, against the Stackelberg
equilibrium); Fig. 3(b) reports the VMUs' total utility and total
bandwidth strategy. Paper anchors: price ≈ 25 at C = 5 and ≈ 34 at C = 9;
total bandwidth ≈ 27.9 at C = 6 and ≈ 23.4 at C = 8.

The whole cost sweep rides the market-stack axis: the swept markets form
one :class:`repro.core.marketstack.MarketStack`, and every scheme that
commits to its price vector (random, equilibrium) evaluates the *entire*
grid of cost-varied markets as a single stacked solve —
``(M costs, R rounds, N VMUs)`` in one numpy pass — via
:func:`repro.experiments.runner.compare_schemes_stacked`. Per cost, the
results equal the historical per-market loop exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    PolicyEvaluation,
    compare_schemes_scheduled,
    compare_schemes_stacked,
)
from repro.experiments.scheduler import JobScheduler
from repro.utils.tables import Table

__all__ = ["CostSweepResult", "run_fig3_cost"]

DEFAULT_COSTS = (5.0, 6.0, 7.0, 8.0, 9.0)


@dataclass
class CostSweepResult:
    """Per-cost, per-scheme evaluations for Fig. 3(a)/(b)."""

    costs: tuple[float, ...]
    evaluations: dict[float, dict[str, PolicyEvaluation]] = field(
        default_factory=dict
    )

    def msp_table(self) -> Table:
        """Fig. 3(a): MSP utility and price strategy vs transmission cost."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["cost"]
        for scheme in schemes:
            headers += [f"{scheme}_utility", f"{scheme}_price"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(a) — MSP utility & price vs transmission cost",
        )
        for cost in self.costs:
            row: list[object] = [cost]
            for scheme in schemes:
                evaluation = self.evaluations[cost][scheme]
                row += [evaluation.mean_msp_utility, evaluation.mean_price]
            table.add_row(*row)
        return table

    def vmu_table(self) -> Table:
        """Fig. 3(b): total VMU utility and bandwidth vs transmission cost."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["cost"]
        for scheme in schemes:
            headers += [f"{scheme}_vmu_utility", f"{scheme}_bandwidth"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(b) — total VMU utility & bandwidth vs transmission cost",
        )
        for cost in self.costs:
            row: list[object] = [cost]
            for scheme in schemes:
                evaluation = self.evaluations[cost][scheme]
                row += [
                    evaluation.mean_total_vmu_utility,
                    evaluation.mean_total_bandwidth_market,
                ]
            table.add_row(*row)
        return table

    def series(self, scheme: str, metric: str) -> list[float]:
        """One scheme's series across the cost sweep (for shape checks)."""
        return [
            getattr(self.evaluations[cost][scheme], metric) for cost in self.costs
        ]


def run_fig3_cost(
    config: ExperimentConfig | None = None,
    *,
    costs: tuple[float, ...] = DEFAULT_COSTS,
    schemes: tuple[str, ...] = ("drl", "greedy", "random", "equilibrium"),
    scheduler: JobScheduler | None = None,
) -> CostSweepResult:
    """Sweep the unit transmission cost and evaluate every scheme.

    The swept markets are evaluated as one stacked market grid (see the
    module docstring); only the history-dependent schemes fall back to
    per-market loops. With ``scheduler``, each market point's independent
    DRL (and greedy) training/evaluation becomes one ``market_scheme``
    job — parallel across the scheduler's workers, cached and resumable
    with its cache dir, bitwise-equal to the sequential path.
    """
    config = config if config is not None else ExperimentConfig.quick()
    base = StackelbergMarket(paper_fig2_population())
    result = CostSweepResult(costs=tuple(costs))
    markets = [base.with_unit_cost(float(cost)) for cost in costs]
    if scheduler is None:
        evaluations = compare_schemes_stacked(markets, config, schemes=schemes)
    else:
        evaluations = compare_schemes_scheduled(
            markets, config, schemes=schemes, scheduler=scheduler
        )
    for cost, by_scheme in zip(result.costs, evaluations):
        result.evaluations[cost] = by_scheme
    return result
