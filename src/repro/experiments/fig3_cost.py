"""Experiments E3/E4 — Fig. 3(a)/(b): sweep over unit transmission cost C.

Setting (paper Sec. V-B): two VMUs, D = (200, 100) MB, α = (5, 5),
C swept from 5 to 9. Fig. 3(a) reports the MSP's utility and price per
scheme (proposed DRL vs random vs greedy, against the Stackelberg
equilibrium); Fig. 3(b) reports the VMUs' total utility and total
bandwidth strategy. Paper anchors: price ≈ 25 at C = 5 and ≈ 34 at C = 9;
total bandwidth ≈ 27.9 at C = 6 and ≈ 23.4 at C = 8.

The whole cost sweep rides the market-stack axis: the swept markets form
one :class:`repro.core.marketstack.MarketStack`, and every scheme that
commits to its price vector (random, equilibrium) evaluates the *entire*
grid of cost-varied markets as a single stacked solve —
``(M costs, R rounds, N VMUs)`` in one numpy pass — via
:func:`repro.experiments.runner.compare_schemes_stacked`. Per cost, the
results equal the historical per-market loop exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.experiments import api
from repro.experiments.api import CONFIG_PARAMS, ExperimentPlan, ParamSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    PolicyEvaluation,
    assemble_scheme_results,
    compare_schemes_stacked,
    plan_scheme_jobs,
)
from repro.experiments.scheduler import JobScheduler
from repro.utils.tables import Table

__all__ = ["CostSweepResult", "run_fig3_cost", "FIG3_COST"]

DEFAULT_COSTS = (5.0, 6.0, 7.0, 8.0, 9.0)
DEFAULT_SCHEMES = ("drl", "greedy", "random", "equilibrium")


@dataclass
class CostSweepResult:
    """Per-cost, per-scheme evaluations for Fig. 3(a)/(b)."""

    costs: tuple[float, ...]
    evaluations: dict[float, dict[str, PolicyEvaluation]] = field(
        default_factory=dict
    )

    def msp_table(self) -> Table:
        """Fig. 3(a): MSP utility and price strategy vs transmission cost."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["cost"]
        for scheme in schemes:
            headers += [f"{scheme}_utility", f"{scheme}_price"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(a) — MSP utility & price vs transmission cost",
        )
        for cost in self.costs:
            row: list[object] = [cost]
            for scheme in schemes:
                evaluation = self.evaluations[cost][scheme]
                row += [evaluation.mean_msp_utility, evaluation.mean_price]
            table.add_row(*row)
        return table

    def vmu_table(self) -> Table:
        """Fig. 3(b): total VMU utility and bandwidth vs transmission cost."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["cost"]
        for scheme in schemes:
            headers += [f"{scheme}_vmu_utility", f"{scheme}_bandwidth"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(b) — total VMU utility & bandwidth vs transmission cost",
        )
        for cost in self.costs:
            row: list[object] = [cost]
            for scheme in schemes:
                evaluation = self.evaluations[cost][scheme]
                row += [
                    evaluation.mean_total_vmu_utility,
                    evaluation.mean_total_bandwidth_market,
                ]
            table.add_row(*row)
        return table

    def series(self, scheme: str, metric: str) -> list[float]:
        """One scheme's series across the cost sweep (for shape checks)."""
        return [
            getattr(self.evaluations[cost][scheme], metric) for cost in self.costs
        ]


def _markets(params) -> list[StackelbergMarket]:
    base = StackelbergMarket(paper_fig2_population())
    return [base.with_unit_cost(float(cost)) for cost in params["costs"]]


def _pack(params, evaluations) -> CostSweepResult:
    result = CostSweepResult(costs=tuple(params["costs"]))
    for cost, by_scheme in zip(result.costs, evaluations):
        result.evaluations[cost] = by_scheme
    return result


def _plan(params) -> ExperimentPlan:
    config = api.resolve_config(params)
    markets = _markets(params)
    jobs, slots = plan_scheme_jobs(markets, config, tuple(params["schemes"]))
    return ExperimentPlan(
        "fig3_cost",
        dict(params),
        jobs,
        context={"config": config, "markets": markets, "slots": slots},
    )


def _assemble(plan: ExperimentPlan, results: list) -> CostSweepResult:
    evaluations = assemble_scheme_results(
        plan.context["markets"],
        plan.context["config"],
        tuple(plan.params["schemes"]),
        plan.context["slots"],
        results,
    )
    return _pack(plan.params, evaluations)


def _direct(params) -> CostSweepResult:
    config = api.resolve_config(params)
    evaluations = compare_schemes_stacked(
        _markets(params), config, schemes=tuple(params["schemes"])
    )
    return _pack(params, evaluations)


FIG3_COST = api.register(
    api.ExperimentSpec(
        name="fig3_cost",
        description=(
            "Fig. 3(a)/(b) — sweep the unit transmission cost C and "
            "compare pricing schemes (MSP utility/price, VMU "
            "utility/bandwidth per cost point)"
        ),
        params=(
            ParamSpec("costs", "floats", DEFAULT_COSTS, "unit transmission costs to sweep"),
            ParamSpec("schemes", "strs", DEFAULT_SCHEMES, "pricing schemes to compare"),
            *CONFIG_PARAMS,
        ),
        result_type=CostSweepResult,
        plan=_plan,
        assemble=_assemble,
        direct=_direct,
        render=lambda r: f"{r.msp_table()}\n\n{r.vmu_table()}",
    )
)


def run_fig3_cost(
    config: ExperimentConfig | None = None,
    *,
    costs: tuple[float, ...] = DEFAULT_COSTS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    scheduler: JobScheduler | None = None,
) -> CostSweepResult:
    """Sweep the unit transmission cost and evaluate every scheme.

    Thin shim over :func:`repro.experiments.api.run_experiment` with the
    ``fig3_cost`` spec. Without a scheduler the swept markets are
    evaluated as one stacked market grid (see the module docstring); with
    one, each market point's independent DRL (and greedy)
    training/evaluation becomes one ``market_scheme`` job — parallel
    across the scheduler's workers, cached and resumable with its cache
    dir, bitwise-equal to the sequential path.
    """
    return api.run_experiment(
        FIG3_COST,
        {"config": config, "costs": costs, "schemes": schemes},
        scheduler=scheduler,
    )
