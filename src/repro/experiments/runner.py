"""Shared machinery for the per-figure experiments.

``train_drl`` builds the POMDP env + PPO agent for a market and runs
Algorithm 1; ``evaluate_policy`` plays any pricing policy for a fixed
number of rounds and summarises the market outcome; ``compare_schemes``
produces the DRL / random / greedy / equilibrium comparison the paper's
Fig. 3 panels report.

Everything routes through the batched simulation engine
(:mod:`repro.sim`): training collects ``config.num_envs`` episodes
concurrently through a :class:`VectorMigrationEnv` (``num_envs = 1`` is
bit-compatible with a scalar single-env run on the same seed), and policy
evaluation plays price vectors through one batched market solve whenever
the policy can commit to them.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields
from pathlib import Path

from repro.baselines import GreedyPricing, LearnedPricing, OraclePricing, RandomPricing
from repro.core.mechanism import PricingPolicy
from repro.core.stackelberg import PriceBatchOutcome, StackelbergMarket
from repro.drl.checkpoints import save_agent
from repro.drl.ppo import PPOConfig
from repro.drl.trainer import TrainerConfig, TrainingResult, train_pricing_agent
from repro.env.vector import VectorMigrationEnv
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scheduler import (
    ARTIFACT_DIR_KEY,
    Job,
    JobScheduler,
    config_from_payload,
    config_to_payload,
    market_from_payload,
    market_to_payload,
)
from repro.sim.engine import play_policies_stacked, play_policy

__all__ = [
    "PolicyEvaluation",
    "TrainedPricing",
    "FleetTrainedPricing",
    "train_drl",
    "train_drl_fleet",
    "evaluate_policy",
    "evaluate_policies_stacked",
    "evaluation_to_payload",
    "evaluation_from_payload",
    "compare_schemes",
    "compare_schemes_stacked",
    "compare_schemes_scheduled",
    "plan_scheme_jobs",
    "assemble_scheme_results",
    "run_market_scheme_job",
    "run_training_job",
]

_KNOWN_SCHEMES = ("drl", "greedy", "random", "equilibrium")
# Schemes that commit to their price vector up front; they evaluate as one
# stacked solve over the whole market grid instead of per-market jobs.
_PLANNABLE_SCHEMES = ("random", "equilibrium")


@dataclass(frozen=True)
class PolicyEvaluation:
    """Summary of a policy played for ``rounds`` against a market.

    ``best_*`` fields describe the single best round a scheme found;
    ``mean_*`` fields are per-round averages. The figure tables report the
    means (that is where the DRL-vs-baseline gap the paper shows lives —
    the *best* of many uniform draws is trivially near-optimal), and keep
    the best-round values for reference.
    """

    mean_price: float
    best_price: float
    mean_msp_utility: float
    best_msp_utility: float
    total_bandwidth_market: float
    """Σ b at the best round, in the paper's reported (market) units."""
    total_vmu_utility: float
    """Σ U_n at the best round."""
    mean_vmu_utility: float
    """Average per-VMU utility at the best round."""
    mean_total_bandwidth_market: float
    """Per-round mean of Σ b (market units)."""
    mean_total_vmu_utility: float
    """Per-round mean of Σ U_n."""
    mean_avg_vmu_utility: float
    """Per-round mean of the average per-VMU utility."""


@dataclass
class TrainedPricing:
    """A trained DRL pricing solution for one market."""

    policy: LearnedPricing
    training: TrainingResult


@dataclass
class FleetTrainedPricing:
    """One DRL pricing policy trained across a fleet of markets.

    ``policies[m]`` adapts the single shared agent to market ``m``'s
    observation normalisation; all entries share the same network weights.
    """

    policies: list[LearnedPricing]
    training: TrainingResult


def train_drl(
    market: StackelbergMarket, config: ExperimentConfig
) -> TrainedPricing:
    """Train the PPO pricing agent on ``market`` per ``config``.

    Training runs through the batched engine: ``config.num_envs`` member
    envs (env 0 on ``config.seed``, the rest on independent child streams)
    are stepped in lockstep and their episodes collected concurrently by
    the vector trainer.
    """
    env = VectorMigrationEnv.from_market(
        market,
        config.num_envs,
        seed=config.seed,
        history_length=config.history_length,
        rounds_per_episode=config.rounds_per_episode,
        reward_mode=config.reward_mode,
    )
    agent, result, scaler = train_pricing_agent(
        env,
        trainer_config=TrainerConfig(
            num_episodes=config.num_episodes,
            update_interval=config.update_interval,
            update_epochs=config.update_epochs,
            batch_size=config.batch_size,
            gamma=config.gamma,
            gae_lambda=config.gae_lambda,
        ),
        ppo_config=PPOConfig(
            learning_rate=config.learning_rate,
            entropy_coef=config.entropy_coef,
        ),
        seed=config.seed,
    )
    policy = LearnedPricing(
        agent,
        scaler,
        market,
        history_length=config.history_length,
        seed=config.seed,
    )
    return TrainedPricing(policy=policy, training=result)


def train_drl_fleet(
    markets: Sequence[StackelbergMarket], config: ExperimentConfig
) -> FleetTrainedPricing:
    """Train **one** PPO pricing agent across a heterogeneous market fleet.

    Builds one member env per market (env 0 on ``config.seed``, the rest on
    independent child streams — the :meth:`VectorMigrationEnv.from_markets`
    contract), steps them in lockstep with one stacked market solve per
    round, and pools every market's transitions into each PPO update. The
    result is a single policy exposed once per market (shared weights,
    per-market observation adaptation).
    """
    env = VectorMigrationEnv.from_markets(
        markets,
        seed=config.seed,
        history_length=config.history_length,
        rounds_per_episode=config.rounds_per_episode,
        reward_mode=config.reward_mode,
    )
    agent, result, scaler = train_pricing_agent(
        env,
        trainer_config=TrainerConfig(
            num_episodes=config.num_episodes,
            update_interval=config.update_interval,
            update_epochs=config.update_epochs,
            batch_size=config.batch_size,
            gamma=config.gamma,
            gae_lambda=config.gae_lambda,
        ),
        ppo_config=PPOConfig(
            learning_rate=config.learning_rate,
            entropy_coef=config.entropy_coef,
        ),
        seed=config.seed,
    )
    policies = [
        LearnedPricing(
            agent,
            scaler,
            market,
            history_length=config.history_length,
            seed=config.seed,
        )
        for market in markets
    ]
    return FleetTrainedPricing(policies=policies, training=result)


def _summarise(
    market: StackelbergMarket, played: PriceBatchOutcome
) -> PolicyEvaluation:
    """Fold one evaluation's per-round outcomes into a :class:`PolicyEvaluation`."""
    total_bandwidths = played.allocations.sum(axis=-1)
    total_vmu = played.vmu_utilities.sum(axis=-1)
    avg_vmu = played.vmu_utilities.mean(axis=-1)
    best = played.best_index
    return PolicyEvaluation(
        mean_price=float(played.prices.mean()),
        best_price=float(played.prices[best]),
        mean_msp_utility=float(played.msp_utilities.mean()),
        best_msp_utility=float(played.msp_utilities[best]),
        total_bandwidth_market=float(
            market.to_market_units(total_bandwidths[best])
        ),
        total_vmu_utility=float(total_vmu[best]),
        mean_vmu_utility=float(avg_vmu[best]),
        mean_total_bandwidth_market=float(
            market.to_market_units(total_bandwidths.mean())
        ),
        mean_total_vmu_utility=float(total_vmu.mean()),
        mean_avg_vmu_utility=float(avg_vmu.mean()),
    )


def evaluate_policy(
    market: StackelbergMarket,
    policy: PricingPolicy,
    *,
    rounds: int = 100,
) -> PolicyEvaluation:
    """Play ``policy`` for ``rounds`` and summarise the market outcome.

    Runs through :func:`repro.sim.play_policy`: policies that can commit to
    their price vector (random, fixed, oracle) are evaluated in one batched
    market solve; history-dependent policies fall back to the sequential
    loop with outcome memoisation.
    """
    policy.reset()
    _, played = play_policy(market, policy, rounds)
    return _summarise(market, played)


def evaluate_policies_stacked(
    markets: Sequence[StackelbergMarket],
    policies: Sequence[PricingPolicy],
    *,
    rounds: int = 100,
) -> list[PolicyEvaluation]:
    """Evaluate ``policies[m]`` on ``markets[m]`` for every ``m``, stacked.

    Pairs whose policy commits to its price vector are solved as **one**
    :meth:`MarketStack.outcomes_stacked` pass over the whole market grid
    (the Fig. 3 sweep shape); history-dependent policies fall back to the
    per-market sequential loop. Per market, the returned evaluation equals
    an independent :func:`evaluate_policy` call exactly.
    """
    for policy in policies:
        policy.reset()
    played_all = play_policies_stacked(markets, policies, rounds)
    return [
        _summarise(market, played)
        for market, (_, played) in zip(markets, played_all)
    ]


def compare_schemes(
    market: StackelbergMarket,
    config: ExperimentConfig,
    *,
    schemes: tuple[str, ...] = ("drl", "greedy", "random", "equilibrium"),
) -> dict[str, PolicyEvaluation]:
    """Evaluate the requested pricing schemes on one market.

    Scheme names follow the paper: ``drl`` (proposed), ``greedy`` and
    ``random`` (baselines), ``equilibrium`` (complete-information optimum).
    """
    results: dict[str, PolicyEvaluation] = {}
    for scheme in schemes:
        policy = _scheme_policy(scheme, market, config)
        results[scheme] = evaluate_policy(
            market, policy, rounds=config.evaluation_rounds
        )
    return results


def _scheme_policy(
    scheme: str, market: StackelbergMarket, config: ExperimentConfig
) -> PricingPolicy:
    """Build one scheme's policy for one market (shared by the per-market
    and stacked comparison paths, so both seed identically).

    Exception: ``compare_schemes_stacked`` builds the ``equilibrium``
    scheme through :meth:`OraclePricing.from_stack` (one stacked solve for
    the whole grid, bitwise-equal to the per-market construction here) —
    keep the two branches in sync."""
    cfg = market.config
    if scheme == "drl":
        return train_drl(market, config).policy
    if scheme == "greedy":
        return GreedyPricing(cfg.unit_cost, cfg.max_price, seed=config.seed + 1)
    if scheme == "random":
        return RandomPricing(cfg.unit_cost, cfg.max_price, seed=config.seed + 2)
    if scheme == "equilibrium":
        return OraclePricing(market)
    raise ValueError(f"unknown scheme {scheme!r}")


def compare_schemes_stacked(
    markets: Sequence[StackelbergMarket],
    config: ExperimentConfig,
    *,
    schemes: tuple[str, ...] = ("drl", "greedy", "random", "equilibrium"),
) -> list[dict[str, PolicyEvaluation]]:
    """Evaluate the requested schemes across a whole market grid, stacked.

    The market-axis form of :func:`compare_schemes`: one entry of the
    returned list per market, each a scheme → evaluation dict exactly equal
    to ``compare_schemes(markets[m], config, schemes=schemes)``. Schemes
    that commit to their price vectors (``random``, ``equilibrium``)
    evaluate the whole grid as one stacked market solve; ``drl`` still
    trains per market and, like ``greedy``, evaluates through the
    per-market sequential loop.
    """
    results: list[dict[str, PolicyEvaluation]] = [{} for _ in markets]
    for scheme in schemes:
        # History-dependent policies (drl, greedy) gain nothing from the
        # stacked solve — evaluate each as soon as it is built so at most
        # one trained agent is live at a time. Plannable policies are
        # collected and solved as one stacked pass.
        pending_markets: list[StackelbergMarket] = []
        pending_indices: list[int] = []
        pending_policies: list[PricingPolicy] = []
        if scheme == "equilibrium":
            # The whole grid's oracle prices come from one stacked
            # equilibrium solve (bitwise-equal to per-market solves).
            pending_markets = list(markets)
            pending_indices = list(range(len(markets)))
            pending_policies = list(OraclePricing.from_stack(markets))
        else:
            for index, market in enumerate(markets):
                policy = _scheme_policy(scheme, market, config)
                if getattr(policy, "propose_prices", None) is None:
                    results[index][scheme] = evaluate_policy(
                        market, policy, rounds=config.evaluation_rounds
                    )
                else:
                    pending_markets.append(market)
                    pending_indices.append(index)
                    pending_policies.append(policy)
        if pending_policies:
            evaluations = evaluate_policies_stacked(
                pending_markets,
                pending_policies,
                rounds=config.evaluation_rounds,
            )
            for index, evaluation in zip(pending_indices, evaluations):
                results[index][scheme] = evaluation
    return results


def evaluation_to_payload(evaluation: PolicyEvaluation) -> dict:
    """A :class:`PolicyEvaluation` as a JSON-able dict (flat float fields).

    Floats survive JSON exactly, so an evaluation computed in a worker and
    shipped home through this payload equals the in-process one bitwise.
    """
    return {name: float(value) for name, value in vars(evaluation).items()}


def evaluation_from_payload(payload: Mapping) -> PolicyEvaluation:
    """Rebuild the evaluation :func:`evaluation_to_payload` serialised."""
    if not isinstance(payload, Mapping):
        raise ExperimentError(
            f"evaluation payload must be a mapping, got {type(payload).__name__}"
        )
    expected = {field.name for field in fields(PolicyEvaluation)}
    if set(payload) != expected:
        missing = sorted(expected - set(payload))
        unexpected = sorted(set(payload) - expected)
        raise ExperimentError(
            f"evaluation payload fields mismatch: missing={missing}, "
            f"unexpected={unexpected}"
        )
    return PolicyEvaluation(**{name: float(payload[name]) for name in expected})


def run_market_scheme_job(payload: Mapping) -> dict:
    """Job kind ``market_scheme``: train/build one scheme on one market.

    The Fig. 3 sweeps' per-market unit: rebuilds the market and config
    from their payloads, builds the scheme's policy (for ``drl`` this is a
    full PPO training — the expensive, independent unit worth sharding),
    evaluates it, and ships the evaluation home as a JSON payload. A
    trained DRL agent is also persisted via
    :func:`repro.drl.checkpoints.save_agent` — to an explicit
    ``checkpoint`` payload path if given, else (when the scheduler
    injected its cache dir) to ``<cache>/checkpoints/<job_hash>.npz`` —
    so the parent (or a later process) can reload the policy itself. The
    target derived from the injected dir is *not* part of the job spec,
    so the job hash — and the cache — stays stable across cache-dir
    spellings and machines.
    """
    artifact_dir = payload.get(ARTIFACT_DIR_KEY)
    spec_payload = {
        key: value for key, value in payload.items() if key != ARTIFACT_DIR_KEY
    }
    market = market_from_payload(payload["market"])
    config = config_from_payload(payload["config"])
    scheme = str(payload["scheme"])
    policy = _scheme_policy(scheme, market, config)
    evaluation = evaluate_policy(
        market, policy, rounds=config.evaluation_rounds
    )
    result = {"scheme": scheme, "evaluation": evaluation_to_payload(evaluation)}
    if isinstance(policy, LearnedPricing):
        explicit = payload.get("checkpoint")
        if explicit is not None:
            result["checkpoint"] = str(
                _save_policy(policy, explicit, config)
            )
        elif artifact_dir is not None:
            # Record the checkpoint *relative to the cache dir* so the
            # cached result stays valid when the cache is moved or shared
            # across machines (resolve against the consuming scheduler's
            # cache dir; `JobScheduler.checkpoint_path(job)` is the
            # absolute form).
            job_hash = Job("market_scheme", spec_payload).job_hash()
            relative = Path("checkpoints") / f"{job_hash}.npz"
            _save_policy(policy, Path(artifact_dir) / relative, config)
            result["checkpoint"] = str(relative)
    return result


def run_training_job(payload: Mapping) -> dict:
    """Job kind ``training_run``: one full DRL training, series included.

    The Fig. 2 / ablation unit: rebuilds the market and config from their
    payloads, runs :func:`train_drl` (the expensive, independent unit),
    and ships home the whole training series — ``episode_returns`` and
    ``episode_best_utilities`` (Fig. 2's two panels) plus the converged
    ``tail_mean_best_utility``. With ``"evaluate": true`` in the payload
    the trained policy is also played for ``config.evaluation_rounds`` and
    the :class:`PolicyEvaluation` payload attached (the ablation tables'
    evaluation column). Floats survive the JSON wire exactly, so a
    training executed in a worker merges back bitwise-equal to the
    sequential path. Like ``market_scheme``, the trained agent is parked
    at ``<cache>/checkpoints/<job_hash>.npz`` (cache-relative on the
    wire) when the scheduler injected its cache dir.
    """
    artifact_dir = payload.get(ARTIFACT_DIR_KEY)
    spec_payload = {
        key: value for key, value in payload.items() if key != ARTIFACT_DIR_KEY
    }
    market = market_from_payload(payload["market"])
    config = config_from_payload(payload["config"])
    trained = train_drl(market, config)
    result: dict = {
        "episode_returns": [
            float(v) for v in trained.training.episode_returns
        ],
        "episode_best_utilities": [
            float(v) for v in trained.training.episode_best_utilities
        ],
        "tail_mean_best_utility": trained.training.tail_mean_best_utility(),
    }
    if bool(payload.get("evaluate", False)):
        evaluation = evaluate_policy(
            market, trained.policy, rounds=config.evaluation_rounds
        )
        result["evaluation"] = evaluation_to_payload(evaluation)
    if artifact_dir is not None:
        job_hash = Job("training_run", spec_payload).job_hash()
        relative = Path("checkpoints") / f"{job_hash}.npz"
        _save_policy(trained.policy, Path(artifact_dir) / relative, config)
        result["checkpoint"] = str(relative)
    return result


def _save_policy(
    policy: LearnedPricing, target: str | Path, config: ExperimentConfig
) -> Path:
    return save_agent(
        target,
        policy.agent,
        policy.scaler,
        history_length=config.history_length,
    )


def plan_scheme_jobs(
    markets: Sequence[StackelbergMarket],
    config: ExperimentConfig,
    schemes: tuple[str, ...],
) -> tuple[list[Job], list[tuple[int, str]]]:
    """The job half of a scheduled market-grid comparison.

    One ``market_scheme`` :class:`Job` per (non-plannable scheme, market)
    pair, plus the ``(market index, scheme)`` slot of each job so
    :func:`assemble_scheme_results` can merge the results back. Plannable
    schemes (``random``, ``equilibrium``) emit no jobs — they evaluate as
    one stacked solve at assemble time.
    """
    unknown = sorted(set(schemes) - set(_KNOWN_SCHEMES))
    if unknown:
        raise ValueError(f"unknown schemes {unknown}")
    jobs: list[Job] = []
    slots: list[tuple[int, str]] = []
    config_payload = config_to_payload(config)
    market_payloads = [market_to_payload(market) for market in markets]
    for scheme in schemes:
        if scheme in _PLANNABLE_SCHEMES:
            continue
        for index, market_payload in enumerate(market_payloads):
            # DRL jobs park their trained agent at the scheduler's
            # checkpoint_path(job) on their own: the target is derived
            # from the job hash and the injected cache dir at execution
            # time, never written into the spec.
            jobs.append(
                Job(
                    "market_scheme",
                    {
                        "scheme": scheme,
                        "market": market_payload,
                        "config": config_payload,
                    },
                )
            )
            slots.append((index, scheme))
    return jobs, slots


def assemble_scheme_results(
    markets: Sequence[StackelbergMarket],
    config: ExperimentConfig,
    schemes: tuple[str, ...],
    slots: Sequence[tuple[int, str]],
    payloads: Sequence[Mapping],
) -> list[dict[str, PolicyEvaluation]]:
    """Merge :func:`plan_scheme_jobs` results; solve plannable schemes
    as one stacked in-process pass."""
    results: list[dict[str, PolicyEvaluation]] = [{} for _ in markets]
    for payload, (index, scheme) in zip(payloads, slots):
        results[index][scheme] = evaluation_from_payload(payload["evaluation"])
    plannable = tuple(s for s in schemes if s in _PLANNABLE_SCHEMES)
    if plannable:
        for index, by_scheme in enumerate(
            compare_schemes_stacked(markets, config, schemes=plannable)
        ):
            results[index].update(by_scheme)
    return results


def compare_schemes_scheduled(
    markets: Sequence[StackelbergMarket],
    config: ExperimentConfig,
    *,
    schemes: tuple[str, ...] = ("drl", "greedy", "random", "equilibrium"),
    scheduler: JobScheduler,
) -> list[dict[str, PolicyEvaluation]]:
    """:func:`compare_schemes_stacked` with the per-market trainings as jobs.

    History-dependent schemes (``drl``, ``greedy``) — whose per-market
    work is independent and, for ``drl``, expensive — become one
    ``market_scheme`` :class:`Job` per market, executed by ``scheduler``
    (parallel across workers, cached and resumable with a cache dir).
    Plannable schemes still evaluate as one stacked solve in-process. The
    merged output equals :func:`compare_schemes_stacked` — and hence the
    sequential per-market path — bitwise: each job runs the identical
    seeded training/evaluation, floats survive the JSON wire exactly.
    """
    markets = list(markets)
    jobs, slots = plan_scheme_jobs(markets, config, schemes)
    return assemble_scheme_results(
        markets, config, schemes, slots, scheduler.run(jobs)
    )
