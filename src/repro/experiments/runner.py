"""Shared machinery for the per-figure experiments.

``train_drl`` builds the POMDP env + PPO agent for a market and runs
Algorithm 1; ``evaluate_policy`` plays any pricing policy for a fixed
number of rounds and summarises the market outcome; ``compare_schemes``
produces the DRL / random / greedy / equilibrium comparison the paper's
Fig. 3 panels report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import GreedyPricing, LearnedPricing, OraclePricing, RandomPricing
from repro.core.mechanism import GameHistory, PricingPolicy, run_rounds
from repro.core.stackelberg import StackelbergMarket
from repro.drl.ppo import PPOConfig
from repro.drl.trainer import TrainerConfig, TrainingResult, train_pricing_agent
from repro.env.migration_game import MigrationGameEnv
from repro.experiments.config import ExperimentConfig

__all__ = ["PolicyEvaluation", "TrainedPricing", "train_drl", "evaluate_policy", "compare_schemes"]


@dataclass(frozen=True)
class PolicyEvaluation:
    """Summary of a policy played for ``rounds`` against a market.

    ``best_*`` fields describe the single best round a scheme found;
    ``mean_*`` fields are per-round averages. The figure tables report the
    means (that is where the DRL-vs-baseline gap the paper shows lives —
    the *best* of many uniform draws is trivially near-optimal), and keep
    the best-round values for reference.
    """

    mean_price: float
    best_price: float
    mean_msp_utility: float
    best_msp_utility: float
    total_bandwidth_market: float
    """Σ b at the best round, in the paper's reported (market) units."""
    total_vmu_utility: float
    """Σ U_n at the best round."""
    mean_vmu_utility: float
    """Average per-VMU utility at the best round."""
    mean_total_bandwidth_market: float
    """Per-round mean of Σ b (market units)."""
    mean_total_vmu_utility: float
    """Per-round mean of Σ U_n."""
    mean_avg_vmu_utility: float
    """Per-round mean of the average per-VMU utility."""


@dataclass
class TrainedPricing:
    """A trained DRL pricing solution for one market."""

    policy: LearnedPricing
    training: TrainingResult


def train_drl(
    market: StackelbergMarket, config: ExperimentConfig
) -> TrainedPricing:
    """Train the PPO pricing agent on ``market`` per ``config``."""
    env = MigrationGameEnv(
        market,
        history_length=config.history_length,
        rounds_per_episode=config.rounds_per_episode,
        reward_mode=config.reward_mode,
        seed=config.seed,
    )
    agent, result, scaler = train_pricing_agent(
        env,
        trainer_config=TrainerConfig(
            num_episodes=config.num_episodes,
            update_interval=config.update_interval,
            update_epochs=config.update_epochs,
            batch_size=config.batch_size,
            gamma=config.gamma,
            gae_lambda=config.gae_lambda,
        ),
        ppo_config=PPOConfig(
            learning_rate=config.learning_rate,
            entropy_coef=config.entropy_coef,
        ),
        seed=config.seed,
    )
    policy = LearnedPricing(
        agent,
        scaler,
        market,
        history_length=config.history_length,
        seed=config.seed,
    )
    return TrainedPricing(policy=policy, training=result)


def evaluate_policy(
    market: StackelbergMarket,
    policy: PricingPolicy,
    *,
    rounds: int = 100,
) -> PolicyEvaluation:
    """Play ``policy`` for ``rounds`` and summarise the market outcome."""
    policy.reset()
    history, outcomes = run_rounds(market, policy, rounds, history=GameHistory())
    utilities = np.array([o.msp_utility for o in outcomes])
    prices = np.array([o.price for o in outcomes])
    total_bandwidths = np.array([o.allocations.sum() for o in outcomes])
    total_vmu = np.array([o.vmu_utilities.sum() for o in outcomes])
    avg_vmu = np.array([o.vmu_utilities.mean() for o in outcomes])
    best_index = int(np.argmax(utilities))
    best = outcomes[best_index]
    return PolicyEvaluation(
        mean_price=float(prices.mean()),
        best_price=float(best.price),
        mean_msp_utility=float(utilities.mean()),
        best_msp_utility=float(best.msp_utility),
        total_bandwidth_market=float(
            market.to_market_units(best.allocations.sum())
        ),
        total_vmu_utility=float(best.vmu_utilities.sum()),
        mean_vmu_utility=float(best.vmu_utilities.mean()),
        mean_total_bandwidth_market=float(
            market.to_market_units(total_bandwidths.mean())
        ),
        mean_total_vmu_utility=float(total_vmu.mean()),
        mean_avg_vmu_utility=float(avg_vmu.mean()),
    )


def compare_schemes(
    market: StackelbergMarket,
    config: ExperimentConfig,
    *,
    schemes: tuple[str, ...] = ("drl", "greedy", "random", "equilibrium"),
) -> dict[str, PolicyEvaluation]:
    """Evaluate the requested pricing schemes on one market.

    Scheme names follow the paper: ``drl`` (proposed), ``greedy`` and
    ``random`` (baselines), ``equilibrium`` (complete-information optimum).
    """
    results: dict[str, PolicyEvaluation] = {}
    cfg = market.config
    for scheme in schemes:
        if scheme == "drl":
            policy: PricingPolicy = train_drl(market, config).policy
        elif scheme == "greedy":
            policy = GreedyPricing(
                cfg.unit_cost, cfg.max_price, seed=config.seed + 1
            )
        elif scheme == "random":
            policy = RandomPricing(
                cfg.unit_cost, cfg.max_price, seed=config.seed + 2
            )
        elif scheme == "equilibrium":
            policy = OraclePricing(market)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        results[scheme] = evaluate_policy(
            market, policy, rounds=config.evaluation_rounds
        )
    return results
