"""Multi-seed experiment aggregation with confidence intervals.

Single-seed DRL comparisons are anecdotes. This runner repeats a
scheme-vs-scheme evaluation across seeds and reports mean ± CI per metric,
plus a Welch t-test for "does the proposed scheme beat the baseline"
claims — the statistical backing the paper's single-run figures lack.

Sharding
--------
Per-seed runs are fully independent, so :func:`run_multiseed_comparison`
can fan them out across worker processes (``shards=k``). The contract is
**determinism, not approximation**:

- seeds are partitioned round-robin (shard ``i`` takes ``seeds[i::k]``) —
  a pure function of ``(seeds, shards)``;
- each shard runs the identical sequential code on its slice and ships its
  samples home as a :meth:`MultiSeedResult.to_payload` dict (the same
  JSON-able payload :func:`repro.utils.serialization.save_json` writes);
- the merge reassembles every sample at its seed's original position.

A sharded run therefore returns a result *exactly equal* to the sequential
path — same samples, same order — regardless of ``k`` or worker scheduling.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.stackelberg import StackelbergMarket
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_schemes
from repro.utils.stats import SummaryStats, compare_means, summarize
from repro.utils.tables import Table

__all__ = ["MultiSeedResult", "run_multiseed_comparison"]


@dataclass
class MultiSeedResult:
    """Per-scheme metric samples across seeds.

    ``samples[scheme][i]`` is the metric of ``scheme`` under ``seeds[i]``
    (when the result came from :func:`run_multiseed_comparison`, which
    always records the seed axis).
    """

    metric: str
    samples: dict[str, list[float]] = field(default_factory=dict)
    seeds: tuple[int, ...] = ()

    def stats(self, scheme: str) -> SummaryStats:
        """Mean ± CI of the metric for one scheme."""
        return summarize(self.samples[scheme])

    def significance(self, scheme_a: str, scheme_b: str) -> float:
        """Welch-test p-value for mean(scheme_a) != mean(scheme_b)."""
        _, p_value = compare_means(
            self.samples[scheme_a], self.samples[scheme_b]
        )
        return p_value

    def table(self) -> Table:
        """Printable per-scheme summary."""
        table = Table(
            headers=("scheme", "mean", "ci_low", "ci_high", "n"),
            title=f"Multi-seed comparison — {self.metric}",
        )
        for scheme in sorted(self.samples):
            stats = self.stats(scheme)
            table.add_row(
                scheme, stats.mean, stats.ci_low, stats.ci_high, stats.count
            )
        return table

    def to_payload(self) -> dict:
        """This result as a plain JSON-able dict.

        Round-trips through :func:`repro.utils.serialization.save_json` /
        ``load_json`` and :meth:`from_payload`; it is also the wire format
        shard workers return to the merging parent.
        """
        return {
            "metric": self.metric,
            "seeds": list(self.seeds),
            "samples": {
                scheme: [float(v) for v in values]
                for scheme, values in self.samples.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: object) -> "MultiSeedResult":
        """Rebuild a result from :meth:`to_payload`'s dict (e.g. freshly
        ``load_json``-ed from disk)."""
        if not isinstance(payload, Mapping):
            raise ExperimentError(
                f"multiseed payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        try:
            metric = payload["metric"]
            seeds = payload["seeds"]
            samples = payload["samples"]
        except KeyError as exc:
            raise ExperimentError(
                f"multiseed payload is missing key {exc.args[0]!r}"
            ) from exc
        if not isinstance(samples, Mapping):
            raise ExperimentError("multiseed payload 'samples' must be a mapping")
        if isinstance(seeds, (str, bytes)) or not isinstance(seeds, Sequence):
            raise ExperimentError("multiseed payload 'seeds' must be a sequence")
        return cls(
            metric=str(metric),
            samples={
                str(scheme): [float(v) for v in values]
                for scheme, values in samples.items()
            },
            seeds=tuple(int(s) for s in seeds),
        )


def _validate_seeds(seeds: tuple[int, ...]) -> tuple[int, ...]:
    """Reject degenerate seed sets; duplicates would silently double-count
    samples and shrink every confidence interval."""
    if len(seeds) < 2:
        raise ValueError("need at least two seeds for statistics")
    duplicates = sorted({s for s in seeds if seeds.count(s) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate seeds {duplicates} would double-count samples; "
            "every seed must appear once"
        )
    return tuple(seeds)


def _run_sequential(
    market: StackelbergMarket,
    base_config: ExperimentConfig,
    seeds: tuple[int, ...],
    schemes: tuple[str, ...],
    metric: str,
) -> MultiSeedResult:
    """The reference per-seed loop (also the body every shard executes)."""
    result = MultiSeedResult(metric=metric, seeds=tuple(seeds))
    for scheme in schemes:
        result.samples[scheme] = []
    for seed in seeds:
        evaluations = compare_schemes(
            market, base_config.with_seed(seed), schemes=schemes
        )
        for scheme, evaluation in evaluations.items():
            result.samples[scheme].append(float(getattr(evaluation, metric)))
    return result


def _run_shard(
    market: StackelbergMarket,
    base_config: ExperimentConfig,
    shard_seeds: tuple[int, ...],
    schemes: tuple[str, ...],
    metric: str,
) -> dict:
    """Worker entry point: run one shard's seed slice, return its payload.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can pickle
    it; the payload dict keeps the wire format numpy-free.
    """
    return _run_sequential(
        market, base_config, shard_seeds, schemes, metric
    ).to_payload()


def _partition_seeds(
    seeds: tuple[int, ...], shards: int
) -> list[tuple[int, ...]]:
    """Round-robin partition — deterministic in ``(seeds, shards)``."""
    count = min(shards, len(seeds))
    return [tuple(seeds[i::count]) for i in range(count)]


def _merge_shards(
    metric: str,
    seeds: tuple[int, ...],
    schemes: tuple[str, ...],
    payloads: list[dict],
) -> MultiSeedResult:
    """Reassemble shard payloads into the sequential result, exactly.

    Each shard's payload carries its own seed slice, so every sample lands
    back at its seed's position in the original ``seeds`` order — the
    merged result is indistinguishable from a sequential run.
    """
    position = {seed: i for i, seed in enumerate(seeds)}
    merged = MultiSeedResult(
        metric=metric,
        samples={scheme: [0.0] * len(seeds) for scheme in schemes},
        seeds=tuple(seeds),
    )
    for payload in payloads:
        part = MultiSeedResult.from_payload(payload)
        for scheme in schemes:
            for shard_pos, seed in enumerate(part.seeds):
                merged.samples[scheme][position[seed]] = part.samples[
                    scheme
                ][shard_pos]
    return merged


def run_multiseed_comparison(
    market: StackelbergMarket,
    base_config: ExperimentConfig,
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    schemes: tuple[str, ...] = ("drl", "random"),
    metric: str = "mean_msp_utility",
    num_envs: int | None = None,
    shards: int | None = None,
) -> MultiSeedResult:
    """Evaluate ``schemes`` on ``market`` across ``seeds``.

    Each seed re-trains the DRL scheme and re-draws the baselines'
    randomness; the metric is any :class:`PolicyEvaluation` field name.
    Every per-seed run goes through the batched simulation engine;
    ``num_envs`` (default: whatever ``base_config`` carries) widens the
    engine's env-batch axis so each seed's training collects that many
    episodes per iteration concurrently.

    ``shards=k`` fans the (independent) per-seed runs out over ``k``
    worker processes and merges their payloads back in seed order — the
    result is *exactly* the sequential result, only faster on multi-core
    machines (see the module docstring for the determinism contract).
    ``shards=None`` or ``1`` keeps everything in-process.

    Raises:
        ValueError: on fewer than two seeds, duplicate seeds (they would
            silently double-count samples), or ``shards < 1``.
    """
    seeds = _validate_seeds(tuple(seeds))
    if num_envs is not None:
        base_config = base_config.with_num_envs(num_envs)
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards is None or shards == 1:
        return _run_sequential(market, base_config, seeds, schemes, metric)
    partitions = _partition_seeds(seeds, shards)
    with ProcessPoolExecutor(max_workers=len(partitions)) as pool:
        futures = [
            pool.submit(
                _run_shard, market, base_config, shard_seeds, schemes, metric
            )
            for shard_seeds in partitions
        ]
        payloads = [future.result() for future in futures]
    return _merge_shards(metric, seeds, schemes, payloads)
