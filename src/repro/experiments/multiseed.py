"""Multi-seed experiment aggregation with confidence intervals.

Single-seed DRL comparisons are anecdotes. This runner repeats a
scheme-vs-scheme evaluation across seeds and reports mean ± CI per metric,
plus a Welch t-test for "does the proposed scheme beat the baseline"
claims — the statistical backing the paper's single-run figures lack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stackelberg import StackelbergMarket
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_schemes
from repro.utils.stats import SummaryStats, compare_means, summarize
from repro.utils.tables import Table

__all__ = ["MultiSeedResult", "run_multiseed_comparison"]


@dataclass
class MultiSeedResult:
    """Per-scheme metric samples across seeds."""

    metric: str
    samples: dict[str, list[float]] = field(default_factory=dict)

    def stats(self, scheme: str) -> SummaryStats:
        """Mean ± CI of the metric for one scheme."""
        return summarize(self.samples[scheme])

    def significance(self, scheme_a: str, scheme_b: str) -> float:
        """Welch-test p-value for mean(scheme_a) != mean(scheme_b)."""
        _, p_value = compare_means(
            self.samples[scheme_a], self.samples[scheme_b]
        )
        return p_value

    def table(self) -> Table:
        """Printable per-scheme summary."""
        table = Table(
            headers=("scheme", "mean", "ci_low", "ci_high", "n"),
            title=f"Multi-seed comparison — {self.metric}",
        )
        for scheme in sorted(self.samples):
            stats = self.stats(scheme)
            table.add_row(
                scheme, stats.mean, stats.ci_low, stats.ci_high, stats.count
            )
        return table


def run_multiseed_comparison(
    market: StackelbergMarket,
    base_config: ExperimentConfig,
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    schemes: tuple[str, ...] = ("drl", "random"),
    metric: str = "mean_msp_utility",
    num_envs: int | None = None,
) -> MultiSeedResult:
    """Evaluate ``schemes`` on ``market`` across ``seeds``.

    Each seed re-trains the DRL scheme and re-draws the baselines'
    randomness; the metric is any :class:`PolicyEvaluation` field name.
    Every per-seed run goes through the batched simulation engine;
    ``num_envs`` (default: whatever ``base_config`` carries) widens the
    engine's env-batch axis so each seed's training collects that many
    episodes per iteration concurrently.
    """
    if len(seeds) < 2:
        raise ValueError("need at least two seeds for statistics")
    if num_envs is not None:
        base_config = base_config.with_num_envs(num_envs)
    result = MultiSeedResult(metric=metric)
    for scheme in schemes:
        result.samples[scheme] = []
    for seed in seeds:
        evaluations = compare_schemes(
            market, base_config.with_seed(seed), schemes=schemes
        )
        for scheme, evaluation in evaluations.items():
            result.samples[scheme].append(float(getattr(evaluation, metric)))
    return result
