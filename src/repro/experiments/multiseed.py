"""Multi-seed experiment aggregation with confidence intervals.

Single-seed DRL comparisons are anecdotes. This runner repeats a
scheme-vs-scheme evaluation across seeds and reports mean ± CI per metric,
plus a Welch t-test for "does the proposed scheme beat the baseline"
claims — the statistical backing the paper's single-run figures lack.

Sharding
--------
Per-seed runs are fully independent, so :func:`run_multiseed_comparison`
can fan them out across worker processes (``shards=k``). The runner is a
thin client of the experiment scheduler
(:mod:`repro.experiments.scheduler`): each shard is one serializable
``multiseed_shard`` :class:`~repro.experiments.scheduler.Job`, so shards
inherit the scheduler's result caching/resume and can be exported through
the ``schedule`` CLI for cross-machine fan-out. The contract is
**determinism, not approximation**:

- seeds are partitioned round-robin (shard ``i`` takes ``seeds[i::k]``) —
  a pure function of ``(seeds, shards)``;
- each shard runs the identical sequential code on its slice and ships its
  samples home as a :meth:`MultiSeedResult.to_payload` dict (the same
  JSON-able payload :func:`repro.utils.serialization.save_json` writes);
- the merge reassembles every sample at its seed's original position.

A sharded run therefore returns a result *exactly equal* to the sequential
path — same samples, same order — regardless of ``k`` or worker scheduling.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.stackelberg import StackelbergMarket
from repro.errors import ExperimentError
from repro.experiments import api
from repro.experiments.api import CONFIG_PARAMS, MARKET_PARAM, ExperimentPlan, ParamSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import PolicyEvaluation, compare_schemes
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    config_from_payload,
    config_to_payload,
    market_from_payload,
    market_to_payload,
)
from repro.utils.stats import SummaryStats, compare_means, summarize
from repro.utils.tables import Table

__all__ = [
    "MultiSeedResult",
    "run_multiseed_comparison",
    "run_shard_job",
    "MULTISEED",
]


@dataclass
class MultiSeedResult:
    """Per-scheme metric samples across seeds.

    ``samples[scheme][i]`` is the metric of ``scheme`` under ``seeds[i]``
    (when the result came from :func:`run_multiseed_comparison`, which
    always records the seed axis).
    """

    metric: str
    samples: dict[str, list[float]] = field(default_factory=dict)
    seeds: tuple[int, ...] = ()

    def stats(self, scheme: str) -> SummaryStats:
        """Mean ± CI of the metric for one scheme."""
        return summarize(self.samples[scheme])

    def significance(self, scheme_a: str, scheme_b: str) -> float:
        """Welch-test p-value for mean(scheme_a) != mean(scheme_b)."""
        _, p_value = compare_means(
            self.samples[scheme_a], self.samples[scheme_b]
        )
        return p_value

    def table(self) -> Table:
        """Printable per-scheme summary."""
        table = Table(
            headers=("scheme", "mean", "ci_low", "ci_high", "n"),
            title=f"Multi-seed comparison — {self.metric}",
        )
        for scheme in sorted(self.samples):
            stats = self.stats(scheme)
            table.add_row(
                scheme, stats.mean, stats.ci_low, stats.ci_high, stats.count
            )
        return table

    def to_payload(self) -> dict:
        """This result as a plain JSON-able dict.

        Round-trips through :func:`repro.utils.serialization.save_json` /
        ``load_json`` and :meth:`from_payload`; it is also the wire format
        shard workers return to the merging parent.
        """
        return {
            "metric": self.metric,
            "seeds": list(self.seeds),
            "samples": {
                scheme: [float(v) for v in values]
                for scheme, values in self.samples.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: object) -> "MultiSeedResult":
        """Rebuild a result from :meth:`to_payload`'s dict (e.g. freshly
        ``load_json``-ed from disk)."""
        if not isinstance(payload, Mapping):
            raise ExperimentError(
                f"multiseed payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        try:
            metric = payload["metric"]
            seeds = payload["seeds"]
            samples = payload["samples"]
        except KeyError as exc:
            raise ExperimentError(
                f"multiseed payload is missing key {exc.args[0]!r}"
            ) from exc
        if not isinstance(samples, Mapping):
            raise ExperimentError("multiseed payload 'samples' must be a mapping")
        if isinstance(seeds, (str, bytes)) or not isinstance(seeds, Sequence):
            raise ExperimentError("multiseed payload 'seeds' must be a sequence")
        return cls(
            metric=str(metric),
            samples={
                str(scheme): [float(v) for v in values]
                for scheme, values in samples.items()
            },
            seeds=tuple(int(s) for s in seeds),
        )


def _validate_seeds(seeds: tuple[int, ...]) -> tuple[int, ...]:
    """Reject degenerate seed sets; duplicates would silently double-count
    samples and shrink every confidence interval."""
    if len(seeds) < 2:
        raise ValueError("need at least two seeds for statistics")
    duplicates = sorted(
        seed for seed, count in Counter(seeds).items() if count > 1
    )
    if duplicates:
        raise ValueError(
            f"duplicate seeds {duplicates} would double-count samples; "
            "every seed must appear once"
        )
    return tuple(seeds)


def _run_sequential(
    market: StackelbergMarket,
    base_config: ExperimentConfig,
    seeds: tuple[int, ...],
    schemes: tuple[str, ...],
    metric: str,
) -> MultiSeedResult:
    """The reference per-seed loop (also the body every shard executes)."""
    result = MultiSeedResult(metric=metric, seeds=tuple(seeds))
    for scheme in schemes:
        result.samples[scheme] = []
    for seed in seeds:
        evaluations = compare_schemes(
            market, base_config.with_seed(seed), schemes=schemes
        )
        for scheme, evaluation in evaluations.items():
            result.samples[scheme].append(float(getattr(evaluation, metric)))
    return result


def run_shard_job(payload: Mapping) -> dict:
    """Job kind ``multiseed_shard``: one shard's seed slice, as a payload.

    The scheduler's worker entry point for multiseed sharding: rebuilds
    the market and config from their JSON payloads, runs the identical
    sequential per-seed loop on the shard's slice, and returns the
    :meth:`MultiSeedResult.to_payload` wire dict.
    """
    market = market_from_payload(payload["market"])
    config = config_from_payload(payload["config"])
    return _run_sequential(
        market,
        config,
        tuple(int(seed) for seed in payload["seeds"]),
        tuple(str(scheme) for scheme in payload["schemes"]),
        str(payload["metric"]),
    ).to_payload()


def _partition_seeds(
    seeds: tuple[int, ...], shards: int
) -> list[tuple[int, ...]]:
    """Round-robin partition — deterministic in ``(seeds, shards)``."""
    count = min(shards, len(seeds))
    return [tuple(seeds[i::count]) for i in range(count)]


def _merge_shards(
    metric: str,
    seeds: tuple[int, ...],
    schemes: tuple[str, ...],
    payloads: list[dict],
) -> MultiSeedResult:
    """Reassemble shard payloads into the sequential result, exactly.

    Each shard's payload carries its own seed slice, so every sample lands
    back at its seed's position in the original ``seeds`` order — the
    merged result is indistinguishable from a sequential run.

    Every ``(scheme, seed)`` cell must be filled by exactly one shard: a
    payload from a crashed or short shard must not merge silently as the
    pre-filled ``0.0`` (which would corrupt the very means/CIs/p-values
    multiseed exists to provide).

    Raises:
        ExperimentError: if a payload carries a seed outside ``seeds``,
            two payloads fill the same cell, or — after all payloads are
            merged — any ``(scheme, seed)`` cell is still missing (the
            missing cells are named).
    """
    position = {seed: i for i, seed in enumerate(seeds)}
    merged = MultiSeedResult(
        metric=metric,
        samples={scheme: [0.0] * len(seeds) for scheme in schemes},
        seeds=tuple(seeds),
    )
    filled: set[tuple[str, int]] = set()
    for payload in payloads:
        part = MultiSeedResult.from_payload(payload)
        for scheme in schemes:
            values = part.samples.get(scheme, [])
            for shard_pos, seed in enumerate(part.seeds):
                if seed not in position:
                    raise ExperimentError(
                        f"shard payload carries seed {seed}, which is not "
                        f"in the requested seed set {tuple(seeds)}"
                    )
                if shard_pos >= len(values):
                    # A short sample list: the cell stays unfilled and is
                    # reported with the other missing cells below.
                    continue
                cell = (scheme, seed)
                if cell in filled:
                    raise ExperimentError(
                        f"two shard payloads both carry a sample for "
                        f"scheme {scheme!r}, seed {seed} — refusing to "
                        "merge ambiguous duplicates"
                    )
                merged.samples[scheme][position[seed]] = values[shard_pos]
                filled.add(cell)
    missing = [
        (scheme, seed)
        for scheme in schemes
        for seed in seeds
        if (scheme, seed) not in filled
    ]
    if missing:
        names = ", ".join(
            f"({scheme!r}, seed {seed})" for scheme, seed in missing
        )
        raise ExperimentError(
            f"shard merge is missing {len(missing)} sample(s): {names} — "
            "a shard crashed or returned a short payload; a silent merge "
            "would corrupt the means/CIs, so rerun the missing shards"
        )
    return merged


def _validate_metric(metric: str) -> str:
    """The metric must name a PolicyEvaluation field — checked up front,
    because the first seed can take minutes of DRL training before a bad
    name would otherwise die in ``getattr`` (possibly inside a worker)."""
    names = {spec.name for spec in dataclasses.fields(PolicyEvaluation)}
    if metric not in names:
        raise ValueError(
            f"metric must be a PolicyEvaluation field "
            f"({', '.join(sorted(names))}), got {metric!r}"
        )
    return metric


def _plan(params) -> ExperimentPlan:
    shards = int(params["shards"])
    # shards is checked before seed validation (and any other work) so a
    # bad shard count never reaches the pool path.
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    seeds = _validate_seeds(tuple(params["seeds"]))
    schemes = tuple(params["schemes"])
    metric = _validate_metric(str(params["metric"]))
    market = api.resolve_market(params)
    config = api.resolve_config(params)
    partitions = _partition_seeds(seeds, shards)
    market_payload = market_to_payload(market)
    config_payload = config_to_payload(config)
    jobs = [
        Job(
            "multiseed_shard",
            {
                "market": market_payload,
                "config": config_payload,
                "seeds": list(shard_seeds),
                "schemes": list(schemes),
                "metric": metric,
            },
        )
        for shard_seeds in partitions
    ]
    return ExperimentPlan(
        "multiseed",
        dict(params),
        jobs,
        context={"seeds": seeds, "schemes": schemes, "metric": metric},
    )


def _assemble(plan: ExperimentPlan, results: list) -> MultiSeedResult:
    return _merge_shards(
        plan.context["metric"],
        plan.context["seeds"],
        plan.context["schemes"],
        results,
    )


def _direct(params) -> MultiSeedResult:
    shards = int(params["shards"])
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        seeds = _validate_seeds(tuple(params["seeds"]))
        return _run_sequential(
            api.resolve_market(params),
            api.resolve_config(params),
            seeds,
            tuple(params["schemes"]),
            _validate_metric(str(params["metric"])),
        )
    # Sharded without an explicit scheduler: one worker process per shard.
    plan = _plan(params)
    scheduler = JobScheduler(
        workers=min(shards, len(plan.context["seeds"]))
    )
    return _assemble(plan, scheduler.run(plan.jobs))


MULTISEED = api.register(
    api.ExperimentSpec(
        name="multiseed",
        description=(
            "Multi-seed scheme comparison with confidence intervals and a "
            "Welch test (per-seed runs shard into multiseed_shard jobs)"
        ),
        params=(
            ParamSpec("seeds", "ints", (0, 1, 2, 3, 4), "seed list (>= 2 distinct seeds)"),
            ParamSpec("schemes", "strs", ("drl", "random"), "pricing schemes to compare"),
            ParamSpec("metric", "str", "mean_msp_utility", "PolicyEvaluation field to aggregate"),
            ParamSpec("shards", "int", 1, "shard count for the per-seed fan-out"),
            MARKET_PARAM,
            *CONFIG_PARAMS,
        ),
        result_type=MultiSeedResult,
        plan=_plan,
        assemble=_assemble,
        direct=_direct,
    )
)


def run_multiseed_comparison(
    market: StackelbergMarket,
    base_config: ExperimentConfig,
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    schemes: tuple[str, ...] = ("drl", "random"),
    metric: str = "mean_msp_utility",
    num_envs: int | None = None,
    shards: int | None = None,
    scheduler: JobScheduler | None = None,
) -> MultiSeedResult:
    """Evaluate ``schemes`` on ``market`` across ``seeds``.

    Thin shim over the ``multiseed`` spec. Each seed re-trains the DRL
    scheme and re-draws the baselines' randomness; the metric is any
    :class:`PolicyEvaluation` field name. Every per-seed run goes through
    the batched simulation engine; ``num_envs`` (default: whatever
    ``base_config`` carries) widens the engine's env-batch axis so each
    seed's training collects that many episodes per iteration
    concurrently.

    ``shards=k`` partitions the (independent) per-seed runs into ``k``
    ``multiseed_shard`` jobs and hands them to the experiment scheduler —
    by default a fresh :class:`JobScheduler` with one worker process per
    shard; pass ``scheduler`` to reuse a configured one (its cache dir
    makes interrupted multiseed runs resumable). The merged result is
    *exactly* the sequential result, only faster on multi-core machines
    (see the module docstring for the determinism contract).
    ``shards=None`` or ``1`` without a scheduler keeps everything
    in-process.

    Raises:
        ValueError: on ``shards < 1`` (checked before any other work, so
            a bad shard count never reaches the pool path), fewer than two
            seeds, or duplicate seeds (they would silently double-count
            samples).
    """
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    # shards=None with a scheduler defaults to scheduler.workers inside
    # run_experiment (the one place that rule lives).
    return api.run_experiment(
        MULTISEED,
        {
            "market": market,
            "config": base_config,
            "seeds": seeds,
            "schemes": schemes,
            "metric": metric,
            "num_envs": num_envs,
            "shards": shards,
        },
        scheduler=scheduler,
    )
