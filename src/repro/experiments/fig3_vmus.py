"""Experiments E5/E6 — Fig. 3(c)/(d): sweep over the number of VMUs N.

Setting (paper Sec. V-B): identical VMUs with D = 100 MB and α = 5,
N from 1 to 6, C = 5. Fig. 3(c): the MSP's utility grows with N
(7.03 at N = 2 → 20.35 at N = 6) while the price stays flat until the
B_max capacity starts binding and then rises. Fig. 3(d): the average
bandwidth per VMU stays flat then falls, and average VMU utility drops as
competition for capacity grows.

The population sweep is the *ragged* case of the market-stack axis: markets
with N = 1..6 VMUs stack into one padded-and-masked
:class:`repro.core.marketstack.MarketStack`, and every scheme that commits
to its price vector (random, equilibrium) evaluates the entire grid of
populations as a single stacked solve via
:func:`repro.experiments.runner.compare_schemes_stacked`. Per N, the
results equal the historical per-market loop exactly — the stack reduces
each market over its own population, so padding never leaks into totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population, uniform_population
from repro.experiments import api
from repro.experiments.api import CONFIG_PARAMS, ExperimentPlan, ParamSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    PolicyEvaluation,
    assemble_scheme_results,
    compare_schemes_stacked,
    plan_scheme_jobs,
)
from repro.experiments.scheduler import JobScheduler
from repro.utils.tables import Table

__all__ = ["VmuSweepResult", "run_fig3_vmus", "FIG3_VMUS"]

DEFAULT_COUNTS = (1, 2, 3, 4, 5, 6)
DEFAULT_SCHEMES = ("drl", "greedy", "random", "equilibrium")


@dataclass
class VmuSweepResult:
    """Per-N, per-scheme evaluations for Fig. 3(c)/(d)."""

    counts: tuple[int, ...]
    evaluations: dict[int, dict[str, PolicyEvaluation]] = field(
        default_factory=dict
    )

    def msp_table(self) -> Table:
        """Fig. 3(c): MSP utility and price strategy vs number of VMUs."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["num_vmus"]
        for scheme in schemes:
            headers += [f"{scheme}_utility", f"{scheme}_price"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(c) — MSP utility & price vs number of VMUs",
        )
        for count in self.counts:
            row: list[object] = [count]
            for scheme in schemes:
                evaluation = self.evaluations[count][scheme]
                row += [evaluation.mean_msp_utility, evaluation.mean_price]
            table.add_row(*row)
        return table

    def vmu_table(self) -> Table:
        """Fig. 3(d): average VMU utility and bandwidth vs number of VMUs."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["num_vmus"]
        for scheme in schemes:
            headers += [f"{scheme}_avg_vmu_utility", f"{scheme}_avg_bandwidth"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(d) — avg VMU utility & bandwidth vs number of VMUs",
        )
        for count in self.counts:
            row: list[object] = [count]
            for scheme in schemes:
                evaluation = self.evaluations[count][scheme]
                row += [
                    evaluation.mean_avg_vmu_utility,
                    evaluation.mean_total_bandwidth_market / count,
                ]
            table.add_row(*row)
        return table

    def series(self, scheme: str, metric: str) -> list[float]:
        """One scheme's series across the N sweep."""
        return [
            getattr(self.evaluations[count][scheme], metric)
            for count in self.counts
        ]


def _markets(params) -> list[StackelbergMarket]:
    base = StackelbergMarket(paper_fig2_population())
    return [
        base.with_vmus(
            uniform_population(
                count,
                data_size_mb=float(params["data_size_mb"]),
                immersion_coef=float(params["immersion_coef"]),
            )
        )
        for count in params["counts"]
    ]


def _pack(params, evaluations) -> VmuSweepResult:
    result = VmuSweepResult(counts=tuple(params["counts"]))
    for count, by_scheme in zip(result.counts, evaluations):
        result.evaluations[count] = by_scheme
    return result


def _plan(params) -> ExperimentPlan:
    config = api.resolve_config(params)
    markets = _markets(params)
    jobs, slots = plan_scheme_jobs(markets, config, tuple(params["schemes"]))
    return ExperimentPlan(
        "fig3_vmus",
        dict(params),
        jobs,
        context={"config": config, "markets": markets, "slots": slots},
    )


def _assemble(plan: ExperimentPlan, results: list) -> VmuSweepResult:
    evaluations = assemble_scheme_results(
        plan.context["markets"],
        plan.context["config"],
        tuple(plan.params["schemes"]),
        plan.context["slots"],
        results,
    )
    return _pack(plan.params, evaluations)


def _direct(params) -> VmuSweepResult:
    config = api.resolve_config(params)
    evaluations = compare_schemes_stacked(
        _markets(params), config, schemes=tuple(params["schemes"])
    )
    return _pack(params, evaluations)


FIG3_VMUS = api.register(
    api.ExperimentSpec(
        name="fig3_vmus",
        description=(
            "Fig. 3(c)/(d) — sweep the number of VMUs N and compare "
            "pricing schemes (MSP utility/price, per-VMU "
            "utility/bandwidth per population point)"
        ),
        params=(
            ParamSpec("counts", "ints", DEFAULT_COUNTS, "population sizes N to sweep"),
            ParamSpec("schemes", "strs", DEFAULT_SCHEMES, "pricing schemes to compare"),
            ParamSpec("data_size_mb", "float", 100.0, "per-VMU data size D (MB)"),
            ParamSpec("immersion_coef", "float", 5.0, "per-VMU immersion coefficient α"),
            *CONFIG_PARAMS,
        ),
        result_type=VmuSweepResult,
        plan=_plan,
        assemble=_assemble,
        direct=_direct,
        render=lambda r: f"{r.msp_table()}\n\n{r.vmu_table()}",
    )
)


def run_fig3_vmus(
    config: ExperimentConfig | None = None,
    *,
    counts: tuple[int, ...] = DEFAULT_COUNTS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    data_size_mb: float = 100.0,
    immersion_coef: float = 5.0,
    scheduler: JobScheduler | None = None,
) -> VmuSweepResult:
    """Sweep the population size and evaluate every scheme.

    Thin shim over :func:`repro.experiments.api.run_experiment` with the
    ``fig3_vmus`` spec. Without a scheduler the (ragged)
    population-swept markets are evaluated as one stacked market grid;
    with one, each population point's independent DRL (and greedy)
    training/evaluation becomes one ``market_scheme`` job — parallel,
    cached, resumable, bitwise-equal to the sequential path.
    """
    return api.run_experiment(
        FIG3_VMUS,
        {
            "config": config,
            "counts": counts,
            "schemes": schemes,
            "data_size_mb": data_size_mb,
            "immersion_coef": immersion_coef,
        },
        scheduler=scheduler,
    )
