"""Experiments E5/E6 — Fig. 3(c)/(d): sweep over the number of VMUs N.

Setting (paper Sec. V-B): identical VMUs with D = 100 MB and α = 5,
N from 1 to 6, C = 5. Fig. 3(c): the MSP's utility grows with N
(7.03 at N = 2 → 20.35 at N = 6) while the price stays flat until the
B_max capacity starts binding and then rises. Fig. 3(d): the average
bandwidth per VMU stays flat then falls, and average VMU utility drops as
competition for capacity grows.

The population sweep is the *ragged* case of the market-stack axis: markets
with N = 1..6 VMUs stack into one padded-and-masked
:class:`repro.core.marketstack.MarketStack`, and every scheme that commits
to its price vector (random, equilibrium) evaluates the entire grid of
populations as a single stacked solve via
:func:`repro.experiments.runner.compare_schemes_stacked`. Per N, the
results equal the historical per-market loop exactly — the stack reduces
each market over its own population, so padding never leaks into totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population, uniform_population
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    PolicyEvaluation,
    compare_schemes_scheduled,
    compare_schemes_stacked,
)
from repro.experiments.scheduler import JobScheduler
from repro.utils.tables import Table

__all__ = ["VmuSweepResult", "run_fig3_vmus"]

DEFAULT_COUNTS = (1, 2, 3, 4, 5, 6)


@dataclass
class VmuSweepResult:
    """Per-N, per-scheme evaluations for Fig. 3(c)/(d)."""

    counts: tuple[int, ...]
    evaluations: dict[int, dict[str, PolicyEvaluation]] = field(
        default_factory=dict
    )

    def msp_table(self) -> Table:
        """Fig. 3(c): MSP utility and price strategy vs number of VMUs."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["num_vmus"]
        for scheme in schemes:
            headers += [f"{scheme}_utility", f"{scheme}_price"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(c) — MSP utility & price vs number of VMUs",
        )
        for count in self.counts:
            row: list[object] = [count]
            for scheme in schemes:
                evaluation = self.evaluations[count][scheme]
                row += [evaluation.mean_msp_utility, evaluation.mean_price]
            table.add_row(*row)
        return table

    def vmu_table(self) -> Table:
        """Fig. 3(d): average VMU utility and bandwidth vs number of VMUs."""
        schemes = sorted(next(iter(self.evaluations.values())).keys())
        headers = ["num_vmus"]
        for scheme in schemes:
            headers += [f"{scheme}_avg_vmu_utility", f"{scheme}_avg_bandwidth"]
        table = Table(
            headers=tuple(headers),
            title="Fig. 3(d) — avg VMU utility & bandwidth vs number of VMUs",
        )
        for count in self.counts:
            row: list[object] = [count]
            for scheme in schemes:
                evaluation = self.evaluations[count][scheme]
                row += [
                    evaluation.mean_avg_vmu_utility,
                    evaluation.mean_total_bandwidth_market / count,
                ]
            table.add_row(*row)
        return table

    def series(self, scheme: str, metric: str) -> list[float]:
        """One scheme's series across the N sweep."""
        return [
            getattr(self.evaluations[count][scheme], metric)
            for count in self.counts
        ]


def run_fig3_vmus(
    config: ExperimentConfig | None = None,
    *,
    counts: tuple[int, ...] = DEFAULT_COUNTS,
    schemes: tuple[str, ...] = ("drl", "greedy", "random", "equilibrium"),
    data_size_mb: float = 100.0,
    immersion_coef: float = 5.0,
    scheduler: JobScheduler | None = None,
) -> VmuSweepResult:
    """Sweep the population size and evaluate every scheme.

    The (ragged) population-swept markets are evaluated as one stacked
    market grid; only the history-dependent schemes fall back to
    per-market loops. With ``scheduler``, each population point's
    independent DRL (and greedy) training/evaluation becomes one
    ``market_scheme`` job — parallel across the scheduler's workers,
    cached and resumable with its cache dir, bitwise-equal to the
    sequential path.
    """
    config = config if config is not None else ExperimentConfig.quick()
    base = StackelbergMarket(paper_fig2_population())
    result = VmuSweepResult(counts=tuple(counts))
    markets = [
        base.with_vmus(
            uniform_population(
                count, data_size_mb=data_size_mb, immersion_coef=immersion_coef
            )
        )
        for count in counts
    ]
    if scheduler is None:
        evaluations = compare_schemes_stacked(markets, config, schemes=schemes)
    else:
        evaluations = compare_schemes_scheduled(
            markets, config, schemes=schemes, scheduler=scheduler
        )
    for count, by_scheme in zip(result.counts, evaluations):
        result.evaluations[count] = by_scheme
    return result
