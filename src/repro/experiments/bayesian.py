"""Bayesian robust-pricing experiment: one price against a distribution.

Samples a scenario distribution around a base market
(:func:`repro.core.bayesian.sample_market_distribution` — scenario ``i``
is a pure function of ``(market, seed, i)``), solves the leader's
expected-utility price in one stacked pass, and compares it against the
per-scenario full-information oracles (the ``equilibria_stacked`` solve
of the same stack). The single work unit is one ``bayesian_pricing``
job, so the scheduled path is the in-process computation run in a worker
— bitwise-equal by construction.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.bayesian import ScenarioSpec, sample_market_distribution
from repro.core.stackelberg import StackelbergMarket
from repro.experiments import api
from repro.experiments.api import MARKET_PARAM, ExperimentPlan, ParamSpec
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    market_from_payload,
    market_to_payload,
)
from repro.utils.tables import Table

__all__ = [
    "BayesianPricingResult",
    "run_bayesian_pricing",
    "run_bayesian_pricing_job",
    "BAYESIAN_PRICING",
]


@dataclass
class BayesianPricingResult:
    """Robust price vs per-scenario oracles over one sampled distribution.

    ``scenario_prices`` / ``scenario_oracle_utilities`` are ``nan`` for
    scenarios whose deterministic game is infeasible; those scenarios
    contribute their realised (robust-price) utility to the expectation
    and zero to the oracle benchmark.
    """

    robust_price: float
    expected_utility: float
    num_scenarios: int
    seed: int
    weights: list[float]
    scenario_prices: list[float]
    scenario_oracle_utilities: list[float]
    scenario_robust_utilities: list[float]
    expected_oracle_utility: float
    expected_regret: float

    def table(self) -> Table:
        """Printable per-scenario comparison (the CLI's figure)."""
        table = Table(
            headers=(
                "scenario",
                "weight",
                "oracle price",
                "oracle utility",
                "robust utility",
            ),
            title=(
                f"Bayesian pricing — robust price {self.robust_price:.4f}, "
                f"E[utility] {self.expected_utility:.4f} "
                f"(oracle {self.expected_oracle_utility:.4f}, "
                f"regret {self.expected_regret:.4f})"
            ),
        )
        for index in range(self.num_scenarios):
            table.add_row(
                index,
                self.weights[index],
                self.scenario_prices[index],
                self.scenario_oracle_utilities[index],
                self.scenario_robust_utilities[index],
            )
        return table


_PARAMS = (
    MARKET_PARAM,
    ParamSpec("num_scenarios", "int", 16, "number of sampled market scenarios M"),
    ParamSpec("seed", "int", 0, "scenario-sampling seed (scenario i depends only on (seed, i))"),
    ParamSpec("alpha_jitter", "float", 0.25, "half-width of the multiplicative α_n jitter"),
    ParamSpec("data_jitter", "float", 0.25, "half-width of the multiplicative D_n jitter"),
    ParamSpec("capacity_jitter", "float", 0.0, "half-width of the multiplicative B_max jitter"),
)


def _compute(params: Mapping) -> BayesianPricingResult:
    market = api.resolve_market(params)
    spec = ScenarioSpec(
        num_scenarios=int(params["num_scenarios"]),
        seed=int(params["seed"]),
        alpha_jitter=float(params["alpha_jitter"]),
        data_jitter=float(params["data_jitter"]),
        capacity_jitter=float(params["capacity_jitter"]),
    )
    distribution = sample_market_distribution(market, spec)
    equilibrium = distribution.equilibrium()
    oracles = distribution.oracle_equilibria()
    weights = distribution.weights
    oracle_utilities = np.where(
        oracles.feasible, oracles.msp_utilities, 0.0
    )
    # Same explicit left-to-right reduction as the robust objective, so
    # the oracle expectation and the regret are deterministic for any M.
    expected_oracle = weights[0] * oracle_utilities[0]
    for index in range(1, len(weights)):
        expected_oracle = expected_oracle + weights[index] * oracle_utilities[index]
    return BayesianPricingResult(
        robust_price=float(equilibrium.price),
        expected_utility=float(equilibrium.expected_utility),
        num_scenarios=spec.num_scenarios,
        seed=spec.seed,
        weights=[float(w) for w in weights],
        scenario_prices=[float(p) for p in oracles.prices],
        scenario_oracle_utilities=[float(u) for u in oracles.msp_utilities],
        scenario_robust_utilities=[
            float(u) for u in equilibrium.scenario_utilities
        ],
        expected_oracle_utility=float(expected_oracle),
        expected_regret=float(expected_oracle - equilibrium.expected_utility),
    )


def run_bayesian_pricing_job(payload: Mapping) -> dict:
    """Job kind ``bayesian_pricing``: the whole robust solve as one unit.

    The scenario sample is a pure function of (market, seed, i) and every
    solve is deterministic, so the worker's result is bitwise-equal to the
    in-process one.
    """
    params = dict(payload)
    params["market"] = market_from_payload(payload["market"])
    return api.result_to_payload(_compute(params))


def _plan(params: Mapping) -> ExperimentPlan:
    market = api.resolve_market(params)
    payload = {
        "market": market_to_payload(market),
        "num_scenarios": int(params["num_scenarios"]),
        "seed": int(params["seed"]),
        "alpha_jitter": float(params["alpha_jitter"]),
        "data_jitter": float(params["data_jitter"]),
        "capacity_jitter": float(params["capacity_jitter"]),
    }
    return ExperimentPlan(
        "bayesian_pricing", dict(params), [Job("bayesian_pricing", payload)]
    )


def _assemble(plan: ExperimentPlan, results: list) -> BayesianPricingResult:
    return api.result_from_payload(BayesianPricingResult, results[0])


def _direct(params: Mapping) -> BayesianPricingResult:
    return _compute(params)


BAYESIAN_PRICING = api.register(
    api.ExperimentSpec(
        name="bayesian_pricing",
        description=(
            "Bayesian Stackelberg robust pricing — one expected-utility "
            "price against a sampled market distribution, compared to the "
            "per-scenario full-information oracles"
        ),
        params=_PARAMS,
        result_type=BayesianPricingResult,
        plan=_plan,
        assemble=_assemble,
        direct=_direct,
    )
)


def run_bayesian_pricing(
    *,
    market: StackelbergMarket | None = None,
    num_scenarios: int = 16,
    seed: int = 0,
    scheduler: JobScheduler | None = None,
) -> BayesianPricingResult:
    """Robust pricing against a sampled distribution around ``market``.

    Thin shim over the ``bayesian_pricing`` spec.
    """
    return api.run_experiment(
        BAYESIAN_PRICING,
        {"market": market, "num_scenarios": num_scenarios, "seed": seed},
        scheduler=scheduler,
    )
