"""Price-of-anarchy experiment: welfare vs the number of competing MSPs.

For each ``N`` in ``ns``, builds the N-MSP oligopoly sharing the base
market's demand side (:func:`repro.core.multimsp.oligopoly_from_market`:
``split_capacity=True`` holds industry capacity fixed, ``False`` lets
each entrant bring the monopolist's capacity), solves the Gauss-Seidel
price equilibrium, and reports welfare / efficiency / PoA against the
monopoly and planner baselines of :func:`repro.core.welfare.welfare_report`.

Work units: one ``welfare_report`` job (the baselines) plus one
``oligopoly_cell`` job per N. The direct path solves all N-cells in
lockstep through :func:`repro.core.multimsp.oligopoly_equilibria_batch`,
which is bitwise-equal to the per-game solves the workers run.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.multimsp import (
    MultiMspMarket,
    OligopolyEquilibrium,
    oligopoly_equilibria_batch,
    oligopoly_from_market,
)
from repro.core.stackelberg import StackelbergMarket
from repro.core.welfare import welfare_report
from repro.experiments import api
from repro.experiments.api import MARKET_PARAM, ExperimentPlan, ParamSpec
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    market_from_payload,
    market_to_payload,
)
from repro.experiments.welfare import WelfareResult, _result_from_report
from repro.utils.tables import Table

__all__ = [
    "PriceOfAnarchyResult",
    "run_price_of_anarchy",
    "run_oligopoly_cell_job",
    "PRICE_OF_ANARCHY",
]


@dataclass
class PriceOfAnarchyResult:
    """Oligopoly welfare vs N against monopoly and planner baselines.

    ``poa`` is planner welfare over realised welfare (≥ 1 when the
    equilibrium is inefficient); ``efficiency`` is its reciprocal.
    ``cycle_lengths[i] > 0`` flags an Edgeworth cycle diagnosis for that
    N (the reported prices are then the cycle state at detection).
    """

    ns: list[int]
    prices: list[float]
    """Cheapest posted price per N (what VMUs actually pay)."""
    msp_profits: list[float]
    vmu_surpluses: list[float]
    welfares: list[float]
    efficiencies: list[float]
    poa: list[float]
    converged: list[bool]
    iterations: list[int]
    cycle_lengths: list[int]
    monopoly_price: float
    monopoly_welfare: float
    planner_price: float
    planner_welfare: float

    def table(self) -> Table:
        """Printable welfare-vs-N summary (the CLI's figure)."""
        table = Table(
            headers=(
                "N",
                "price",
                "MSP profit",
                "VMU surplus",
                "welfare",
                "efficiency",
                "PoA",
                "converged",
            ),
            title=(
                f"Price of anarchy vs N — monopoly welfare "
                f"{self.monopoly_welfare:.4f} @ p={self.monopoly_price:.4f}, "
                f"planner welfare {self.planner_welfare:.4f} "
                f"@ p={self.planner_price:.4f}"
            ),
        )
        for index, n in enumerate(self.ns):
            table.add_row(
                n,
                self.prices[index],
                self.msp_profits[index],
                self.vmu_surpluses[index],
                self.welfares[index],
                self.efficiencies[index],
                self.poa[index],
                self.converged[index],
            )
        return table


_PARAMS = (
    MARKET_PARAM,
    ParamSpec("ns", "ints", tuple(range(1, 9)), "MSP counts to sweep"),
    ParamSpec(
        "split_capacity", "bool", True,
        "True: split the monopolist's capacity across the N MSPs "
        "(fixed industry capacity); False: replicate it per MSP",
    ),
    ParamSpec("price_tick", "float", 0.05, "price lattice tick of the oligopoly game"),
    ParamSpec("damping", "float", 1.0, "best-response damping in (0, 1]"),
    ParamSpec("max_iterations", "int", 1000, "Gauss-Seidel sweep budget per N"),
    ParamSpec("tolerance", "float", 1e-3, "sup-norm convergence tolerance on prices"),
)


def _cell_summary(game: MultiMspMarket, equilibrium: OligopolyEquilibrium) -> dict:
    """The per-N result row — shared verbatim by the worker job and the
    lockstep direct path, so the two produce identical floats."""
    outcome = game.outcome(equilibrium.prices)
    profit = float(outcome.msp_utilities.sum())
    surplus = float(outcome.vmu_utilities.sum())
    return {
        "n": game.num_msps,
        "price": float(equilibrium.prices.min()),
        "profit": profit,
        "surplus": surplus,
        "welfare": profit + surplus,
        "converged": bool(equilibrium.converged),
        "iterations": int(equilibrium.iterations),
        "cycle_length": int(equilibrium.cycle_length),
    }


def run_oligopoly_cell_job(payload: Mapping) -> dict:
    """Job kind ``oligopoly_cell``: one N-MSP equilibrium solve."""
    market = market_from_payload(payload["market"])
    game = oligopoly_from_market(
        market,
        int(payload["n"]),
        split_capacity=bool(payload["split_capacity"]),
        price_tick=float(payload["price_tick"]),
    )
    equilibrium = game.equilibrium(
        max_iterations=int(payload["max_iterations"]),
        tolerance=float(payload["tolerance"]),
        damping=float(payload["damping"]),
        record_trace=False,
    )
    return _cell_summary(game, equilibrium)


def _games(params: Mapping, market: StackelbergMarket) -> list[MultiMspMarket]:
    return [
        oligopoly_from_market(
            market,
            int(n),
            split_capacity=bool(params["split_capacity"]),
            price_tick=float(params["price_tick"]),
        )
        for n in params["ns"]
    ]


def _assemble_result(
    params: Mapping, welfare_payload: Mapping, cells: list[Mapping]
) -> PriceOfAnarchyResult:
    baseline = api.result_from_payload(WelfareResult, welfare_payload)
    planner_welfare = float(baseline.planner_welfare)
    welfares = [float(cell["welfare"]) for cell in cells]
    return PriceOfAnarchyResult(
        ns=[int(cell["n"]) for cell in cells],
        prices=[float(cell["price"]) for cell in cells],
        msp_profits=[float(cell["profit"]) for cell in cells],
        vmu_surpluses=[float(cell["surplus"]) for cell in cells],
        welfares=welfares,
        efficiencies=[
            welfare / planner_welfare if planner_welfare > 0.0 else float("nan")
            for welfare in welfares
        ],
        poa=[
            planner_welfare / welfare if welfare > 0.0 else float("inf")
            for welfare in welfares
        ],
        converged=[bool(cell["converged"]) for cell in cells],
        iterations=[int(cell["iterations"]) for cell in cells],
        cycle_lengths=[int(cell["cycle_length"]) for cell in cells],
        monopoly_price=float(baseline.monopoly_price),
        monopoly_welfare=float(baseline.monopoly_welfare),
        planner_price=float(baseline.planner_price),
        planner_welfare=planner_welfare,
    )


def _plan(params: Mapping) -> ExperimentPlan:
    market = api.resolve_market(params)
    market_payload = market_to_payload(market)
    jobs = [Job("welfare_report", {"market": market_payload})]
    for n in params["ns"]:
        jobs.append(
            Job(
                "oligopoly_cell",
                {
                    "market": market_payload,
                    "n": int(n),
                    "split_capacity": bool(params["split_capacity"]),
                    "price_tick": float(params["price_tick"]),
                    "damping": float(params["damping"]),
                    "max_iterations": int(params["max_iterations"]),
                    "tolerance": float(params["tolerance"]),
                },
            )
        )
    return ExperimentPlan("price_of_anarchy", dict(params), jobs)


def _assemble(plan: ExperimentPlan, results: list) -> PriceOfAnarchyResult:
    return _assemble_result(plan.params, results[0], results[1:])


def _direct(params: Mapping) -> PriceOfAnarchyResult:
    market = api.resolve_market(params)
    games = _games(params, market)
    equilibria = oligopoly_equilibria_batch(
        games,
        max_iterations=int(params["max_iterations"]),
        tolerance=float(params["tolerance"]),
        damping=float(params["damping"]),
    )
    cells = [
        _cell_summary(game, equilibrium)
        for game, equilibrium in zip(games, equilibria)
    ]
    welfare_payload = api.result_to_payload(
        _result_from_report(welfare_report(market))
    )
    return _assemble_result(params, welfare_payload, cells)


PRICE_OF_ANARCHY = api.register(
    api.ExperimentSpec(
        name="price_of_anarchy",
        description=(
            "Price of anarchy vs N — N-MSP oligopoly welfare against the "
            "monopoly and planner baselines (lockstep batched solve; "
            "Edgeworth cycles diagnosed per N)"
        ),
        params=_PARAMS,
        result_type=PriceOfAnarchyResult,
        plan=_plan,
        assemble=_assemble,
        direct=_direct,
    )
)


def run_price_of_anarchy(
    *,
    market: StackelbergMarket | None = None,
    ns: tuple[int, ...] = tuple(range(1, 9)),
    split_capacity: bool = True,
    scheduler: JobScheduler | None = None,
) -> PriceOfAnarchyResult:
    """Welfare and PoA vs the number of MSPs over ``market``.

    Thin shim over the ``price_of_anarchy`` spec.
    """
    return api.run_experiment(
        PRICE_OF_ANARCHY,
        {"market": market, "ns": ns, "split_capacity": split_capacity},
        scheduler=scheduler,
    )
