"""Ablation experiments E7/E8 (DESIGN.md): design choices of the mechanism.

E7 — reward shaping: the paper's binary Eq.-12 reward vs the shaped
per-round-utility reward. Both converge to the same equilibrium; the
shaped reward converges in fewer episodes (less sparse signal).

E8 — observation history length L ∈ {1, 2, 4, 8}: the paper fixes L = 4;
this ablation measures how much history the MSP agent actually needs in a
stationary follower population.

E9 — sellable-capacity B_max: the paper fixes B_max = 50; this ablation
sweeps it and reports how the equilibrium moves between the
capacity-binding and slack regimes. The whole sweep's market grid is one
:meth:`repro.core.marketstack.MarketStack.equilibria_stacked` solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.marketstack import MarketStack
from repro.core.stackelberg import StackelbergMarket
from repro.experiments import api
from repro.experiments.api import (
    CONFIG_PARAMS,
    MARKET_PARAM,
    ExperimentPlan,
    ParamSpec,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import evaluate_policy, train_drl
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    config_to_payload,
    market_to_payload,
)
from repro.utils.tables import Table

__all__ = [
    "RewardAblationResult",
    "HistoryAblationResult",
    "CapacityAblationResult",
    "run_reward_ablation",
    "run_history_ablation",
    "run_capacity_ablation",
    "REWARD_ABLATION",
    "HISTORY_ABLATION",
    "CAPACITY_ABLATION",
]


@dataclass
class RewardAblationResult:
    """E7 — converged utility per reward formulation."""

    equilibrium_utility: float
    rows: list[tuple[str, float, float]] = field(default_factory=list)
    """(reward_mode, converged best utility, evaluated best utility)."""

    def table(self) -> Table:
        """Printable comparison."""
        table = Table(
            headers=("reward_mode", "train_best_utility", "eval_best_utility", "equilibrium"),
            title="Ablation E7 — reward shaping (Eq. 12 binary vs utility-shaped)",
        )
        for mode, trained, evaluated in self.rows:
            table.add_row(mode, trained, evaluated, self.equilibrium_utility)
        return table


@dataclass
class HistoryAblationResult:
    """E8 — converged utility per observation history length."""

    equilibrium_utility: float
    rows: list[tuple[int, float, float]] = field(default_factory=list)
    """(history length L, converged best utility, evaluated best utility)."""

    def table(self) -> Table:
        """Printable comparison."""
        table = Table(
            headers=("history_L", "train_best_utility", "eval_best_utility", "equilibrium"),
            title="Ablation E8 — observation history length",
        )
        for length, trained, evaluated in self.rows:
            table.add_row(length, trained, evaluated, self.equilibrium_utility)
        return table


@dataclass
class CapacityAblationResult:
    """E9 — equilibrium vs sellable capacity ``B_max``."""

    capacities: tuple[float, ...]
    rows: list[tuple[float, float, float, bool]] = field(default_factory=list)
    """(B_max, equilibrium price, MSP utility, capacity binding)."""

    def table(self) -> Table:
        """Printable sweep table."""
        table = Table(
            headers=("B_max", "p*", "msp_utility", "capacity_binding"),
            title="Ablation E9 — equilibrium vs sellable capacity B_max",
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _training_job(market: StackelbergMarket, config: ExperimentConfig) -> Job:
    return Job(
        "training_run",
        {
            "market": market_to_payload(market),
            "config": config_to_payload(config),
            "evaluate": True,
        },
    )


def _train_and_evaluate(
    market: StackelbergMarket, config: ExperimentConfig
) -> tuple[float, float]:
    """One ablation cell, in-process: (train tail utility, eval utility)."""
    trained = train_drl(market, config)
    evaluation = evaluate_policy(
        market, trained.policy, rounds=config.evaluation_rounds
    )
    return (
        trained.training.tail_mean_best_utility(),
        evaluation.best_msp_utility,
    )


def _cell_from_payload(payload) -> tuple[float, float]:
    return (
        float(payload["tail_mean_best_utility"]),
        float(payload["evaluation"]["best_msp_utility"]),
    )


# ------------------------------------------------------------------ #
# E7 — reward shaping
# ------------------------------------------------------------------ #
def _reward_plan(params) -> ExperimentPlan:
    config = api.resolve_config(params)
    market = api.resolve_market(params)
    modes = tuple(params["modes"])
    jobs = [
        _training_job(market, config.with_reward_mode(mode)) for mode in modes
    ]
    return ExperimentPlan(
        "reward_ablation",
        dict(params),
        jobs,
        context={"market": market, "modes": modes},
    )


def _reward_assemble(plan: ExperimentPlan, results: list) -> RewardAblationResult:
    equilibrium = plan.context["market"].equilibrium()
    result = RewardAblationResult(equilibrium_utility=equilibrium.msp_utility)
    for mode, payload in zip(plan.context["modes"], results):
        result.rows.append((mode, *_cell_from_payload(payload)))
    return result


def _reward_direct(params) -> RewardAblationResult:
    config = api.resolve_config(params)
    market = api.resolve_market(params)
    equilibrium = market.equilibrium()
    result = RewardAblationResult(equilibrium_utility=equilibrium.msp_utility)
    for mode in params["modes"]:
        result.rows.append(
            (mode, *_train_and_evaluate(market, config.with_reward_mode(mode)))
        )
    return result


REWARD_ABLATION = api.register(
    api.ExperimentSpec(
        name="reward_ablation",
        description=(
            "Ablation E7 — reward shaping: the paper's binary Eq.-12 "
            "reward vs the shaped per-round-utility reward (one DRL "
            "training per mode)"
        ),
        params=(
            ParamSpec("modes", "strs", ("paper", "utility"), "reward formulations to train"),
            MARKET_PARAM,
            *CONFIG_PARAMS,
        ),
        result_type=RewardAblationResult,
        plan=_reward_plan,
        assemble=_reward_assemble,
        direct=_reward_direct,
    )
)


# ------------------------------------------------------------------ #
# E8 — observation history length
# ------------------------------------------------------------------ #
def _history_plan(params) -> ExperimentPlan:
    config = api.resolve_config(params)
    market = api.resolve_market(params)
    lengths = tuple(params["lengths"])
    jobs = [
        _training_job(market, config.with_history_length(length))
        for length in lengths
    ]
    return ExperimentPlan(
        "history_ablation",
        dict(params),
        jobs,
        context={"market": market, "lengths": lengths},
    )


def _history_assemble(
    plan: ExperimentPlan, results: list
) -> HistoryAblationResult:
    equilibrium = plan.context["market"].equilibrium()
    result = HistoryAblationResult(equilibrium_utility=equilibrium.msp_utility)
    for length, payload in zip(plan.context["lengths"], results):
        result.rows.append((length, *_cell_from_payload(payload)))
    return result


def _history_direct(params) -> HistoryAblationResult:
    config = api.resolve_config(params)
    market = api.resolve_market(params)
    equilibrium = market.equilibrium()
    result = HistoryAblationResult(equilibrium_utility=equilibrium.msp_utility)
    for length in params["lengths"]:
        result.rows.append(
            (
                length,
                *_train_and_evaluate(
                    market, config.with_history_length(length)
                ),
            )
        )
    return result


HISTORY_ABLATION = api.register(
    api.ExperimentSpec(
        name="history_ablation",
        description=(
            "Ablation E8 — observation history length L: how much pricing "
            "history the MSP agent needs (one DRL training per length)"
        ),
        params=(
            ParamSpec("lengths", "ints", (1, 2, 4, 8), "history lengths L to train"),
            MARKET_PARAM,
            *CONFIG_PARAMS,
        ),
        result_type=HistoryAblationResult,
        plan=_history_plan,
        assemble=_history_assemble,
        direct=_history_direct,
    )
)


# ------------------------------------------------------------------ #
# E9 — sellable capacity
# ------------------------------------------------------------------ #
DEFAULT_CAPACITIES = (5.0, 10.0, 25.0, 50.0, 100.0, 200.0)


def _capacity_markets(params) -> list[StackelbergMarket]:
    base = api.resolve_market(params)
    return [
        StackelbergMarket(
            base.vmus,
            config=replace(base.config, max_bandwidth=float(capacity)),
            link=base.link,
        )
        for capacity in params["capacities"]
    ]


def _capacity_pack(params, cells) -> CapacityAblationResult:
    result = CapacityAblationResult(capacities=tuple(params["capacities"]))
    for capacity, (price, msp_utility, binding) in zip(
        result.capacities, cells
    ):
        result.rows.append((float(capacity), price, msp_utility, binding))
    return result


def _capacity_plan(params) -> ExperimentPlan:
    markets = _capacity_markets(params)
    jobs = [
        Job("equilibrium_cell", {"market": market_to_payload(market)})
        for market in markets
    ]
    return ExperimentPlan("capacity_ablation", dict(params), jobs)


def _capacity_assemble(
    plan: ExperimentPlan, results: list
) -> CapacityAblationResult:
    cells = [
        (
            float(payload["price"]),
            float(payload["msp_utility"]),
            bool(payload["capacity_binding"]),
        )
        for payload in results
    ]
    return _capacity_pack(plan.params, cells)


def _capacity_direct(params) -> CapacityAblationResult:
    markets = _capacity_markets(params)
    solved = MarketStack(markets).equilibria_stacked()
    cells = []
    for m in range(len(markets)):
        equilibrium = solved.equilibrium(m)
        cells.append(
            (
                equilibrium.price,
                equilibrium.msp_utility,
                equilibrium.capacity_binding,
            )
        )
    return _capacity_pack(params, cells)


CAPACITY_ABLATION = api.register(
    api.ExperimentSpec(
        name="capacity_ablation",
        description=(
            "Ablation E9 — equilibrium vs sellable capacity B_max, "
            "between the capacity-binding and slack regimes"
        ),
        params=(
            ParamSpec("capacities", "floats", DEFAULT_CAPACITIES, "B_max values to sweep"),
            MARKET_PARAM,
        ),
        result_type=CapacityAblationResult,
        plan=_capacity_plan,
        assemble=_capacity_assemble,
        direct=_capacity_direct,
    )
)


def run_capacity_ablation(
    *,
    market: StackelbergMarket | None = None,
    capacities: tuple[float, ...] = DEFAULT_CAPACITIES,
    scheduler: JobScheduler | None = None,
) -> CapacityAblationResult:
    """Sweep ``B_max`` and solve every capacity's equilibrium.

    Thin shim over the ``capacity_ablation`` spec: without a scheduler
    the swept markets — same population and link, capacity varied — solve
    as one ragged-free :meth:`MarketStack.equilibria_stacked` pass; with
    one, each capacity is one cached ``equilibrium_cell`` job. Per
    capacity the result equals a per-market ``equilibrium()`` call
    bitwise.
    """
    return api.run_experiment(
        CAPACITY_ABLATION,
        {"market": market, "capacities": capacities},
        scheduler=scheduler,
    )


def run_reward_ablation(
    config: ExperimentConfig | None = None,
    *,
    market: StackelbergMarket | None = None,
    modes: tuple[str, ...] = ("paper", "utility"),
    scheduler: JobScheduler | None = None,
) -> RewardAblationResult:
    """Train with each reward formulation on the same market.

    Thin shim over the ``reward_ablation`` spec; with ``scheduler`` each
    mode's training is one ``training_run`` job (parallel, cached,
    resumable, bitwise-equal to the sequential loop).
    """
    return api.run_experiment(
        REWARD_ABLATION,
        {"config": config, "market": market, "modes": modes},
        scheduler=scheduler,
    )


def run_history_ablation(
    config: ExperimentConfig | None = None,
    *,
    market: StackelbergMarket | None = None,
    lengths: tuple[int, ...] = (1, 2, 4, 8),
    scheduler: JobScheduler | None = None,
) -> HistoryAblationResult:
    """Train with each observation history length on the same market.

    Thin shim over the ``history_ablation`` spec; with ``scheduler`` each
    length's training is one ``training_run`` job (parallel, cached,
    resumable, bitwise-equal to the sequential loop).
    """
    return api.run_experiment(
        HISTORY_ABLATION,
        {"config": config, "market": market, "lengths": lengths},
        scheduler=scheduler,
    )
