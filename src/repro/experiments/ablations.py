"""Ablation experiments E7/E8 (DESIGN.md): design choices of the mechanism.

E7 — reward shaping: the paper's binary Eq.-12 reward vs the shaped
per-round-utility reward. Both converge to the same equilibrium; the
shaped reward converges in fewer episodes (less sparse signal).

E8 — observation history length L ∈ {1, 2, 4, 8}: the paper fixes L = 4;
this ablation measures how much history the MSP agent actually needs in a
stationary follower population.

E9 — sellable-capacity B_max: the paper fixes B_max = 50; this ablation
sweeps it and reports how the equilibrium moves between the
capacity-binding and slack regimes. The whole sweep's market grid is one
:meth:`repro.core.marketstack.MarketStack.equilibria_stacked` solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.marketstack import MarketStack
from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import evaluate_policy, train_drl
from repro.utils.tables import Table

__all__ = [
    "RewardAblationResult",
    "HistoryAblationResult",
    "CapacityAblationResult",
    "run_reward_ablation",
    "run_history_ablation",
    "run_capacity_ablation",
]


@dataclass
class RewardAblationResult:
    """E7 — converged utility per reward formulation."""

    equilibrium_utility: float
    rows: list[tuple[str, float, float]] = field(default_factory=list)
    """(reward_mode, converged best utility, evaluated best utility)."""

    def table(self) -> Table:
        """Printable comparison."""
        table = Table(
            headers=("reward_mode", "train_best_utility", "eval_best_utility", "equilibrium"),
            title="Ablation E7 — reward shaping (Eq. 12 binary vs utility-shaped)",
        )
        for mode, trained, evaluated in self.rows:
            table.add_row(mode, trained, evaluated, self.equilibrium_utility)
        return table


@dataclass
class HistoryAblationResult:
    """E8 — converged utility per observation history length."""

    equilibrium_utility: float
    rows: list[tuple[int, float, float]] = field(default_factory=list)
    """(history length L, converged best utility, evaluated best utility)."""

    def table(self) -> Table:
        """Printable comparison."""
        table = Table(
            headers=("history_L", "train_best_utility", "eval_best_utility", "equilibrium"),
            title="Ablation E8 — observation history length",
        )
        for length, trained, evaluated in self.rows:
            table.add_row(length, trained, evaluated, self.equilibrium_utility)
        return table


@dataclass
class CapacityAblationResult:
    """E9 — equilibrium vs sellable capacity ``B_max``."""

    capacities: tuple[float, ...]
    rows: list[tuple[float, float, float, bool]] = field(default_factory=list)
    """(B_max, equilibrium price, MSP utility, capacity binding)."""

    def table(self) -> Table:
        """Printable sweep table."""
        table = Table(
            headers=("B_max", "p*", "msp_utility", "capacity_binding"),
            title="Ablation E9 — equilibrium vs sellable capacity B_max",
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run_capacity_ablation(
    *,
    market: StackelbergMarket | None = None,
    capacities: tuple[float, ...] = (5.0, 10.0, 25.0, 50.0, 100.0, 200.0),
) -> CapacityAblationResult:
    """Sweep ``B_max`` and solve every capacity's equilibrium, stacked.

    The swept markets share the population and link and differ only in
    capacity, so the whole grid is one ragged-free
    :meth:`MarketStack.equilibria_stacked` pass — per capacity the result
    equals a per-market ``equilibrium()`` call bitwise.
    """
    base = (
        market
        if market is not None
        else StackelbergMarket(paper_fig2_population())
    )
    markets = [
        StackelbergMarket(
            base.vmus,
            config=replace(base.config, max_bandwidth=float(capacity)),
            link=base.link,
        )
        for capacity in capacities
    ]
    solved = MarketStack(markets).equilibria_stacked()
    result = CapacityAblationResult(capacities=tuple(capacities))
    for m, capacity in enumerate(capacities):
        equilibrium = solved.equilibrium(m)
        result.rows.append(
            (
                float(capacity),
                equilibrium.price,
                equilibrium.msp_utility,
                equilibrium.capacity_binding,
            )
        )
    return result


def run_reward_ablation(
    config: ExperimentConfig | None = None,
    *,
    market: StackelbergMarket | None = None,
    modes: tuple[str, ...] = ("paper", "utility"),
) -> RewardAblationResult:
    """Train with each reward formulation on the same market."""
    config = config if config is not None else ExperimentConfig.quick()
    market = (
        market
        if market is not None
        else StackelbergMarket(paper_fig2_population())
    )
    equilibrium = market.equilibrium()
    result = RewardAblationResult(equilibrium_utility=equilibrium.msp_utility)
    for mode in modes:
        trained = train_drl(market, config.with_reward_mode(mode))
        evaluation = evaluate_policy(
            market, trained.policy, rounds=config.evaluation_rounds
        )
        result.rows.append(
            (
                mode,
                trained.training.tail_mean_best_utility(),
                evaluation.best_msp_utility,
            )
        )
    return result


def run_history_ablation(
    config: ExperimentConfig | None = None,
    *,
    market: StackelbergMarket | None = None,
    lengths: tuple[int, ...] = (1, 2, 4, 8),
) -> HistoryAblationResult:
    """Train with each observation history length on the same market."""
    config = config if config is not None else ExperimentConfig.quick()
    market = (
        market
        if market is not None
        else StackelbergMarket(paper_fig2_population())
    )
    equilibrium = market.equilibrium()
    result = HistoryAblationResult(equilibrium_utility=equilibrium.msp_utility)
    for length in lengths:
        trained = train_drl(market, config.with_history_length(length))
        evaluation = evaluate_policy(
            market, trained.policy, rounds=config.evaluation_rounds
        )
        result.rows.append(
            (
                length,
                trained.training.tail_mean_best_utility(),
                evaluation.best_msp_utility,
            )
        )
    return result
