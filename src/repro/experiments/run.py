"""Command-line entry point: regenerate any paper figure.

Usage::

    python -m repro.experiments.run --figure fig2 [--quick | --paper]
    python -m repro.experiments.run --figure fig3a --output results/
    python -m repro.experiments.run --figure fig3a --workers 4 --cache-dir .cache
    python -m repro.experiments.run --list
    python -m repro.experiments.run multiseed --seeds 0,1,2,3 --shards 2
    python -m repro.experiments.run schedule --jobs jobs.json --workers 4 \
        --cache-dir .cache --resume

``--quick`` (default) uses the reduced budget documented in EXPERIMENTS.md;
``--paper`` uses the full Sec. V-A budget (E = 500 episodes — slow on a
laptop but faithful).

``--workers``/``--cache-dir``/``--resume`` on the figure path route the
fig3 sweeps' per-market DRL trainings and the robustness grids through the
experiment scheduler (:mod:`repro.experiments.scheduler`): trainings fan
out across worker processes and every finished unit is cached, so an
interrupted sweep resumes instead of recomputing. Results are bitwise
identical to the sequential path.

The ``multiseed`` subcommand runs the seeds-axis robustness comparison
(:func:`repro.experiments.run_multiseed_comparison`): ``--seeds`` picks the
seed set, ``--shards`` fans the per-seed runs out across worker processes
(exact — sharded results equal the sequential run), and ``--num-envs``
widens the engine's env-batch axis inside each seed's training.

The ``schedule`` subcommand executes an explicit job-spec file — a JSON
list of ``{"kind": ..., "payload": ...}`` entries (the
:meth:`repro.experiments.scheduler.Job.spec` wire form) — against the
scheduler: the queued-experiment path for splitting one sweep's jobs
across machines that share (or later merge) a cache directory.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.core.stackelberg import StackelbergMarket
from repro.core.welfare import welfare_report
from repro.entities.vmu import paper_fig2_population
from repro.errors import ExperimentError
from repro.experiments.ablations import run_history_ablation, run_reward_ablation
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3_cost import run_fig3_cost
from repro.experiments.fig3_vmus import run_fig3_vmus
from repro.experiments.multiseed import run_multiseed_comparison
from repro.experiments.runner import PolicyEvaluation
from repro.experiments.robustness import (
    run_distance_sweep,
    run_fading_sweep,
    run_population_sweep,
)
from repro.experiments.scheduler import Job, JobScheduler
from repro.utils.serialization import load_json, save_json
from repro.utils.tables import Table

__all__ = ["main", "multiseed_main", "schedule_main", "FIGURES"]


def _fig2(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    result = run_fig2(config)
    payload = {
        "episode_returns": result.episode_returns,
        "episode_best_utilities": result.episode_best_utilities,
        "equilibrium_utility": result.equilibrium_utility,
        "equilibrium_price": result.equilibrium_price,
    }
    return str(result.table()), payload


def _fig3a(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    result = run_fig3_cost(config, scheduler=scheduler)
    payload = {
        str(cost): {
            scheme: vars(evaluation)
            for scheme, evaluation in by_scheme.items()
        }
        for cost, by_scheme in result.evaluations.items()
    }
    return f"{result.msp_table()}\n\n{result.vmu_table()}", payload


def _fig3c(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    result = run_fig3_vmus(config, scheduler=scheduler)
    payload = {
        str(count): {
            scheme: vars(evaluation)
            for scheme, evaluation in by_scheme.items()
        }
        for count, by_scheme in result.evaluations.items()
    }
    return f"{result.msp_table()}\n\n{result.vmu_table()}", payload


def _ablations(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    reward = run_reward_ablation(config)
    history = run_history_ablation(config)
    text = f"{reward.table()}\n\n{history.table()}"
    payload = {
        "reward": reward.rows,
        "history": history.rows,
        "equilibrium_utility": reward.equilibrium_utility,
    }
    return text, payload


def _robustness(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    distance = run_distance_sweep(scheduler=scheduler)
    fading = run_fading_sweep(draws=30, seed=config.seed, scheduler=scheduler)
    population = run_population_sweep(
        draws=10, seed=config.seed, scheduler=scheduler
    )
    text = "\n\n".join(
        str(t) for t in (distance.table(), fading.table(), population.table())
    )
    payload = {
        "distance": {
            "distances_m": distance.distances_m,
            "prices": distance.prices,
            "msp_utilities": distance.msp_utilities,
        },
        "fading_prices": fading.prices,
        "population_per_draw": population.per_draw,
    }
    return text, payload


def _welfare(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    market = StackelbergMarket(paper_fig2_population())
    report = welfare_report(market)
    table = Table(
        headers=("quantity", "value"),
        title="Welfare analysis — paper's 2-VMU market",
    )
    rows = {
        "monopoly price": report.monopoly_price,
        "monopoly welfare": report.monopoly_welfare,
        "MSP share of welfare": report.monopoly_msp_share,
        "planner price": report.planner_price,
        "planner welfare": report.planner_welfare,
        "deadweight loss": report.deadweight_loss,
        "efficiency": report.efficiency,
    }
    for name, value in rows.items():
        table.add_row(name, value)
    return str(table), rows


FIGURES = {
    "fig2": _fig2,
    "fig3a": _fig3a,
    "fig3b": _fig3a,  # 3(a) and 3(b) come from the same sweep
    "fig3c": _fig3c,
    "fig3d": _fig3c,  # 3(c) and 3(d) come from the same sweep
    "ablations": _ablations,
    "robustness": _robustness,
    "welfare": _welfare,
}

# Figures whose work actually routes through the scheduler; the rest run
# sequentially and must not silently accept --workers/--cache-dir.
SCHEDULED_FIGURES = frozenset({"fig3a", "fig3b", "fig3c", "fig3d", "robustness"})


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--seeds wants comma-separated integers, got {text!r}"
        ) from exc


def multiseed_main(argv: list[str] | None = None) -> int:
    """The ``multiseed`` subcommand: seeds-axis comparison, optionally
    sharded across processes."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments multiseed",
        description=(
            "Multi-seed scheme comparison with confidence intervals "
            "(process-sharded when --shards > 1; sharded results are "
            "exactly equal to the sequential run)."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=(0, 1, 2, 3, 4),
        help="comma-separated seed list, e.g. 0,1,2,3 (default 0,1,2,3,4)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes to fan the per-seed runs across (default 1)",
    )
    parser.add_argument(
        "--num-envs",
        type=int,
        default=None,
        help="env-batch width E inside each seed's DRL training",
    )
    parser.add_argument(
        "--schemes",
        default="drl,random",
        help="comma-separated scheme names (default drl,random)",
    )
    parser.add_argument(
        "--metric",
        default="mean_msp_utility",
        help="PolicyEvaluation field to aggregate (default mean_msp_utility)",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full training budget (slow)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="directory for JSON results"
    )
    args = parser.parse_args(argv)
    # Fail fast on bad knobs: the first seed can take minutes of DRL
    # training at the paper budget, and under --shards a late ValueError
    # or AttributeError would surface as a worker traceback.
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    metric_names = {field.name for field in dataclasses.fields(PolicyEvaluation)}
    if args.metric not in metric_names:
        parser.error(
            f"--metric must be a PolicyEvaluation field "
            f"({', '.join(sorted(metric_names))}), got {args.metric!r}"
        )
    if len(args.seeds) < 2:
        parser.error(f"--seeds needs at least two seeds, got {args.seeds}")
    duplicates = sorted({s for s in args.seeds if args.seeds.count(s) > 1})
    if duplicates:
        parser.error(f"--seeds contains duplicates {duplicates}")

    config = ExperimentConfig.paper() if args.paper else ExperimentConfig.quick()
    market = StackelbergMarket(paper_fig2_population())
    result = run_multiseed_comparison(
        market,
        config,
        seeds=args.seeds,
        schemes=tuple(s for s in args.schemes.split(",") if s.strip()),
        metric=args.metric,
        num_envs=args.num_envs,
        shards=args.shards if args.shards > 1 else None,
    )
    print(result.table())
    if args.output is not None:
        target = save_json(args.output / "multiseed.json", result.to_payload())
        print(f"\nwrote {target}")
    return 0


def schedule_main(argv: list[str] | None = None) -> int:
    """The ``schedule`` subcommand: execute a job-spec file through the
    experiment scheduler (process pool + on-disk result cache + resume)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments schedule",
        description=(
            "Execute a JSON list of job specs ({kind, payload} entries) "
            "through the experiment scheduler. Finished jobs are cached "
            "under --cache-dir; a rerun with --resume serves them from "
            "disk without touching a worker."
        ),
    )
    parser.add_argument(
        "--jobs",
        type=Path,
        required=True,
        help="JSON file: a list of {kind, payload} job specs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to execute jobs across (default 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for per-job result caching (enables resume)",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve cached results instead of re-running (default on)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="seconds without any job finishing before the run fails fast",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="directory for JSON results"
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    try:
        specs = load_json(args.jobs)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read --jobs file: {exc}")
    if not isinstance(specs, list):
        parser.error("--jobs file must contain a JSON list of job specs")
    try:
        jobs = [Job.from_spec(spec) for spec in specs]
    except ExperimentError as exc:
        parser.error(f"bad job spec in --jobs file: {exc}")
    scheduler = JobScheduler(
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=args.resume,
        job_timeout=args.job_timeout,
    )
    results = scheduler.run(jobs)
    table = Table(
        headers=("#", "kind", "job_hash", "source"),
        title=f"Scheduled jobs — {args.jobs}",
    )
    for index, (job, source) in enumerate(zip(jobs, scheduler.job_sources)):
        table.add_row(index, job.kind, job.job_hash()[:16], source)
    print(table)
    print(
        f"\n{len(jobs)} job(s): {scheduler.jobs_executed} executed, "
        f"{scheduler.cache_hits} from cache"
    )
    if args.output is not None:
        payload = [
            {"job": job.spec(), "job_hash": job.job_hash(), "result": result}
            for job, result in zip(jobs, results)
        ]
        target = save_json(args.output / "schedule.json", payload)
        print(f"\nwrote {target}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "multiseed":
        return multiseed_main(argv[1:])
    if argv and argv[0] == "schedule":
        return schedule_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures of the VT-migration incentive paper.",
        epilog=(
            "Subcommands: `multiseed` runs the seeds-axis comparison; "
            "`schedule` executes a job-spec file through the experiment "
            "scheduler (see each subcommand's --help)."
        ),
    )
    parser.add_argument("--figure", choices=sorted(FIGURES), help="which figure")
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full training budget (slow)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the figure's independent units (fig3 "
            "per-market DRL trainings, robustness grid cells)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache finished units here so interrupted figure runs resume",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve cached units instead of re-running (default on)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="directory for JSON results"
    )
    args = parser.parse_args(argv)

    if args.list or not args.figure:
        print("available figures:", ", ".join(sorted(FIGURES)))
        print(
            "subcommands: multiseed, schedule "
            "(see `multiseed --help` / `schedule --help`)"
        )
        return 0
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    config = (
        ExperimentConfig.paper(seed=args.seed)
        if args.paper
        else ExperimentConfig.quick(seed=args.seed)
    )
    scheduler = None
    if args.workers > 1 or args.cache_dir is not None:
        if args.figure not in SCHEDULED_FIGURES:
            parser.error(
                f"--workers/--cache-dir apply only to the scheduler-routed "
                f"figures ({', '.join(sorted(SCHEDULED_FIGURES))}); "
                f"--figure {args.figure} runs sequentially"
            )
        scheduler = JobScheduler(
            workers=args.workers,
            cache_dir=args.cache_dir,
            resume=args.resume,
        )
    text, payload = FIGURES[args.figure](config, scheduler)
    print(text)
    if args.output is not None:
        target = save_json(args.output / f"{args.figure}.json", payload)
        print(f"\nwrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
