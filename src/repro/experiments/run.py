"""Command-line entry point: run any registered experiment.

Usage::

    python -m repro.experiments.run list
    python -m repro.experiments.run describe fig3_cost
    python -m repro.experiments.run run fig2 --param episodes=2
    python -m repro.experiments.run run fig3_cost --param costs=5,7,9 \
        --workers 4 --cache-dir .cache --resume
    python -m repro.experiments.run schedule --jobs jobs.json --workers 4 \
        --cache-dir .cache --resume
    python -m repro.experiments.run multiseed --seeds 0,1,2,3 --shards 2

    # shared-queue path: enqueue a plan, drain it with a worker fleet
    python -m repro.experiments.run schedule --jobs jobs.json \
        --queue-dir /shared/queue --enqueue
    python -m repro.experiments.run worker --queue-dir /shared/queue \
        --ttl 60 --drain
    python -m repro.experiments.run run fig3_cost --queue-dir /shared/queue

    # legacy figure interface (flags kept; --output JSON payloads are now
    # the uniform spec payloads, reloadable via result_from_payload):
    python -m repro.experiments.run --figure fig2 [--quick | --paper]
    python -m repro.experiments.run --figure fig3a --workers 4 --cache-dir .cache
    python -m repro.experiments.run --list

The ``run`` subcommand is the generic path: ``run <name> --param k=v``
works for **every** experiment in the
:mod:`repro.experiments.api` registry (``list`` names them, ``describe
<name>`` prints the typed parameter schema). ``--workers``, ``--cache-dir``
and ``--resume`` — defined once, in a parent parser shared by every
subcommand, so the flags cannot drift — route any experiment through the
job scheduler (:mod:`repro.experiments.scheduler`): independent units
(per-seed DRL trainings, per-market-point trainings, per-grid-cell
equilibria) fan out across worker processes and every finished unit is
cached, so an interrupted run resumes instead of recomputing. Results are
bitwise identical to the sequential path.

``--quick`` (default preset) uses the reduced budget documented in
EXPERIMENTS.md; ``--param preset=paper`` (or the legacy ``--paper`` flag)
uses the full Sec. V-A budget (E = 500 episodes — slow on a laptop but
faithful).

The ``multiseed`` subcommand runs the seeds-axis robustness comparison
(:func:`repro.experiments.run_multiseed_comparison`): ``--seeds`` picks the
seed set, ``--shards`` fans the per-seed runs out across worker processes
(exact — sharded results equal the sequential run), and ``--num-envs``
widens the engine's env-batch axis inside each seed's training.

The ``schedule`` subcommand executes an explicit job-spec file — a JSON
list of ``{"kind": ..., "payload": ...}`` entries (the
:meth:`repro.experiments.scheduler.Job.spec` wire form, which
:meth:`repro.experiments.api.ExperimentPlan.job_specs` emits) — against
the scheduler: the queued-experiment path for splitting one experiment's
jobs across machines that share (or later merge) a cache directory.

``--queue-dir`` switches any of the above onto the shared job queue
(:mod:`repro.queue`): jobs enqueue as spec files in a directory that any
number of ``worker`` processes — on any machines sharing the filesystem —
lease, execute, and ack, with heartbeat-based lease expiry so a killed
worker's jobs requeue. ``schedule --enqueue`` feeds a plan in without
executing; the queued path returns results bitwise identical to the
direct path.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.api import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    parse_int_tuple,
    run_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.scheduler import Job, JobScheduler
from repro.utils.serialization import load_json, save_json
from repro.utils.tables import Table

__all__ = [
    "main",
    "run_main",
    "list_main",
    "describe_main",
    "multiseed_main",
    "schedule_main",
    "worker_main",
    "FIGURES",
]


# ------------------------------------------------------------------ #
# shared flags — ONE definition for every subcommand (and the legacy
# figure path), so --workers/--cache-dir/--resume cannot drift
# ------------------------------------------------------------------ #
def _scheduler_parent() -> argparse.ArgumentParser:
    """Parent parser carrying the scheduler and output flags."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("scheduler")
    group.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the experiment's independent units "
            "(per-seed / per-market-point DRL trainings, grid cells)"
        ),
    )
    group.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache finished units here so interrupted runs resume",
    )
    group.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve cached units instead of re-running (default on)",
    )
    group.add_argument(
        "--queue-dir",
        type=Path,
        default=None,
        help=(
            "route jobs through the shared job queue at this directory "
            "(worker fleets drain it; see the `worker` subcommand) "
            "instead of a local process pool"
        ),
    )
    group.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help=(
            "seconds of worker heartbeat silence before its queue leases "
            "requeue (with --queue-dir; default 60)"
        ),
    )
    parent.add_argument(
        "--output", type=Path, default=None, help="directory for JSON results"
    )
    return parent


def _validate_workers(parser: argparse.ArgumentParser, args) -> None:
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    lease_ttl = getattr(args, "lease_ttl", None)
    if lease_ttl is not None:
        if getattr(args, "queue_dir", None) is None:
            parser.error("--lease-ttl only applies with --queue-dir")
        if lease_ttl <= 0:
            parser.error(f"--lease-ttl must be > 0 seconds, got {lease_ttl}")


def _build_scheduler(args, *, force: bool = False):
    """The scheduler the parsed flags describe (None → run in-process).

    ``--queue-dir`` selects the shared-queue backend
    (:class:`repro.queue.QueueScheduler`: jobs enqueue for any attached
    worker fleet, and the invocation itself works the queue inline until
    its batch completes); otherwise the flags describe a local
    :class:`JobScheduler`.
    """
    queue_dir = getattr(args, "queue_dir", None)
    if queue_dir is not None:
        from repro.queue import DEFAULT_LEASE_TTL, QueueScheduler

        lease_ttl = getattr(args, "lease_ttl", None)
        return QueueScheduler(
            queue_dir,
            lease_ttl=DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl,
            workers=args.workers,
            resume=args.resume,
        )
    if not force and args.workers == 1 and args.cache_dir is None:
        return None
    return JobScheduler(
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=args.resume,
        job_timeout=getattr(args, "job_timeout", None),
    )


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        return parse_int_tuple(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--seeds wants comma-separated integers, got {text!r}"
        ) from exc


# ------------------------------------------------------------------ #
# run / list / describe — the generic spec-driven interface
# ------------------------------------------------------------------ #
def _parse_cli_params(spec: ExperimentSpec, pairs: list[str]) -> dict:
    params = {}
    for pair in pairs:
        key, separator, text = pair.partition("=")
        if not separator or not key:
            raise ConfigurationError(
                f"--param wants KEY=VALUE, got {pair!r}"
            )
        params[key] = spec.param(key).parse(text)
    return params


def run_main(argv: list[str] | None = None) -> int:
    """The ``run`` subcommand: execute any registered experiment."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments run",
        parents=[_scheduler_parent()],
        description=(
            "Run one registered experiment. Parameters come from the "
            "experiment's typed schema (`describe <name>` prints it); "
            "--workers/--cache-dir/--resume route the run through the "
            "job scheduler — fan-out, caching, and kill-resume for every "
            "experiment, bitwise-equal to the sequential path."
        ),
    )
    parser.add_argument(
        "experiment",
        metavar="EXPERIMENT",
        help=f"registered experiment ({', '.join(experiment_names())})",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="set one spec parameter (repeatable), e.g. --param seeds=0,1,2",
    )
    args = parser.parse_args(argv)
    _validate_workers(parser, args)
    try:
        spec = get_experiment(args.experiment)
        params = _parse_cli_params(spec, args.param)
    except ConfigurationError as exc:
        parser.error(str(exc))
    scheduler = _build_scheduler(args)
    try:
        result = run_experiment(spec, params, scheduler=scheduler)
    except ValueError as exc:
        # ConfigurationError and the specs' domain validations (bad shard
        # counts, draws < 2, unknown scheme names) are all ValueErrors —
        # a clean CLI error, not a traceback.
        parser.error(str(exc))
    print(spec.render_result(result))
    if scheduler is not None:
        print(
            f"\n{scheduler.jobs_executed} job(s) executed, "
            f"{scheduler.cache_hits} from cache"
        )
    if args.output is not None:
        target = save_json(
            args.output / f"{spec.name}.json", spec.result_to_payload(result)
        )
        print(f"\nwrote {target}")
    return 0


def list_main(argv: list[str] | None = None) -> int:
    """The ``list`` subcommand: every registered experiment."""
    argparse.ArgumentParser(
        prog="repro-experiments list",
        description="List the registered experiments.",
    ).parse_args(argv)
    table = Table(
        headers=("experiment", "description"),
        title="Registered experiments — run <name> --param k=v",
    )
    for name in experiment_names():
        table.add_row(name, get_experiment(name).description)
    print(table)
    return 0


def describe_main(argv: list[str] | None = None) -> int:
    """The ``describe`` subcommand: one experiment's parameter schema."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments describe",
        description="Show one experiment's typed parameter schema.",
    )
    parser.add_argument("experiment", metavar="EXPERIMENT")
    args = parser.parse_args(argv)
    try:
        spec = get_experiment(args.experiment)
    except ConfigurationError as exc:
        parser.error(str(exc))
    print(f"{spec.name} — {spec.description}")
    print(f"result type: {spec.result_type.__name__}")
    table = Table(
        headers=("parameter", "type", "default", "help"),
        title=f"Parameters — run {spec.name} --param KEY=VALUE",
    )
    for param in spec.params:
        default = "" if param.default is None else repr(param.default)
        table.add_row(param.name, param.type, default, param.help)
    print(table)
    return 0


# ------------------------------------------------------------------ #
# multiseed — the seeds-axis comparison subcommand
# ------------------------------------------------------------------ #
def multiseed_main(argv: list[str] | None = None) -> int:
    """The ``multiseed`` subcommand: seeds-axis comparison, optionally
    sharded across processes."""
    from repro.core.stackelberg import StackelbergMarket
    from repro.entities.vmu import paper_fig2_population
    from repro.experiments.multiseed import (
        _validate_metric,
        _validate_seeds,
        run_multiseed_comparison,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments multiseed",
        parents=[_scheduler_parent()],
        description=(
            "Multi-seed scheme comparison with confidence intervals "
            "(process-sharded when --shards > 1; sharded results are "
            "exactly equal to the sequential run)."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=(0, 1, 2, 3, 4),
        help="comma-separated seed list, e.g. 0,1,2,3 (default 0,1,2,3,4)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shards to fan the per-seed runs across (default 1)",
    )
    parser.add_argument(
        "--num-envs",
        type=int,
        default=None,
        help="env-batch width E inside each seed's DRL training",
    )
    parser.add_argument(
        "--schemes",
        default="drl,random",
        help="comma-separated scheme names (default drl,random)",
    )
    parser.add_argument(
        "--metric",
        default="mean_msp_utility",
        help="PolicyEvaluation field to aggregate (default mean_msp_utility)",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full training budget (slow)",
    )
    args = parser.parse_args(argv)
    # Fail fast on bad knobs: the first seed can take minutes of DRL
    # training at the paper budget, and under --shards a late ValueError
    # or AttributeError would surface as a worker traceback.
    _validate_workers(parser, args)
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    try:
        # The spec's own validators — one definition, translated into
        # clean parser errors here.
        _validate_metric(args.metric)
        _validate_seeds(args.seeds)
    except ValueError as exc:
        parser.error(str(exc))
    if args.workers == 1 and args.shards > 1:
        # --shards N promises N-way fan-out; without an explicit --workers
        # the scheduler gets one worker per shard (capped at the seed
        # count), matching the schedulerless --shards behaviour — so
        # adding --cache-dir never silently serializes the run.
        args.workers = min(args.shards, len(args.seeds))

    config = ExperimentConfig.paper() if args.paper else ExperimentConfig.quick()
    market = StackelbergMarket(paper_fig2_population())
    result = run_multiseed_comparison(
        market,
        config,
        seeds=args.seeds,
        schemes=tuple(s for s in args.schemes.split(",") if s.strip()),
        metric=args.metric,
        num_envs=args.num_envs,
        shards=args.shards if args.shards > 1 else None,
        scheduler=_build_scheduler(args),
    )
    print(result.table())
    if args.output is not None:
        target = save_json(args.output / "multiseed.json", result.to_payload())
        print(f"\nwrote {target}")
    return 0


# ------------------------------------------------------------------ #
# worker — serve a shared job queue
# ------------------------------------------------------------------ #
def worker_main(argv: list[str] | None = None) -> int:
    """The ``worker`` subcommand: lease→execute→store→ack against a
    shared queue directory (see :mod:`repro.queue`)."""
    from repro.errors import ReproError
    from repro.queue import DEFAULT_LEASE_TTL, JobQueue, QueueWorker

    parser = argparse.ArgumentParser(
        prog="repro-experiments worker",
        description=(
            "Serve a shared job queue: lease pending jobs (atomic rename), "
            "heartbeat on a fixed cadence, execute, push results into the "
            "queue's content-addressed artifact store, ack. Every worker "
            "also reaps stale leases, so SIGKILLed workers' jobs requeue "
            "after --ttl and the fleet self-heals. Start as many workers "
            "as you like, on as many machines as share the directory."
        ),
    )
    parser.add_argument(
        "--queue-dir",
        type=Path,
        required=True,
        help="the shared queue directory (created if missing)",
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help=(
            "lease TTL: seconds of heartbeat silence before this (or any) "
            "worker's leases requeue (default %(default)s)"
        ),
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: host-pid-random)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        help="heartbeat cadence in seconds (default: ttl / 4)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.1,
        help="idle polling interval in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after completing this many jobs",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help=(
            "exit once the queue is empty (nothing pending or leased "
            "fleet-wide) instead of serving forever"
        ),
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many seconds without obtaining a lease",
    )
    args = parser.parse_args(argv)
    if args.ttl <= 0:
        parser.error(f"--ttl must be > 0 seconds, got {args.ttl}")
    if args.max_jobs is not None and args.max_jobs < 1:
        parser.error(f"--max-jobs must be >= 1, got {args.max_jobs}")
    try:
        queue = JobQueue(args.queue_dir, lease_ttl=args.ttl)
        worker = QueueWorker(
            queue,
            worker_id=args.worker_id,
            heartbeat_interval=args.heartbeat,
            poll_interval=args.poll,
        )
    except ReproError as exc:
        parser.error(str(exc))
    print(f"worker {worker.worker_id} serving {queue.root} (ttl {args.ttl}s)")
    try:
        stats = worker.run(
            max_jobs=args.max_jobs,
            drain=args.drain,
            idle_timeout=args.idle_timeout,
        )
    except KeyboardInterrupt:
        print("interrupted; leases release via reaping after the TTL")
        return 130
    except ReproError as exc:
        # The failing job was released back to pending/ for a retry by
        # another worker; this worker reports and exits nonzero.
        print(f"job failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"{stats.completed} job(s) completed: {stats.executed} executed, "
        f"{stats.deduplicated} already stored, {stats.requeued} stale "
        f"lease(s) requeued"
    )
    return 0


# ------------------------------------------------------------------ #
# schedule — execute (or enqueue) an explicit job-spec file
# ------------------------------------------------------------------ #
def schedule_main(argv: list[str] | None = None) -> int:
    """The ``schedule`` subcommand: execute a job-spec file through the
    experiment scheduler (process pool + on-disk result cache + resume),
    or — with ``--enqueue`` — feed it into a shared ``--queue-dir`` for a
    worker fleet without executing anything locally."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments schedule",
        parents=[_scheduler_parent()],
        description=(
            "Execute a JSON list of job specs ({kind, payload} entries) "
            "through the experiment scheduler. Finished jobs are cached "
            "under --cache-dir; a rerun with --resume serves them from "
            "disk without touching a worker."
        ),
    )
    parser.add_argument(
        "--jobs",
        type=Path,
        required=True,
        help="JSON file: a list of {kind, payload} job specs",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="seconds without any job finishing before the run fails fast",
    )
    parser.add_argument(
        "--enqueue",
        action="store_true",
        help=(
            "only enqueue the jobs into --queue-dir (for a worker fleet "
            "to drain) instead of executing anything locally"
        ),
    )
    args = parser.parse_args(argv)
    _validate_workers(parser, args)
    if args.enqueue and args.queue_dir is None:
        parser.error("--enqueue needs --queue-dir")
    try:
        specs = load_json(args.jobs)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read --jobs file: {exc}")
    if not isinstance(specs, list):
        parser.error("--jobs file must contain a JSON list of job specs")
    try:
        jobs = [Job.from_spec(spec) for spec in specs]
    except ExperimentError as exc:
        parser.error(f"bad job spec in --jobs file: {exc}")
    if args.enqueue:
        from repro.queue import DEFAULT_LEASE_TTL, JobQueue

        lease_ttl = getattr(args, "lease_ttl", None)
        queue = JobQueue(
            args.queue_dir,
            lease_ttl=DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl,
        )
        enqueued = queue.enqueue_many(jobs)
        stats = queue.stats()
        print(
            f"enqueued {enqueued} of {len(jobs)} job(s) into {queue.root} "
            f"({len(jobs) - enqueued} already pending/leased/stored)"
        )
        print(
            f"queue: {stats.pending} pending, {stats.leased} leased, "
            f"{stats.stored} stored"
        )
        return 0
    scheduler = _build_scheduler(args, force=True)
    results = scheduler.run(jobs)
    table = Table(
        headers=("#", "kind", "job_hash", "source"),
        title=f"Scheduled jobs — {args.jobs}",
    )
    for index, (job, source) in enumerate(zip(jobs, scheduler.job_sources)):
        table.add_row(index, job.kind, job.job_hash()[:16], source)
    print(table)
    print(
        f"\n{len(jobs)} job(s): {scheduler.jobs_executed} executed, "
        f"{scheduler.cache_hits} from cache"
    )
    if args.output is not None:
        payload = [
            {"job": job.spec(), "job_hash": job.job_hash(), "result": result}
            for job, result in zip(jobs, results)
        ]
        target = save_json(args.output / "schedule.json", payload)
        print(f"\nwrote {target}")
    return 0


# ------------------------------------------------------------------ #
# legacy figure interface — thin aliases onto the spec registry
# ------------------------------------------------------------------ #
def _spec_figure(name: str):
    def runner(
        config: ExperimentConfig, scheduler: JobScheduler | None = None
    ) -> tuple[str, object]:
        spec = get_experiment(name)
        params = (
            {"config": config} if any(p.name == "config" for p in spec.params)
            else {}
        )
        result = run_experiment(spec, params, scheduler=scheduler)
        return spec.render_result(result), spec.result_to_payload(result)

    return runner


def _ablations(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    reward_spec = get_experiment("reward_ablation")
    history_spec = get_experiment("history_ablation")
    reward = run_experiment(
        reward_spec, {"config": config}, scheduler=scheduler
    )
    history = run_experiment(
        history_spec, {"config": config}, scheduler=scheduler
    )
    text = f"{reward.table()}\n\n{history.table()}"
    payload = {
        "reward": reward_spec.result_to_payload(reward),
        "history": history_spec.result_to_payload(history),
    }
    return text, payload


def _robustness(
    config: ExperimentConfig, scheduler: JobScheduler | None = None
) -> tuple[str, object]:
    distance_spec = get_experiment("distance_sweep")
    fading_spec = get_experiment("fading_sweep")
    population_spec = get_experiment("population_sweep")
    distance = run_experiment(distance_spec, {}, scheduler=scheduler)
    fading = run_experiment(
        fading_spec, {"draws": 30, "seed": config.seed}, scheduler=scheduler
    )
    population = run_experiment(
        population_spec,
        {"draws": 10, "seed": config.seed},
        scheduler=scheduler,
    )
    text = "\n\n".join(
        str(t) for t in (distance.table(), fading.table(), population.table())
    )
    payload = {
        "distance": distance_spec.result_to_payload(distance),
        "fading": fading_spec.result_to_payload(fading),
        "population": population_spec.result_to_payload(population),
    }
    return text, payload


FIGURES = {
    "fig2": _spec_figure("fig2"),
    "fig3a": _spec_figure("fig3_cost"),
    "fig3b": _spec_figure("fig3_cost"),  # 3(a) and 3(b): same sweep
    "fig3c": _spec_figure("fig3_vmus"),
    "fig3d": _spec_figure("fig3_vmus"),  # 3(c) and 3(d): same sweep
    "ablations": _ablations,
    "robustness": _robustness,
    "welfare": _spec_figure("welfare"),
}


SUBCOMMANDS = {
    "run": run_main,
    "list": list_main,
    "describe": describe_main,
    "multiseed": multiseed_main,
    "schedule": schedule_main,
    "worker": worker_main,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        parents=[_scheduler_parent()],
        description="Regenerate figures of the VT-migration incentive paper.",
        epilog=(
            "Subcommands: `run <experiment> --param k=v` executes any "
            "registered experiment; `list` and `describe <experiment>` "
            "show the registry; `multiseed` runs the seeds-axis "
            "comparison; `schedule` executes a job-spec file; `worker` "
            "serves a shared --queue-dir job queue (see each "
            "subcommand's --help)."
        ),
    )
    parser.add_argument("--figure", choices=sorted(FIGURES), help="which figure")
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full training budget (slow)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.list or not args.figure:
        print("available figures:", ", ".join(sorted(FIGURES)))
        print(
            "experiments:", ", ".join(experiment_names())
        )
        print(
            "subcommands: run, list, describe, multiseed, schedule, "
            "worker (see `run --help` / `list --help` / ...)"
        )
        return 0
    _validate_workers(parser, args)

    config = (
        ExperimentConfig.paper(seed=args.seed)
        if args.paper
        else ExperimentConfig.quick(seed=args.seed)
    )
    # Every figure routes through the spec registry now, so the scheduler
    # flags apply uniformly — fig2 and the ablations included.
    scheduler = _build_scheduler(args)
    text, payload = FIGURES[args.figure](config, scheduler)
    print(text)
    if args.output is not None:
        target = save_json(args.output / f"{args.figure}.json", payload)
        print(f"\nwrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
