"""Command-line entry point: regenerate any paper figure.

Usage::

    python -m repro.experiments.run --figure fig2 [--quick | --paper]
    python -m repro.experiments.run --figure fig3a --output results/
    python -m repro.experiments.run --list

``--quick`` (default) uses the reduced budget documented in EXPERIMENTS.md;
``--paper`` uses the full Sec. V-A budget (E = 500 episodes — slow on a
laptop but faithful).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.stackelberg import StackelbergMarket
from repro.core.welfare import welfare_report
from repro.entities.vmu import paper_fig2_population
from repro.experiments.ablations import run_history_ablation, run_reward_ablation
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3_cost import run_fig3_cost
from repro.experiments.fig3_vmus import run_fig3_vmus
from repro.experiments.robustness import (
    run_distance_sweep,
    run_fading_sweep,
    run_population_sweep,
)
from repro.utils.serialization import save_json
from repro.utils.tables import Table

__all__ = ["main", "FIGURES"]


def _fig2(config: ExperimentConfig) -> tuple[str, object]:
    result = run_fig2(config)
    payload = {
        "episode_returns": result.episode_returns,
        "episode_best_utilities": result.episode_best_utilities,
        "equilibrium_utility": result.equilibrium_utility,
        "equilibrium_price": result.equilibrium_price,
    }
    return str(result.table()), payload


def _fig3a(config: ExperimentConfig) -> tuple[str, object]:
    result = run_fig3_cost(config)
    payload = {
        str(cost): {
            scheme: vars(evaluation)
            for scheme, evaluation in by_scheme.items()
        }
        for cost, by_scheme in result.evaluations.items()
    }
    return f"{result.msp_table()}\n\n{result.vmu_table()}", payload


def _fig3c(config: ExperimentConfig) -> tuple[str, object]:
    result = run_fig3_vmus(config)
    payload = {
        str(count): {
            scheme: vars(evaluation)
            for scheme, evaluation in by_scheme.items()
        }
        for count, by_scheme in result.evaluations.items()
    }
    return f"{result.msp_table()}\n\n{result.vmu_table()}", payload


def _ablations(config: ExperimentConfig) -> tuple[str, object]:
    reward = run_reward_ablation(config)
    history = run_history_ablation(config)
    text = f"{reward.table()}\n\n{history.table()}"
    payload = {
        "reward": reward.rows,
        "history": history.rows,
        "equilibrium_utility": reward.equilibrium_utility,
    }
    return text, payload


def _robustness(config: ExperimentConfig) -> tuple[str, object]:
    distance = run_distance_sweep()
    fading = run_fading_sweep(draws=30, seed=config.seed)
    population = run_population_sweep(draws=10, seed=config.seed)
    text = "\n\n".join(
        str(t) for t in (distance.table(), fading.table(), population.table())
    )
    payload = {
        "distance": {
            "distances_m": distance.distances_m,
            "prices": distance.prices,
            "msp_utilities": distance.msp_utilities,
        },
        "fading_prices": fading.prices,
        "population_per_draw": population.per_draw,
    }
    return text, payload


def _welfare(config: ExperimentConfig) -> tuple[str, object]:
    market = StackelbergMarket(paper_fig2_population())
    report = welfare_report(market)
    table = Table(
        headers=("quantity", "value"),
        title="Welfare analysis — paper's 2-VMU market",
    )
    rows = {
        "monopoly price": report.monopoly_price,
        "monopoly welfare": report.monopoly_welfare,
        "MSP share of welfare": report.monopoly_msp_share,
        "planner price": report.planner_price,
        "planner welfare": report.planner_welfare,
        "deadweight loss": report.deadweight_loss,
        "efficiency": report.efficiency,
    }
    for name, value in rows.items():
        table.add_row(name, value)
    return str(table), rows


FIGURES = {
    "fig2": _fig2,
    "fig3a": _fig3a,
    "fig3b": _fig3a,  # 3(a) and 3(b) come from the same sweep
    "fig3c": _fig3c,
    "fig3d": _fig3c,  # 3(c) and 3(d) come from the same sweep
    "ablations": _ablations,
    "robustness": _robustness,
    "welfare": _welfare,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures of the VT-migration incentive paper.",
    )
    parser.add_argument("--figure", choices=sorted(FIGURES), help="which figure")
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full training budget (slow)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=None, help="directory for JSON results"
    )
    args = parser.parse_args(argv)

    if args.list or not args.figure:
        print("available figures:", ", ".join(sorted(FIGURES)))
        return 0

    config = (
        ExperimentConfig.paper(seed=args.seed)
        if args.paper
        else ExperimentConfig.quick(seed=args.seed)
    )
    text, payload = FIGURES[args.figure](config)
    print(text)
    if args.output is not None:
        target = save_json(args.output / f"{args.figure}.json", payload)
        print(f"\nwrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
