"""City-scale equilibrium sweep: 10k+ RSU-grid markets in bounded memory.

The ``city_sweep`` experiment solves the Stackelberg equilibrium of every
market of a city street grid (:mod:`repro.mobility.citygrid`) through the
chunked stacked solver
(:meth:`repro.core.marketstack.MarketStack.equilibria_stacked_chunked`),
so ``run city_sweep --param m=10000`` completes with peak memory bounded
by the chunk budget, not by ``M``.

Scheduled decomposition
-----------------------
``plan()`` partitions the market index range into the same chunks the
direct solve uses and emits one ``city_chunk`` job per range. A job's
payload is just the :class:`~repro.mobility.citygrid.CityGridSpec` payload
plus ``[start, stop)`` — a dozen scalars, not 10k market payloads —
because every grid market is a pure function of ``(spec, index)``. Each
job rebuilds only its own slice of the city and solves it as its own
stack; per-market equilibria are invariant to which stack a market is
solved inside (row-locality plus padding-width invariance, pinned by the
property suite), so the assembled result is bitwise-equal to the direct
path.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.marketstack import MarketStack, resolve_chunk_size
from repro.experiments import api
from repro.experiments.api import CHUNK_PARAMS, ExperimentPlan, ParamSpec
from repro.experiments.scheduler import Job, JobScheduler
from repro.mobility.citygrid import CityGridSpec, city_markets
from repro.utils.stats import SummaryStats, summarize
from repro.utils.tables import Table

__all__ = ["CityScaleResult", "run_city_sweep", "run_city_chunk_job", "CITY_SWEEP"]


@dataclass
class CityScaleResult:
    """Equilibrium summary of one city grid (NaN-free, payload-friendly)."""

    num_markets: int
    rows: int
    cols: int
    chunk_markets: int
    """Markets per chunk the solve streamed (resolved from the knobs)."""
    feasible: int
    capacity_binding: int
    price_cap_binding: int
    price_stats: SummaryStats
    """Equilibrium-price statistics over the feasible markets."""
    utility_stats: SummaryStats
    """MSP-utility statistics over the feasible markets."""
    total_bandwidth: float
    """Σ over feasible markets of Σ_n b*_n (natural units)."""

    def table(self) -> Table:
        """Printable summary."""
        table = Table(
            headers=("metric", "value"),
            title=(
                f"City sweep — {self.num_markets} markets on a "
                f"{self.rows}x{self.cols} RSU grid "
                f"({self.chunk_markets} markets/chunk)"
            ),
        )
        table.add_row("feasible markets", self.feasible)
        table.add_row("capacity binding", self.capacity_binding)
        table.add_row("price-cap binding", self.price_cap_binding)
        table.add_row("mean p*", self.price_stats.mean)
        table.add_row("mean MSP utility", self.utility_stats.mean)
        table.add_row("total bandwidth (natural)", self.total_bandwidth)
        return table


CITY_PARAMS: tuple[ParamSpec, ...] = (
    ParamSpec("m", "int?", None, "number of markets (default 64; derives a near-square grid unless rows/cols given)"),
    ParamSpec("rows", "int?", None, "explicit grid rows (needs cols)"),
    ParamSpec("cols", "int?", None, "explicit grid cols (needs rows)"),
    ParamSpec("block_m", "float", 400.0, "street-block edge length (m)"),
    ParamSpec("vehicles_per_cell", "float", 400.0, "vehicle stream served per RSU cell"),
    ParamSpec("max_vmus", "int", 6, "max VMUs per market (population drawn in [1, max])"),
    ParamSpec("target_aotm", "float", 0.05, "AoTM target the capacity sizing aims at (s)"),
    ParamSpec("seed", "int", 0, "root seed of the per-index market draws"),
)


def _city_spec(params: Mapping) -> CityGridSpec:
    num_markets = params["m"]
    if num_markets is None and (
        params["rows"] is None or params["cols"] is None
    ):
        num_markets = 64
    return CityGridSpec.for_markets(
        num_markets,
        rows=params["rows"],
        cols=params["cols"],
        block_m=float(params["block_m"]),
        vehicles_per_cell=float(params["vehicles_per_cell"]),
        max_vmus=int(params["max_vmus"]),
        target_aotm=float(params["target_aotm"]),
        seed=int(params["seed"]),
    )


def _chunk_markets(spec: CityGridSpec, params: Mapping) -> int:
    # Both paths size chunks from the spec's max_vmus bound (the solve's
    # padded width can only be narrower), so direct and scheduled runs
    # agree on the partition — and on the reported chunk_markets — even
    # when the drawn populations never reach the bound.
    return resolve_chunk_size(
        spec.num_markets,
        spec.max_vmus,
        chunk_size=params["chunk_size"],
        chunk_bytes=params["chunk_bytes"],
    )


def _pack(
    spec: CityGridSpec, chunk_markets: int, cells: Mapping
) -> CityScaleResult:
    feasible = [bool(flag) for flag in cells["feasible"]]
    prices = [
        float(p) for p, ok in zip(cells["prices"], feasible) if ok
    ]
    utilities = [
        float(u) for u, ok in zip(cells["msp_utilities"], feasible) if ok
    ]
    total_bandwidth = sum(
        float(b) for b, ok in zip(cells["total_bandwidths"], feasible) if ok
    )
    return CityScaleResult(
        num_markets=spec.num_markets,
        rows=spec.rows,
        cols=spec.cols,
        chunk_markets=chunk_markets,
        feasible=sum(feasible),
        capacity_binding=sum(
            bool(flag) for flag in cells["capacity_binding"]
        ),
        price_cap_binding=sum(
            bool(flag) for flag in cells["price_cap_binding"]
        ),
        price_stats=summarize(prices),
        utility_stats=summarize(utilities),
        total_bandwidth=float(total_bandwidth),
    )


_CELL_KEYS = (
    "prices",
    "msp_utilities",
    "total_bandwidths",
    "capacity_binding",
    "price_cap_binding",
    "feasible",
)


def run_city_chunk_job(payload: Mapping) -> dict:
    """Job kind ``city_chunk``: solve markets ``[start, stop)`` of a city.

    Rebuilds its index slice from the spec payload (pure function of the
    spec — see the citygrid determinism contract), solves it as one stack,
    and returns per-market equilibrium scalars. Infeasible markets ride
    the JSON wire as NaN prices/utilities with ``feasible`` false.
    """
    spec = CityGridSpec.from_payload(payload["spec"])
    start, stop = int(payload["start"]), int(payload["stop"])
    stack = MarketStack(city_markets(spec, start, stop))
    solved = stack.equilibria_stacked_chunked(chunk_size=len(stack))
    return {
        "prices": [float(p) for p in solved.prices],
        "msp_utilities": [float(u) for u in solved.msp_utilities],
        "total_bandwidths": [float(b) for b in solved.total_bandwidths],
        "capacity_binding": [bool(b) for b in solved.capacity_binding],
        "price_cap_binding": [bool(b) for b in solved.price_cap_binding],
        "feasible": [bool(f) for f in solved.feasible],
    }


def _city_plan(params: Mapping) -> ExperimentPlan:
    spec = _city_spec(params)
    chunk = _chunk_markets(spec, params)
    spec_payload = spec.to_payload()
    jobs = [
        Job(
            "city_chunk",
            {
                "spec": spec_payload,
                "start": start,
                "stop": min(start + chunk, spec.num_markets),
            },
        )
        for start in range(0, spec.num_markets, chunk)
    ]
    return ExperimentPlan(
        "city_sweep",
        dict(params),
        jobs,
        context={"spec": spec, "chunk_markets": chunk},
    )


def _city_assemble(plan: ExperimentPlan, results: list) -> CityScaleResult:
    cells = {key: [] for key in _CELL_KEYS}
    for payload in results:
        for key in _CELL_KEYS:
            cells[key].extend(payload[key])
    return _pack(plan.context["spec"], plan.context["chunk_markets"], cells)


def _city_direct(params: Mapping) -> CityScaleResult:
    spec = _city_spec(params)
    chunk = _chunk_markets(spec, params)
    solved = MarketStack(city_markets(spec)).equilibria_stacked_chunked(
        chunk_size=chunk
    )
    cells = {
        "prices": solved.prices,
        "msp_utilities": solved.msp_utilities,
        "total_bandwidths": solved.total_bandwidths,
        "capacity_binding": solved.capacity_binding,
        "price_cap_binding": solved.price_cap_binding,
        "feasible": solved.feasible,
    }
    return _pack(spec, chunk, cells)


CITY_SWEEP = api.register(
    api.ExperimentSpec(
        name="city_sweep",
        description=(
            "City-scale equilibrium sweep — one Stackelberg market per "
            "RSU-grid junction, solved through the memory-bounded chunked "
            "stacked path (markets-per-second at M = 10k+)"
        ),
        params=CITY_PARAMS + CHUNK_PARAMS,
        result_type=CityScaleResult,
        plan=_city_plan,
        assemble=_city_assemble,
        direct=_city_direct,
    )
)


def run_city_sweep(
    m: int | None = None,
    *,
    rows: int | None = None,
    cols: int | None = None,
    seed: int = 0,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
    scheduler: JobScheduler | None = None,
) -> CityScaleResult:
    """Solve a city grid's markets through the chunked stacked path.

    Thin shim over the ``city_sweep`` spec: without a scheduler the whole
    city solves as one chunk-streamed stack; with one, each chunk range
    becomes a cached ``city_chunk`` job rebuilding only its own slice of
    the city (bitwise-equal either way).
    """
    return api.run_experiment(
        CITY_SWEEP,
        {
            "m": m,
            "rows": rows,
            "cols": cols,
            "seed": seed,
            "chunk_size": chunk_size,
            "chunk_bytes": chunk_bytes,
        },
        scheduler=scheduler,
    )
