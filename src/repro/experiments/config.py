"""Experiment configuration shared by the per-figure runners.

Two presets matter:

- :meth:`ExperimentConfig.paper` — the paper's Sec. V-A hyper-parameters
  (E = 500 episodes of K = 100 rounds, lr = 1e-5). Full-fidelity runs.
- :meth:`ExperimentConfig.quick` — a reduced budget (documented in
  EXPERIMENTS.md) that converges on the same equilibria in seconds; this
  is what the benchmark suite runs so ``pytest benchmarks/`` stays fast.

The quick preset raises the learning rate and sets γ = 0: the pricing game
is a contextual bandit (the round reward depends only on the current
price), so discounting future rewards only adds variance. The paper's
exact settings remain available via :meth:`paper`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for one DRL training/evaluation run."""

    num_episodes: int = constants.NUM_EPISODES
    rounds_per_episode: int = constants.ROUNDS_PER_EPISODE
    history_length: int = constants.HISTORY_LENGTH
    update_interval: int = constants.BATCH_SIZE
    update_epochs: int = constants.UPDATE_EPOCHS
    batch_size: int = constants.BATCH_SIZE
    learning_rate: float = constants.LEARNING_RATE
    gamma: float = constants.DISCOUNT_GAMMA
    gae_lambda: float = 1.0
    entropy_coef: float = 1e-3
    reward_mode: str = "paper"
    evaluation_rounds: int = 100
    seed: int = 0
    num_envs: int = 1
    """Envs collected concurrently per training iteration (the batched
    engine's env-batch axis ``E``). 1 is bit-compatible with a scalar
    single-env run on the same seed; larger values collect ``num_envs``
    episodes per iteration (env 0 on ``seed``, the rest on independent
    child streams — see :meth:`repro.env.VectorMigrationEnv.from_market`)."""

    def __post_init__(self) -> None:
        for name in (
            "num_episodes",
            "rounds_per_episode",
            "history_length",
            "update_interval",
            "update_epochs",
            "batch_size",
            "evaluation_rounds",
            "num_envs",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.reward_mode not in ("paper", "utility"):
            raise ConfigurationError(
                f"reward_mode must be 'paper' or 'utility', got {self.reward_mode!r}"
            )

    @classmethod
    def paper(cls, *, seed: int = 0) -> "ExperimentConfig":
        """The paper's full Sec. V-A configuration."""
        return cls(seed=seed)

    @classmethod
    def quick(cls, *, seed: int = 0) -> "ExperimentConfig":
        """Reduced budget for benchmarks and CI (converges in seconds)."""
        return cls(
            num_episodes=120,
            rounds_per_episode=50,
            learning_rate=1e-3,
            gamma=0.0,
            reward_mode="utility",
            evaluation_rounds=50,
            seed=seed,
        )

    @classmethod
    def smoke(cls, *, seed: int = 0) -> "ExperimentConfig":
        """Tiny budget for unit tests (checks the plumbing, not quality)."""
        return cls(
            num_episodes=4,
            rounds_per_episode=10,
            update_interval=5,
            update_epochs=2,
            batch_size=5,
            learning_rate=1e-3,
            gamma=0.0,
            reward_mode="utility",
            evaluation_rounds=10,
            seed=seed,
        )

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """Same configuration, different seed."""
        return replace(self, seed=seed)

    def with_reward_mode(self, reward_mode: str) -> "ExperimentConfig":
        """Same configuration, different reward formulation."""
        return replace(self, reward_mode=reward_mode)

    def with_history_length(self, history_length: int) -> "ExperimentConfig":
        """Same configuration, different observation history ``L``."""
        return replace(self, history_length=history_length)

    def with_num_envs(self, num_envs: int) -> "ExperimentConfig":
        """Same configuration, different env-batch width ``E``."""
        return replace(self, num_envs=num_envs)
