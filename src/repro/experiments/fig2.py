"""Experiment E1/E2 — Fig. 2: convergence of the DRL incentive mechanism.

Setting (paper Sec. V-B): two VMUs with α1 = α2 = 5, D1 = 200 MB,
D2 = 100 MB, cost C = 5. Fig. 2(a) plots the episode return converging to
the maximum round count K; Fig. 2(b) plots the MSP utility converging to
the Stackelberg-equilibrium utility.

Training runs through the batched simulation engine (:mod:`repro.sim`):
``config.num_envs`` widens the env-batch axis, in which case the series
carry ``num_envs`` episode entries per training iteration (env order).
The equilibrium reference line (Fig. 2(b)'s dashed optimum) comes from the
stacked equilibrium solver — ``market.equilibrium()`` is the ``M = 1``
case of :meth:`repro.core.marketstack.MarketStack.equilibria_stacked`, and
the memoised solve is shared with the oracle baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stackelberg import StackelbergMarket
from repro.experiments import api
from repro.experiments.api import CONFIG_PARAMS, MARKET_PARAM, ExperimentPlan
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import train_drl
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    config_to_payload,
    market_to_payload,
)
from repro.utils.tables import Table

__all__ = ["Fig2Result", "run_fig2", "FIG2"]


@dataclass
class Fig2Result:
    """Series behind Fig. 2(a) and Fig. 2(b)."""

    episode_returns: list[float]
    episode_best_utilities: list[float]
    equilibrium_utility: float
    equilibrium_price: float
    max_round: int

    @property
    def converged_return(self) -> float:
        """Mean episode return over the final 10% of training."""
        count = max(1, len(self.episode_returns) // 10)
        return float(np.mean(self.episode_returns[-count:]))

    @property
    def converged_utility(self) -> float:
        """Mean episode-best MSP utility over the final 10% of training."""
        count = max(1, len(self.episode_best_utilities) // 10)
        return float(np.mean(self.episode_best_utilities[-count:]))

    @property
    def utility_gap(self) -> float:
        """Relative gap between converged and equilibrium MSP utility."""
        return abs(self.converged_utility - self.equilibrium_utility) / abs(
            self.equilibrium_utility
        )

    def table(self, *, stride: int | None = None) -> Table:
        """The Fig. 2 series as a printable table (one row per episode,
        or every ``stride`` episodes)."""
        stride = stride or max(1, len(self.episode_returns) // 10)
        table = Table(
            headers=("episode", "return", "best_msp_utility", "equilibrium_utility"),
            title=(
                "Fig. 2 — DRL convergence "
                f"(K={self.max_round}, equilibrium p*={self.equilibrium_price:.2f})"
            ),
        )
        for episode in range(0, len(self.episode_returns), stride):
            table.add_row(
                episode,
                self.episode_returns[episode],
                self.episode_best_utilities[episode],
                self.equilibrium_utility,
            )
        table.add_row(
            len(self.episode_returns) - 1,
            self.episode_returns[-1],
            self.episode_best_utilities[-1],
            self.equilibrium_utility,
        )
        return table


def _result(
    market: StackelbergMarket,
    config: ExperimentConfig,
    episode_returns: list[float],
    episode_best_utilities: list[float],
) -> Fig2Result:
    equilibrium = market.equilibrium()
    return Fig2Result(
        episode_returns=episode_returns,
        episode_best_utilities=episode_best_utilities,
        equilibrium_utility=equilibrium.msp_utility,
        equilibrium_price=equilibrium.price,
        max_round=config.rounds_per_episode,
    )


def _plan(params) -> ExperimentPlan:
    config = api.resolve_config(params)
    market = api.resolve_market(params)
    job = Job(
        "training_run",
        {
            "market": market_to_payload(market),
            "config": config_to_payload(config),
            "evaluate": False,
        },
    )
    return ExperimentPlan(
        "fig2",
        dict(params),
        [job],
        context={"market": market, "config": config},
    )


def _assemble(plan: ExperimentPlan, results: list) -> Fig2Result:
    series = results[0]
    return _result(
        plan.context["market"],
        plan.context["config"],
        [float(v) for v in series["episode_returns"]],
        [float(v) for v in series["episode_best_utilities"]],
    )


def _direct(params) -> Fig2Result:
    config = api.resolve_config(params)
    market = api.resolve_market(params)
    trained = train_drl(market, config)
    return _result(
        market,
        config,
        list(trained.training.episode_returns),
        list(trained.training.episode_best_utilities),
    )


FIG2 = api.register(
    api.ExperimentSpec(
        name="fig2",
        description=(
            "Fig. 2 — DRL convergence of the incentive mechanism on the "
            "paper's 2-VMU market (episode return and best MSP utility "
            "series vs the Stackelberg equilibrium)"
        ),
        params=(*CONFIG_PARAMS, MARKET_PARAM),
        result_type=Fig2Result,
        plan=_plan,
        assemble=_assemble,
        direct=_direct,
    )
)


def run_fig2(
    config: ExperimentConfig | None = None,
    *,
    market: StackelbergMarket | None = None,
    scheduler: JobScheduler | None = None,
) -> Fig2Result:
    """Train the DRL mechanism on the Fig. 2 market and collect the series.

    Thin shim over :func:`repro.experiments.api.run_experiment` with the
    ``fig2`` spec; with ``scheduler``, the training runs as one
    ``training_run`` job (cached, resumable, bitwise-equal).
    """
    return api.run_experiment(
        FIG2, {"config": config, "market": market}, scheduler=scheduler
    )
