"""Declarative experiment specs: one registry, one entry point.

Every experiment in this package — the paper figures (Fig. 2 convergence,
the Fig. 3 cost/VMU sweeps), the robustness sweeps, the ablations, the
welfare analysis, and the multi-seed comparison — is registered here as an
:class:`ExperimentSpec`:

- a **name** and a **typed parameter schema** (:class:`ParamSpec` entries
  with a JSON codec, so a spec invocation serialises for the CLI and for
  cross-machine wire formats);
- a ``plan()`` that compiles the validated parameters into
  :class:`~repro.experiments.scheduler.Job`s for the experiment scheduler
  (decomposing per seed / per market point / per grid cell);
- an ``assemble()`` that merges the job results back into the experiment's
  result dataclass;
- an optional ``direct()`` fast path used when no scheduler is supplied
  (e.g. the stacked equilibrium solve over a whole sweep grid). The two
  paths are **bitwise-equal** by contract — floats survive the JSON job
  wire exactly — which is pinned by ``tests/test_experiments_api.py``.

:func:`run_experiment` is the one entry point; the historical ``run_*``
functions are thin shims over it. :func:`schedule` compiles a spec into an
:class:`ExperimentPlan` without executing it — the plan's job specs are the
``[{"kind", "payload"}]`` wire format the ``schedule`` CLI subcommand (and
the planned remote backend) consumes.

Result payload round-trips are generated uniformly for every registered
result type from its dataclass type hints: :func:`result_to_payload` /
:func:`result_from_payload` turn any result into a JSON-able dict and back,
bitwise — so ``save_json``/``load_json`` persistence works for every
experiment, not just the multiseed comparison.

Unknown parameter keys are rejected with a
:class:`~repro.errors.ConfigurationError` naming the key — a typo'd kwarg
can never silently fall back to a default.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import types
import typing
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.fading import (
    FadingModel,
    LogNormalShadowing,
    NoFading,
    RayleighFading,
    RicianFading,
)
from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import paper_fig2_population
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scheduler import (
    Job,
    JobScheduler,
    SchedulerLike,
    config_from_payload,
    config_to_payload,
    execute_job,
    market_from_payload,
    market_to_payload,
)
from repro.utils.serialization import to_jsonable

__all__ = [
    "ParamSpec",
    "ExperimentPlan",
    "ExperimentSpec",
    "register",
    "get_experiment",
    "experiment_names",
    "run_experiment",
    "schedule",
    "result_to_payload",
    "result_from_payload",
    "resolve_config",
    "resolve_market",
    "CHUNK_PARAMS",
    "CONFIG_PARAMS",
    "MARKET_PARAM",
    "parse_int_tuple",
    "parse_float_tuple",
    "parse_str_tuple",
]


# ---------------------------------------------------------------------- #
# parameter types — each a (coerce, parse, encode, decode) bundle
# ---------------------------------------------------------------------- #
def parse_int_tuple(text: str) -> tuple[int, ...]:
    """``"0,1,2"`` → ``(0, 1, 2)`` (the one seed-list parser, shared with
    the CLI's ``--seeds`` flag)."""
    return tuple(int(part) for part in text.split(",") if part.strip())


def parse_float_tuple(text: str) -> tuple[float, ...]:
    """``"5,7.5,9"`` → ``(5.0, 7.5, 9.0)``."""
    return tuple(float(part) for part in text.split(",") if part.strip())


def parse_str_tuple(text: str) -> tuple[str, ...]:
    """``"drl,random"`` → ``("drl", "random")``."""
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "1", "yes", "on"):
        return True
    if lowered in ("false", "0", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {text!r}")


def _identity(value: object) -> object:
    return value


def _optional(function: Callable) -> Callable:
    def convert(value: object) -> object:
        return None if value is None else function(value)

    return convert


def _parse_optional(function: Callable[[str], object]) -> Callable[[str], object]:
    def parse(text: str) -> object:
        return None if text.strip().lower() in ("", "none") else function(text)

    return parse


def _coerce_config(value: object) -> ExperimentConfig | None:
    if value is None or isinstance(value, ExperimentConfig):
        return value
    if isinstance(value, Mapping):
        return config_from_payload(value)
    raise ValueError(
        f"expected an ExperimentConfig or its payload dict, got "
        f"{type(value).__name__}"
    )


def _coerce_market(value: object) -> StackelbergMarket | None:
    if value is None or isinstance(value, StackelbergMarket):
        return value
    if isinstance(value, Mapping):
        return market_from_payload(value)
    raise ValueError(
        f"expected a StackelbergMarket or its payload dict, got "
        f"{type(value).__name__}"
    )


# "nofading", not "none": for optional params the CLI text "none" means
# "unset, use the default" before any model lookup happens.
_FADING_MODELS: dict[str, type] = {
    "nofading": NoFading,
    "rayleigh": RayleighFading,
    "rician": RicianFading,
    "shadowing": LogNormalShadowing,
}
_FADING_NAMES = {cls: name for name, cls in _FADING_MODELS.items()}


def _coerce_fading(value: object) -> FadingModel | None:
    if value is None or isinstance(value, FadingModel):
        return value
    if isinstance(value, str):
        text = value.strip()
        if text.startswith("{"):
            # Parameterised models arrive as their JSON payload, e.g.
            # '{"model": "rician", "k_factor": 3}'.
            return _decode_fading(json.loads(text))
        cls = _FADING_MODELS.get(text.lower())
        if cls is None:
            raise ValueError(
                f"unknown fading model {value!r}; known models: "
                f"{sorted(_FADING_MODELS)}"
            )
        try:
            return cls()
        except TypeError as exc:
            raise ValueError(
                f"fading model {text!r} needs parameters — pass its JSON "
                f'payload instead, e.g. {{"model": "{text.lower()}", '
                f'...}}: {exc}'
            ) from exc
    if isinstance(value, Mapping):
        return _decode_fading(value)
    raise ValueError(
        f"expected a FadingModel, model name, or payload dict, got "
        f"{type(value).__name__}"
    )


def _encode_fading(value: FadingModel | None) -> object:
    if value is None:
        return None
    name = _FADING_NAMES.get(type(value))
    if name is None:
        raise ExperimentError(
            f"cannot serialise fading model {type(value).__name__} into a "
            "parameter payload; use one of the named models "
            f"({sorted(_FADING_MODELS)}) on the wire"
        )
    return {"model": name, **dataclasses.asdict(value)}


def _decode_fading(payload: object) -> FadingModel | None:
    if payload is None:
        return None
    if isinstance(payload, str):
        return _coerce_fading(payload)
    if not isinstance(payload, Mapping):
        raise ValueError("fading payload must be a mapping or model name")
    cls = _FADING_MODELS.get(str(payload.get("model", "")).lower())
    if cls is None:
        raise ValueError(f"unknown fading model {payload.get('model')!r}")
    kwargs = {str(k): v for k, v in payload.items() if k != "model"}
    return cls(**kwargs)


def _coerce_seed(value: object) -> object:
    # SeedLike: ints pass through coerced; rich seeds (np.random.Generator)
    # are accepted verbatim for API callers but cannot ride the JSON wire.
    if isinstance(value, bool):
        raise ValueError("a seed must be an integer, not a boolean")
    if isinstance(value, int):
        return value
    return value


@dataclass(frozen=True)
class _ParamType:
    """One parameter type: python coercion, CLI parsing, JSON codec."""

    name: str
    coerce: Callable
    parse: Callable[[str], object]
    encode: Callable
    decode: Callable


def _tuple_of(function: Callable) -> Callable:
    def convert(value: object) -> tuple:
        if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
            raise ValueError(
                f"expected a sequence, got {type(value).__name__}"
            )
        return tuple(function(v) for v in value)

    return convert


PARAM_TYPES: dict[str, _ParamType] = {
    kind.name: kind
    for kind in (
        _ParamType("int", int, int, int, int),
        _ParamType("float", float, float, float, float),
        _ParamType("str", str, str, str, str),
        _ParamType("bool", bool, _parse_bool, bool, bool),
        _ParamType(
            "int?", _optional(int), _parse_optional(int), _optional(int),
            _optional(int),
        ),
        _ParamType(
            "float?", _optional(float), _parse_optional(float),
            _optional(float), _optional(float),
        ),
        _ParamType(
            "str?", _optional(str), _parse_optional(str), _optional(str),
            _optional(str),
        ),
        _ParamType(
            "ints", _tuple_of(int), parse_int_tuple, list, _tuple_of(int)
        ),
        _ParamType(
            "floats", _tuple_of(float), parse_float_tuple, list,
            _tuple_of(float),
        ),
        _ParamType(
            "strs", _tuple_of(str), parse_str_tuple, list, _tuple_of(str)
        ),
        _ParamType(
            "config?",
            _coerce_config,
            _parse_optional(lambda text: _coerce_config(json.loads(text))),
            _optional(config_to_payload),
            _coerce_config,
        ),
        _ParamType(
            "market?",
            _coerce_market,
            _parse_optional(lambda text: _coerce_market(json.loads(text))),
            _optional(market_to_payload),
            _coerce_market,
        ),
        _ParamType(
            "fading?",
            _coerce_fading,
            _parse_optional(_coerce_fading),
            _encode_fading,
            _decode_fading,
        ),
        _ParamType("seed", _coerce_seed, int, _identity, _identity),
    )
}


@dataclass(frozen=True)
class ParamSpec:
    """One typed experiment parameter: name, type, default, help text."""

    name: str
    type: str
    default: object = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.type not in PARAM_TYPES:
            raise ConfigurationError(
                f"parameter {self.name!r} has unknown type {self.type!r}; "
                f"known types: {sorted(PARAM_TYPES)}"
            )

    def _kind(self) -> _ParamType:
        return PARAM_TYPES[self.type]

    def coerce(self, value: object) -> object:
        """Coerce a Python value (e.g. a shim kwarg) onto this type."""
        try:
            return self._kind().coerce(value)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid value for parameter {self.name!r}: {exc}"
            ) from exc

    def parse(self, text: str) -> object:
        """Parse a CLI ``--param {self.name}=<text>`` value."""
        try:
            return self._kind().parse(text)
        except (TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot parse {text!r} as parameter {self.name!r} "
                f"(type {self.type}): {exc}"
            ) from exc

    def encode(self, value: object) -> object:
        """The JSON wire form of a value of this parameter."""
        return self._kind().encode(value)

    def decode(self, payload: object) -> object:
        """Rebuild a value from its JSON wire form."""
        try:
            return self._kind().decode(payload)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid payload for parameter {self.name!r}: {exc}"
            ) from exc


# ---------------------------------------------------------------------- #
# shared parameter groups
# ---------------------------------------------------------------------- #
CONFIG_PARAMS: tuple[ParamSpec, ...] = (
    ParamSpec("preset", "str", "quick", "ExperimentConfig preset: quick | paper | smoke"),
    ParamSpec("seed", "int?", None, "override the config's RNG seed"),
    ParamSpec("episodes", "int?", None, "override the config's num_episodes"),
    ParamSpec("rounds", "int?", None, "override the config's rounds_per_episode"),
    ParamSpec("num_envs", "int?", None, "override the engine's env-batch width E"),
    ParamSpec("config", "config?", None, "full ExperimentConfig payload (wins over preset)"),
)
"""The training-budget parameters shared by every DRL-training experiment."""

MARKET_PARAM = ParamSpec(
    "market", "market?", None,
    "market payload (default: the paper's 2-VMU Fig. 2 market)",
)

CHUNK_PARAMS: tuple[ParamSpec, ...] = (
    ParamSpec(
        "chunk_size", "int?", None,
        "markets per chunk of the stacked solve (wins over chunk_bytes)",
    ),
    ParamSpec(
        "chunk_bytes", "int?", None,
        "scratch-memory budget per solve chunk in bytes (default 64 MiB)",
    ),
)
"""The memory-bounding knobs of every stacked-solve experiment: forwarded
to :meth:`repro.core.marketstack.MarketStack.equilibria_stacked_chunked`,
which is bitwise-equal to the unchunked solve at every setting."""

_PRESETS: dict[str, Callable[..., ExperimentConfig]] = {
    "quick": ExperimentConfig.quick,
    "paper": ExperimentConfig.paper,
    "smoke": ExperimentConfig.smoke,
}


def resolve_config(params: Mapping) -> ExperimentConfig:
    """The :class:`ExperimentConfig` a validated parameter dict describes.

    ``config`` (a full payload/instance) wins over ``preset``; ``seed`` /
    ``episodes`` / ``rounds`` / ``num_envs``, when set, override the
    resolved config field-wise.
    """
    config = params.get("config")
    seed = params.get("seed")
    if config is None:
        preset = str(params.get("preset", "quick"))
        factory = _PRESETS.get(preset)
        if factory is None:
            raise ConfigurationError(
                f"unknown preset {preset!r}; known presets: {sorted(_PRESETS)}"
            )
        config = factory(seed=seed if seed is not None else 0)
    elif seed is not None:
        config = config.with_seed(seed)
    if params.get("episodes") is not None:
        config = replace(config, num_episodes=int(params["episodes"]))
    if params.get("rounds") is not None:
        config = replace(config, rounds_per_episode=int(params["rounds"]))
    if params.get("num_envs") is not None:
        config = config.with_num_envs(int(params["num_envs"]))
    return config


def resolve_market(params: Mapping) -> StackelbergMarket:
    """The market a validated parameter dict describes (default: paper's)."""
    market = params.get("market")
    if market is None:
        return StackelbergMarket(paper_fig2_population())
    return market


# ---------------------------------------------------------------------- #
# plans and specs
# ---------------------------------------------------------------------- #
@dataclass
class ExperimentPlan:
    """A spec compiled against concrete parameters: jobs + merge context.

    ``jobs`` is what a :class:`JobScheduler` (local or remote) executes;
    ``context`` carries whatever in-memory state ``assemble`` needs (the
    built market grid, job→slot maps, ...) and never rides the wire.
    """

    experiment: str
    params: dict
    jobs: list[Job]
    context: dict = field(default_factory=dict)

    def job_specs(self) -> list[dict]:
        """The plan's jobs in the ``[{"kind", "payload"}]`` wire form the
        ``schedule`` CLI subcommand executes."""
        return [job.spec() for job in self.jobs]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: schema + plan/assemble (+ fast path)."""

    name: str
    description: str
    params: tuple[ParamSpec, ...]
    result_type: type
    plan: Callable[[Mapping], ExperimentPlan]
    assemble: Callable[[ExperimentPlan, list], object]
    direct: Callable[[Mapping], object] | None = None
    render: Callable[[object], str] | None = None

    def param(self, name: str) -> ParamSpec:
        """The schema entry for ``name`` (unknown → ConfigurationError)."""
        for spec in self.params:
            if spec.name == name:
                return spec
        raise ConfigurationError(
            f"unknown parameter {name!r} for experiment {self.name!r}; "
            f"known parameters: {[p.name for p in self.params]}"
        )

    def validate(self, params: Mapping | None) -> dict:
        """Merge ``params`` over the schema defaults, coercing each value.

        Raises:
            ConfigurationError: on an unknown key (named in the message) or
                a value that does not coerce onto its declared type. A
                ``None`` value means "use the default".
        """
        params = dict(params or {})
        known = {spec.name for spec in self.params}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown parameter{'s' if len(unknown) > 1 else ''} "
                f"{', '.join(repr(k) for k in unknown)} for experiment "
                f"{self.name!r}; known parameters: {sorted(known)}"
            )
        validated = {}
        for spec in self.params:
            value = params.get(spec.name)
            validated[spec.name] = (
                spec.default if value is None else spec.coerce(value)
            )
        return validated

    def params_to_payload(self, params: Mapping) -> dict:
        """A validated parameter dict as its JSON wire form."""
        validated = self.validate(params)
        return {
            spec.name: spec.encode(validated[spec.name])
            for spec in self.params
        }

    def params_from_payload(self, payload: Mapping) -> dict:
        """Rebuild (and validate) a parameter dict from its wire form."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"parameter payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        decoded = {}
        for key, value in payload.items():
            decoded[str(key)] = self.param(str(key)).decode(value)
        return self.validate(decoded)

    def result_to_payload(self, result: object) -> dict:
        """``result`` as a JSON-able dict (uniform dataclass codec)."""
        if not isinstance(result, self.result_type):
            raise ExperimentError(
                f"experiment {self.name!r} results are "
                f"{self.result_type.__name__}, got {type(result).__name__}"
            )
        return result_to_payload(result)

    def result_from_payload(self, payload: Mapping) -> object:
        """Rebuild this experiment's result dataclass from its payload."""
        return result_from_payload(self.result_type, payload)

    def render_result(self, result: object) -> str:
        """Human-readable form of ``result`` (tables, for the CLI)."""
        if self.render is not None:
            return self.render(result)
        return str(result.table())


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec`` (module import time); returns it for assignment."""
    if spec.name in _REGISTRY:
        raise ExperimentError(
            f"experiment {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_registered() -> None:
    # Registration happens when the experiment modules import; importing
    # the package pulls them all in. Importing any submodule first imports
    # the package, so in practice the registry is already populated — this
    # is a guard for exotic import orders.
    if not _REGISTRY:
        importlib.import_module("repro.experiments")


def get_experiment(name: str) -> ExperimentSpec:
    """The registered spec called ``name``."""
    _ensure_registered()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered experiments: "
            f"{experiment_names()}"
        )
    return spec


def experiment_names() -> list[str]:
    """Sorted names of every registered experiment."""
    _ensure_registered()
    return sorted(_REGISTRY)


def _resolve_spec(experiment: str | ExperimentSpec) -> ExperimentSpec:
    if isinstance(experiment, ExperimentSpec):
        return experiment
    return get_experiment(str(experiment))


# ---------------------------------------------------------------------- #
# entry points
# ---------------------------------------------------------------------- #
def run_experiment(
    experiment: str | ExperimentSpec,
    params: Mapping | None = None,
    *,
    scheduler: SchedulerLike | None = None,
):
    """Run one registered experiment; returns its result dataclass.

    With ``scheduler`` — anything satisfying the
    :class:`~repro.experiments.scheduler.SchedulerLike` contract: a
    :class:`JobScheduler` (process fan-out + per-job result caching under
    its cache dir) or a :class:`repro.queue.QueueScheduler` (the same jobs
    batch-run against a shared queue directory and content-addressed
    artifact store, drainable by worker fleets on other machines) — the
    spec's ``plan()`` compiles the run into jobs executed through it, with
    caching and kill-resume for free, for **every** experiment. Without
    one, the spec's ``direct()`` fast path (stacked solves, sequential
    loops) runs in-process; specs without a fast path execute their plan
    in-process. All paths return bitwise-equal results.

    Specs with a ``shards`` parameter (multiseed) fan out per shard: when
    a scheduler is supplied and ``shards`` is unset, it defaults to the
    scheduler's worker count so ``--workers N`` actually yields ``N``
    jobs (the same defaulting the ``run_multiseed_comparison`` shim
    applies).

    Raises:
        ConfigurationError: on an unknown experiment, an unknown parameter
            key (named in the message), or an ill-typed parameter value.
    """
    spec = _resolve_spec(experiment)
    params = dict(params or {})
    if (
        scheduler is not None
        and params.get("shards") is None
        and any(p.name == "shards" for p in spec.params)
    ):
        params["shards"] = scheduler.workers
    validated = spec.validate(params)
    if scheduler is None and spec.direct is not None:
        return spec.direct(validated)
    plan = spec.plan(validated)
    if scheduler is None:
        results = [execute_job(job) for job in plan.jobs]
    else:
        results = scheduler.run(plan.jobs)
    return spec.assemble(plan, results)


def schedule(
    experiment: str | ExperimentSpec, params: Mapping | None = None
) -> ExperimentPlan:
    """Compile an experiment into its :class:`ExperimentPlan` without
    executing it.

    The plan's :meth:`ExperimentPlan.job_specs` are the JSON wire format
    the ``schedule`` CLI subcommand (and a remote scheduler backend)
    executes; :meth:`ExperimentSpec.validate` has already rejected unknown
    or ill-typed parameters by the time the plan exists.
    """
    spec = _resolve_spec(experiment)
    return spec.plan(spec.validate(params))


# ---------------------------------------------------------------------- #
# uniform result payload codec (type-hint driven)
# ---------------------------------------------------------------------- #
def result_to_payload(result: object) -> dict:
    """Any registered result dataclass as a JSON-able dict.

    The encoding is uniform — field name → encoded value, recursing into
    nested dataclasses, mappings, and sequences — and floats survive the
    JSON round trip exactly, so :func:`result_from_payload` rebuilds an
    ``==``-equal result (``save_json``/``load_json`` persistence for every
    experiment).
    """
    if not dataclasses.is_dataclass(result) or isinstance(result, type):
        raise ExperimentError(
            f"expected a result dataclass instance, got "
            f"{type(result).__name__}"
        )
    return {
        f.name: _encode_value(getattr(result, f.name))
        for f in dataclasses.fields(result)
    }


def _encode_value(value: object) -> object:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): _encode_value(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return to_jsonable(value)


def result_from_payload(result_type: type, payload: Mapping):
    """Rebuild a result dataclass from :func:`result_to_payload`'s dict.

    Decoding is driven by the dataclass's type hints (``list[float]``,
    ``dict[float, dict[str, PolicyEvaluation]]``, nested dataclasses,
    fixed and variadic tuples), so every registered result type round-trips
    without bespoke ``from_payload`` code.

    Raises:
        ExperimentError: if the payload is not a mapping, has missing or
            unexpected keys, or a value does not fit its declared type.
    """
    return _decode_dataclass(result_type, payload)


def _decode_dataclass(cls: type, payload: object):
    if not isinstance(payload, Mapping):
        raise ExperimentError(
            f"{cls.__name__} payload must be a mapping, got "
            f"{type(payload).__name__}"
        )
    hints = typing.get_type_hints(cls)
    expected = {f.name for f in dataclasses.fields(cls)}
    missing = sorted(expected - set(payload))
    unexpected = sorted(set(payload) - expected)
    if missing or unexpected:
        raise ExperimentError(
            f"{cls.__name__} payload fields mismatch: missing={missing}, "
            f"unexpected={unexpected}"
        )
    kwargs = {
        name: _decode_value(hints[name], payload[name]) for name in expected
    }
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(
            f"cannot rebuild {cls.__name__} from payload: {exc}"
        ) from exc


def _decode_key(hint: type, key: str):
    if hint is int:
        return int(key)
    if hint is float:
        return float(key)
    return str(key)


def _decode_value(hint, value):
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is typing.Union or origin is types.UnionType:
        non_none = [a for a in args if a is not type(None)]
        if value is None and len(non_none) < len(args):
            return None
        if len(non_none) == 1:
            return _decode_value(non_none[0], value)
        return value
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        return _decode_dataclass(hint, value)
    if hint is np.ndarray:
        # Float arrays only: `to_jsonable` encoded the array as (nested)
        # lists of floats, which survive JSON exactly, so the rebuilt
        # array is bitwise-equal element for element.
        return np.asarray(value, dtype=float)
    if origin in (list, typing.List):
        item = args[0] if args else object
        return [_decode_value(item, v) for v in _expect_sequence(hint, value)]
    if origin in (tuple, typing.Tuple):
        values = _expect_sequence(hint, value)
        if not args or (len(args) == 2 and args[1] is Ellipsis):
            item = args[0] if args else object
            return tuple(_decode_value(item, v) for v in values)
        if len(values) != len(args):
            raise ExperimentError(
                f"expected a {len(args)}-tuple, got {len(values)} values"
            )
        return tuple(_decode_value(a, v) for a, v in zip(args, values))
    if origin in (dict, typing.Dict):
        key_hint, value_hint = args if args else (str, object)
        if not isinstance(value, Mapping):
            raise ExperimentError(
                f"expected a mapping, got {type(value).__name__}"
            )
        return {
            _decode_key(key_hint, str(k)): _decode_value(value_hint, v)
            for k, v in value.items()
        }
    if hint is float:
        return float(value)
    if hint is bool:
        return bool(value)
    if hint is int:
        return int(value)
    if hint is str:
        return str(value)
    return value


def _expect_sequence(hint, value):
    if isinstance(value, (str, bytes)) or not isinstance(
        value, (list, tuple)
    ):
        raise ExperimentError(
            f"expected a sequence for {hint!r}, got {type(value).__name__}"
        )
    return value
