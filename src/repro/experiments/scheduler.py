"""Async experiment scheduler: serializable jobs, pooled workers, disk cache.

The paper's headline results are embarrassingly parallel collections of
independent work units — one seed of a multi-seed comparison, one market
point of a Fig. 3 sweep, one robustness grid cell, one DRL training. This
module gives every such unit one shape: a :class:`Job`, a *pure-function
spec* naming a registered job kind plus a JSON-able payload, executed by a
:class:`JobScheduler` that fans jobs over a process pool and caches every
result on disk keyed by a stable job hash. Interrupted runs **resume**
instead of recompute, and the JSON wire format (the same
``to_payload``/``from_payload`` contract the multiseed shards ship) makes
the queue serializable for cross-machine fan-out.

Job-spec contract
-----------------
A job spec is ``{"kind": <registered name>, "payload": <JSON-able dict>}``.
The payload must be JSON-able (:func:`repro.utils.serialization.to_jsonable`
is applied, so numpy scalars and tuples are fine) and, together with the
kind, must *fully determine* the result — job functions are pure: no
hidden state, no ambient configuration, randomness only from seeds inside
the payload. That purity is what makes the cache sound.

Hash stability
--------------
``Job.job_hash()`` is the SHA-256 of the canonical JSON encoding of the
spec (keys sorted, compact separators). JSON round-trips floats exactly
(``repr``-based), so the hash — and therefore the cache key — is stable
across processes, machines, and interpreter restarts. Anything that should
*not* share a cache entry (a checkpoint target path, a different seed) must
be in the payload; anything that should (wall-clock, worker count) must
not be.

Cache layout and resume semantics
---------------------------------
With ``cache_dir`` set, each finished job writes
``<cache_dir>/<job_hash>.json`` containing ``{"job": spec, "result":
payload}`` (written atomically: temp file + rename). DRL jobs additionally
hand their trained agent home as ``<cache_dir>/checkpoints/<hash>.npz``
via :func:`repro.drl.checkpoints.save_agent`. On a later run with
``resume=True`` (default), a job whose cache file exists — and whose
recorded spec matches, guarding against hash collisions and stale files —
is served from disk without touching a worker; a corrupt or truncated file
is treated as a miss and recomputed. ``resume=False`` ignores and
overwrites existing entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import uuid
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.channel.link import LinkBudget, RsuLink
from repro.channel.pathloss import FreeSpacePathLoss, LogDistancePathLoss
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.vmu import VmuProfile
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.utils.serialization import load_json, to_jsonable

__all__ = [
    "ARTIFACT_DIR_KEY",
    "MISSING_RESULT",
    "Job",
    "JobScheduler",
    "SchedulerLike",
    "register_job_kind",
    "job_function",
    "execute_job",
    "execute_spec",
    "write_result_entry",
    "read_result_entry",
    "market_to_payload",
    "market_from_payload",
    "config_to_payload",
    "config_from_payload",
]

ARTIFACT_DIR_KEY = "__artifact_dir__"
"""Reserved payload key the scheduler injects at *execution* time.

It carries the scheduler's cache directory so job functions can park
artifacts (e.g. DRL checkpoints) next to the result cache. It is injected
into the payload dict handed to the job function only — never into the
job's spec — so it does not participate in :meth:`Job.job_hash` and a
cache written under one directory spelling resumes under any other.
"""

# Built-in job kinds resolve lazily by dotted path so worker processes can
# import them without this module importing the (higher-level) modules that
# define them — the registry stays cycle-free and pickles as plain strings.
_BUILTIN_JOB_KINDS: dict[str, str] = {
    "multiseed_shard": "repro.experiments.multiseed:run_shard_job",
    "market_scheme": "repro.experiments.runner:run_market_scheme_job",
    "equilibrium_cell": "repro.experiments.scheduler:run_equilibrium_cell_job",
    "city_chunk": "repro.experiments.cityscale:run_city_chunk_job",
    "training_run": "repro.experiments.runner:run_training_job",
    "welfare_report": "repro.experiments.welfare:run_welfare_report_job",
    "pricing_service": "repro.experiments.pricing_service:run_pricing_service_job",
    "bayesian_pricing": "repro.experiments.bayesian:run_bayesian_pricing_job",
    "oligopoly_cell": "repro.experiments.price_of_anarchy:run_oligopoly_cell_job",
}

_REGISTERED_JOB_KINDS: dict[str, str | Callable[[Mapping], object]] = {}


def register_job_kind(
    name: str, function: str | Callable[[Mapping], object]
) -> None:
    """Register a new job kind.

    ``function`` is either a dotted path ``"package.module:callable"`` —
    the scheduler ships path registrations to its workers alongside each
    job, so these resolve regardless of the multiprocessing start
    method — or a callable, which is only reachable where the
    registering process's memory is (in-process execution and
    ``fork``-start workers).
    """
    if name in _BUILTIN_JOB_KINDS:
        raise ExperimentError(f"job kind {name!r} is built in")
    _REGISTERED_JOB_KINDS[name] = function


def _registered_paths() -> dict[str, str]:
    """The dotted-path registrations, shippable to worker processes."""
    return {
        name: function
        for name, function in _REGISTERED_JOB_KINDS.items()
        if isinstance(function, str)
    }


def _resolve_path(path: str) -> Callable[[Mapping], object]:
    module_name, _, attribute = path.partition(":")
    if not module_name or not attribute:
        raise ExperimentError(
            f"job-kind path must look like 'package.module:callable', "
            f"got {path!r}"
        )
    return getattr(importlib.import_module(module_name), attribute)


def job_function(kind: str) -> Callable[[Mapping], object]:
    """The pure function executing one job of ``kind`` (payload → result)."""
    registered = _REGISTERED_JOB_KINDS.get(kind)
    if registered is not None:
        return _resolve_path(registered) if isinstance(registered, str) else registered
    path = _BUILTIN_JOB_KINDS.get(kind)
    if path is None:
        raise ExperimentError(
            f"unknown job kind {kind!r}; known kinds: "
            f"{sorted((*_BUILTIN_JOB_KINDS, *_REGISTERED_JOB_KINDS))}"
        )
    return _resolve_path(path)


@dataclass(frozen=True)
class Job:
    """One schedulable experiment unit: a registered kind + JSON-able payload.

    Jobs are *pure-function specs*: ``job_function(kind)(payload)`` must be
    fully determined by the spec, so equal specs may share a cache entry.
    """

    kind: str
    payload: Mapping

    def spec(self) -> dict:
        """The JSON-able ``{"kind", "payload"}`` wire form of this job."""
        return {"kind": self.kind, "payload": to_jsonable(self.payload)}

    def job_hash(self) -> str:
        """Stable SHA-256 of the canonical (sorted, compact) spec JSON."""
        canonical = json.dumps(
            self.spec(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def from_spec(cls, spec: object) -> "Job":
        """Rebuild a job from its :meth:`spec` dict (e.g. a jobs-file entry).

        The spec must be exactly ``{"kind", "payload"}``: unknown keys are
        rejected rather than dropped, because a dropped key would change
        the job hash — the same bytes that enqueued would silently execute
        and cache under a different identity.
        """
        if not isinstance(spec, Mapping):
            raise ExperimentError(
                f"job spec must be a mapping, got {type(spec).__name__}"
            )
        unknown = sorted(set(map(str, spec)) - {"kind", "payload"})
        if unknown:
            raise ExperimentError(
                f"job spec has unknown key{'s' if len(unknown) > 1 else ''} "
                f"{unknown}; a spec is exactly {{'kind', 'payload'}}"
            )
        try:
            kind = spec["kind"]
            payload = spec["payload"]
        except KeyError as exc:
            raise ExperimentError(
                f"job spec is missing key {exc.args[0]!r}"
            ) from exc
        if not isinstance(payload, Mapping):
            raise ExperimentError("job spec 'payload' must be a mapping")
        return cls(kind=str(kind), payload=dict(payload))


def execute_job(job: Job, artifact_dir: str | Path | None = None) -> object:
    """Run one job in this process and return its JSON-able result.

    ``artifact_dir`` (the scheduler's cache dir) is injected into the
    payload under :data:`ARTIFACT_DIR_KEY` — execution context, never part
    of the spec or hash.
    """
    payload: Mapping = job.payload
    if artifact_dir is not None:
        payload = {**payload, ARTIFACT_DIR_KEY: str(artifact_dir)}
    return to_jsonable(job_function(job.kind)(payload))


def execute_spec(
    spec: Mapping,
    artifact_dir: str | None = None,
    registered_paths: Mapping | None = None,
) -> object:
    """Worker entry point: module-level so a process pool can pickle it.

    ``registered_paths`` replays the parent's dotted-path
    :func:`register_job_kind` calls, so those kinds resolve in workers
    under any multiprocessing start method.
    """
    if registered_paths:
        for name, path in registered_paths.items():
            _REGISTERED_JOB_KINDS.setdefault(str(name), str(path))
    return execute_job(Job.from_spec(spec), artifact_dir)


@runtime_checkable
class SchedulerLike(Protocol):
    """The contract ``run_experiment(..., scheduler=...)`` needs.

    :class:`JobScheduler` (process pool + cache) and
    :class:`repro.queue.QueueScheduler` (shared queue + artifact store)
    both satisfy it: execute a job batch returning result payloads in job
    order, expose ``workers`` (sizes shard-style plan fan-out) and the
    post-run ``cache_hits`` / ``jobs_executed`` accounting the CLI prints.
    """

    workers: int
    cache_hits: int
    jobs_executed: int

    def run(self, jobs: Sequence[Job]) -> list: ...


# ---------------------------------------------------------------------- #
# result-entry codec — the ``{"job", "result"}`` files shared by the
# scheduler cache and the queue subsystem's artifact store
# ---------------------------------------------------------------------- #
MISSING_RESULT = object()
"""Sentinel :func:`read_result_entry` returns for absent/corrupt entries."""


def write_result_entry(path: str | Path, job: Job, result: object) -> Path:
    """Atomically persist ``{"job": spec, "result": payload}`` at ``path``.

    Written through a *per-writer-unique* temporary name (pid + random
    suffix) so concurrent writers sharing a cache/store directory — two
    schedulers, a scheduler and a queue worker, two workers racing on the
    same at-least-once job — never clobber each other's half-written temp
    file, and ``fsync``-ed before the ``os.replace`` so a visible entry is
    always complete even across a crash or SIGKILL mid-write. Embedding
    the full job spec is the provenance contract: every stored result
    reloads and re-runs from its own metadata.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    entry = {"job": job.spec(), "result": to_jsonable(result)}
    temporary = target.with_name(
        f"{target.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    )
    try:
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, indent=2) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, target)
    finally:
        temporary.unlink(missing_ok=True)
    return target


def read_result_entry(path: str | Path, job: Job | None = None) -> object:
    """Load the result payload a :func:`write_result_entry` file holds.

    Returns :data:`MISSING_RESULT` for an absent, truncated, or otherwise
    unreadable entry (a killed writer's leftovers are a cache miss, not an
    error). With ``job`` given, the recorded spec must match it exactly;
    a mismatch raises :class:`ExperimentError` distinguishing the two ways
    a wrong spec can occupy a hash-named slot — a *foreign file* (the
    recorded spec does not even hash to this job's key: something else was
    dropped or copied into the directory) versus a genuine *hash
    collision* (same SHA-256, different spec) — and naming both the found
    and the expected job kinds.
    """
    source = Path(path)
    try:
        entry = load_json(source)
    except (json.JSONDecodeError, OSError):
        return MISSING_RESULT
    if not isinstance(entry, Mapping) or "result" not in entry:
        return MISSING_RESULT
    if job is not None and entry.get("job") != job.spec():
        recorded = entry.get("job")
        found_kind = (
            recorded.get("kind") if isinstance(recorded, Mapping) else None
        )
        try:
            collision = Job.from_spec(recorded).job_hash() == job.job_hash()
        except ExperimentError:
            collision = False
        reason = (
            "the recorded spec hashes to the same key — a SHA-256 "
            "collision between distinct specs"
            if collision
            else "the recorded spec does not hash to this entry's key — a "
            "foreign file is occupying the slot"
        )
        raise ExperimentError(
            f"cache entry {source} was written by a different job spec "
            f"(found kind {found_kind!r}, expected kind {job.kind!r}; "
            f"{reason}); clear the cache directory or use a fresh one"
        )
    return entry["result"]


class JobScheduler:
    """Executes :class:`Job` batches with pooling, caching, and resume.

    Attributes (after :meth:`run`):
        cache_hits: jobs served from the on-disk cache in the last run.
        jobs_executed: jobs actually executed in the last run (each unique
            spec runs at most once; duplicates share the result).
        job_sources: per-job provenance of the last run, aligned with the
            submitted batch: ``"cache"`` or ``"executed"``.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        resume: bool = True,
        job_timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if job_timeout is not None and job_timeout <= 0:
            raise ExperimentError(
                f"job_timeout must be > 0 seconds, got {job_timeout}"
            )
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.resume = resume
        self.job_timeout = job_timeout
        self.cache_hits = 0
        self.jobs_executed = 0
        self.job_sources: list[str] = []

    # ------------------------------------------------------------------ #
    # cache
    # ------------------------------------------------------------------ #
    def cache_path(self, job: Job) -> Path | None:
        """Where ``job``'s result lives on disk (None without a cache dir)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{job.job_hash()}.json"

    def checkpoint_path(self, job: Job) -> Path | None:
        """Where ``job`` should park a model artifact (None without cache)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "checkpoints" / f"{job.job_hash()}.npz"

    _MISS = MISSING_RESULT

    def _load_cached(self, job: Job) -> object:
        path = self.cache_path(job)
        if path is None or not self.resume or not path.exists():
            return self._MISS
        # A truncated file from a killed run is a miss, not an error —
        # the job simply recomputes and overwrites it. A spec mismatch is
        # a hard error (read_result_entry distinguishes foreign files from
        # hash collisions in its message).
        return read_result_entry(path, job)

    def _store(self, job: Job, result: object) -> None:
        path = self.cache_path(job)
        if path is None:
            return
        # Unique-temp-name + fsync atomic write: schedulers and queue
        # workers sharing one cache directory never trample each other's
        # in-flight writes, and kill-resume never sees a torn entry.
        write_result_entry(path, job, result)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[Job]) -> list:
        """Execute ``jobs``; returns their result payloads in job order.

        Cached jobs are served from disk without touching a worker; the
        rest run through a :class:`ProcessPoolExecutor` when ``workers > 1``
        (in-process otherwise), each result persisted as soon as it lands
        so a killed run resumes from everything that finished.
        """
        jobs = list(jobs)
        self.cache_hits = 0
        self.jobs_executed = 0
        self.job_sources = ["cache"] * len(jobs)
        results: list = [None] * len(jobs)
        pending: dict[str, list[int]] = {}  # hash → indices sharing the spec
        pending_jobs: dict[str, Job] = {}
        for index, job in enumerate(jobs):
            key = job.job_hash()
            if key in pending:
                pending[key].append(index)
                self.job_sources[index] = "executed"
                continue
            cached = self._load_cached(job)
            if cached is not self._MISS:
                results[index] = cached
                self.cache_hits += 1
            else:
                pending[key] = [index]
                pending_jobs[key] = job
                self.job_sources[index] = "executed"
        if pending:
            self._execute_pending(pending_jobs, pending, results)
            self.jobs_executed = len(pending)
        return results

    def _execute_pending(
        self,
        pending_jobs: dict[str, Job],
        pending: dict[str, list[int]],
        results: list,
    ) -> None:
        def finish(key: str, result: object) -> None:
            self._store(pending_jobs[key], result)
            for index in pending[key]:
                results[index] = result

        artifact_dir = (
            str(self.cache_dir) if self.cache_dir is not None else None
        )
        # job_timeout forces the pool path even for a single worker/job —
        # the in-process shortcut has no way to interrupt a hung job, and
        # a hang guard that silently does not guard is worse than none.
        if self.job_timeout is None and (
            self.workers == 1 or len(pending_jobs) == 1
        ):
            for key, job in pending_jobs.items():
                finish(key, execute_job(job, artifact_dir))
            return
        max_workers = min(self.workers, len(pending_jobs))
        registered_paths = _registered_paths()
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    execute_spec, job.spec(), artifact_dir, registered_paths
                ): key
                for key, job in pending_jobs.items()
            }
            remaining = set(futures)
            try:
                while remaining:
                    done, remaining = wait(
                        remaining,
                        timeout=self.job_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # A hung worker pool must fail fast, not stall the
                        # run; skip the executor's join so the error
                        # surfaces immediately (workers are orphaned).
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise ExperimentError(
                            f"no job finished within job_timeout="
                            f"{self.job_timeout}s; "
                            f"{len(remaining)} job(s) still outstanding"
                        )
                    for future in done:
                        finish(futures[future], future.result())
            except Exception:
                pool.shutdown(wait=False, cancel_futures=True)
                raise


# ---------------------------------------------------------------------- #
# payload codecs — the JSON wire forms of the objects jobs carry
# ---------------------------------------------------------------------- #
def market_to_payload(market: StackelbergMarket) -> dict:
    """A :class:`StackelbergMarket` as a JSON-able dict.

    Floats survive JSON exactly (``repr`` round-trip), so a market rebuilt
    by :func:`market_from_payload` — possibly in a worker on another
    machine — computes bitwise-identical outcomes.
    """
    budget = market.link.budget
    path_loss = budget.path_loss
    if isinstance(path_loss, LogDistancePathLoss):
        path_loss_payload = {
            "model": "log_distance",
            "reference_gain": path_loss.reference_gain,
            "exponent": path_loss.exponent,
        }
    elif isinstance(path_loss, FreeSpacePathLoss):
        path_loss_payload = {
            "model": "free_space",
            "frequency_hz": path_loss.frequency_hz,
        }
    else:
        raise ExperimentError(
            f"cannot serialise path-loss model "
            f"{type(path_loss).__name__} into a job payload"
        )
    return {
        "vmus": [
            {
                "vmu_id": vmu.vmu_id,
                "data_size_mb": vmu.data_size_mb,
                "immersion_coef": vmu.immersion_coef,
            }
            for vmu in market.vmus
        ],
        "config": dataclasses.asdict(market.config),
        "link": {
            "transmit_power_w": budget.transmit_power_w,
            "noise_power_w": budget.noise_power_w,
            "distance_m": budget.distance_m,
            "fading_gain": budget.fading_gain,
            "path_loss": path_loss_payload,
        },
    }


def market_from_payload(payload: Mapping) -> StackelbergMarket:
    """Rebuild the market :func:`market_to_payload` serialised."""
    if not isinstance(payload, Mapping):
        raise ExperimentError(
            f"market payload must be a mapping, got {type(payload).__name__}"
        )
    try:
        vmus_payload = payload["vmus"]
        config_payload = payload["config"]
        link_payload = payload["link"]
    except KeyError as exc:
        raise ExperimentError(
            f"market payload is missing key {exc.args[0]!r}"
        ) from exc
    vmus = [
        VmuProfile(
            vmu_id=str(entry["vmu_id"]),
            data_size_mb=float(entry["data_size_mb"]),
            immersion_coef=float(entry["immersion_coef"]),
        )
        for entry in vmus_payload
    ]
    config = MarketConfig(
        unit_cost=float(config_payload["unit_cost"]),
        max_price=float(config_payload["max_price"]),
        max_bandwidth=float(config_payload["max_bandwidth"]),
        bandwidth_report_scale=float(config_payload["bandwidth_report_scale"]),
        enforce_capacity=bool(config_payload["enforce_capacity"]),
    )
    path_loss_payload = link_payload["path_loss"]
    model = path_loss_payload.get("model")
    if model == "log_distance":
        path_loss = LogDistancePathLoss(
            reference_gain=float(path_loss_payload["reference_gain"]),
            exponent=float(path_loss_payload["exponent"]),
        )
    elif model == "free_space":
        path_loss = FreeSpacePathLoss(
            frequency_hz=float(path_loss_payload["frequency_hz"])
        )
    else:
        raise ExperimentError(f"unknown path-loss model {model!r}")
    link = RsuLink(
        LinkBudget(
            transmit_power_w=float(link_payload["transmit_power_w"]),
            noise_power_w=float(link_payload["noise_power_w"]),
            path_loss=path_loss,
            distance_m=float(link_payload["distance_m"]),
            fading_gain=float(link_payload["fading_gain"]),
        )
    )
    return StackelbergMarket(vmus, config=config, link=link)


def config_to_payload(config: ExperimentConfig) -> dict:
    """An :class:`ExperimentConfig` as a JSON-able dict (flat dataclass)."""
    return dataclasses.asdict(config)


def config_from_payload(payload: Mapping) -> ExperimentConfig:
    """Rebuild the config :func:`config_to_payload` serialised."""
    if not isinstance(payload, Mapping):
        raise ExperimentError(
            f"config payload must be a mapping, got {type(payload).__name__}"
        )
    known = {field.name for field in dataclasses.fields(ExperimentConfig)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ExperimentError(f"config payload has unknown keys {unknown}")
    return ExperimentConfig(**{str(key): value for key, value in payload.items()})


# ---------------------------------------------------------------------- #
# built-in job kinds defined at this layer
# ---------------------------------------------------------------------- #
def run_equilibrium_cell_job(payload: Mapping) -> dict:
    """Job kind ``equilibrium_cell``: one market's Stackelberg equilibrium.

    The robustness sweeps' grid unit. ``StackelbergMarket.equilibrium``
    delegates to the stacked solver with ``M = 1``, so a cell solved in a
    worker is bitwise-equal to the same market solved inside a stacked
    sweep.
    """
    market = market_from_payload(payload["market"])
    equilibrium = market.equilibrium()
    return {
        "price": float(equilibrium.price),
        "msp_utility": float(equilibrium.msp_utility),
        "capacity_binding": bool(equilibrium.capacity_binding),
    }
