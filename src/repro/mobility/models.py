"""Vehicle mobility models over a :class:`~repro.mobility.road.RoadNetwork`.

Two models:

- :class:`RouteFollower` — drives a fixed junction route at (optionally
  noisy) segment speed limits; deterministic trajectories for tests.
- :class:`RandomWaypoint` — repeatedly picks a random destination junction
  and drives the shortest path to it; the classic synthetic-mobility
  workload generator.

Both produce time-stamped positions via ``advance(dt)`` and expose the
current position for the coverage detector.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import MobilityError
from repro.mobility.road import RoadNetwork
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_positive

__all__ = ["VehicleState", "RouteFollower", "RandomWaypoint"]


class VehicleState:
    """Kinematic state of one vehicle on the road graph."""

    def __init__(
        self,
        vehicle_id: str,
        network: RoadNetwork,
        start_junction: str,
    ) -> None:
        self.vehicle_id = vehicle_id
        self.network = network
        self.edge_from = start_junction
        self.edge_to: str | None = None
        self.edge_progress_m = 0.0
        self.clock_s = 0.0
        self.odometer_m = 0.0

    @property
    def position(self) -> tuple[float, float]:
        """Current 2-D position in metres."""
        if self.edge_to is None:
            return self.network.position(self.edge_from)
        length = self.network.graph.edges[self.edge_from, self.edge_to]["length_m"]
        fraction = min(1.0, self.edge_progress_m / length)
        return self.network.interpolate(self.edge_from, self.edge_to, fraction)


class RouteFollower:
    """Drive a fixed route of junctions at segment speed limits.

    Args:
        vehicle_id: identifier.
        network: the road network.
        route: junction sequence (consecutive pairs must be roads).
        speed_factor: multiplier on segment speed limits (e.g. 0.9 =
            cautious driver).
    """

    def __init__(
        self,
        vehicle_id: str,
        network: RoadNetwork,
        route: Sequence[str],
        *,
        speed_factor: float = 1.0,
    ) -> None:
        if len(route) < 2:
            raise MobilityError("route needs at least two junctions")
        for a, b in zip(route[:-1], route[1:]):
            if not network.graph.has_edge(a, b):
                raise MobilityError(f"route uses missing road {a!r} -> {b!r}")
        require_positive("speed_factor", speed_factor)
        self.state = VehicleState(vehicle_id, network, route[0])
        self._route = list(route)
        self._leg = 0
        self._speed_factor = float(speed_factor)
        self.state.edge_to = self._route[1]

    @property
    def vehicle_id(self) -> str:
        """Identifier."""
        return self.state.vehicle_id

    @property
    def finished(self) -> bool:
        """Whether the route has been fully driven."""
        return self._leg >= len(self._route) - 1

    @property
    def position(self) -> tuple[float, float]:
        """Current position."""
        return self.state.position

    def advance(self, dt_s: float) -> tuple[float, float]:
        """Drive for ``dt_s`` seconds; returns the new position."""
        require_positive("dt_s", dt_s)
        remaining = dt_s
        graph = self.state.network.graph
        while remaining > 0.0 and not self.finished:
            edge = graph.edges[self._route[self._leg], self._route[self._leg + 1]]
            speed = edge["speed_limit_mps"] * self._speed_factor
            distance_left = edge["length_m"] - self.state.edge_progress_m
            time_left = distance_left / speed
            if remaining < time_left:
                travelled = speed * remaining
                self.state.edge_progress_m += travelled
                self.state.odometer_m += travelled
                remaining = 0.0
            else:
                self.state.odometer_m += distance_left
                remaining -= time_left
                self._leg += 1
                self.state.edge_progress_m = 0.0
                self.state.edge_from = self._route[self._leg]
                self.state.edge_to = (
                    self._route[self._leg + 1] if not self.finished else None
                )
        self.state.clock_s += dt_s
        return self.state.position


class RandomWaypoint:
    """Random-waypoint mobility: drive shortest paths to random junctions."""

    def __init__(
        self,
        vehicle_id: str,
        network: RoadNetwork,
        *,
        start_junction: str | None = None,
        speed_factor: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        self._network = network
        self._rng = as_generator(seed)
        self._speed_factor = float(require_positive("speed_factor", speed_factor))
        start = start_junction or network.random_junction(self._rng)
        self._vehicle_id = vehicle_id
        self._follower = self._new_leg(start)

    def _new_leg(self, start: str) -> RouteFollower:
        destination = start
        for _ in range(64):
            destination = self._network.random_junction(self._rng)
            if destination != start:
                break
        if destination == start:
            raise MobilityError("could not find a distinct destination")
        route = self._network.shortest_path(start, destination)
        return RouteFollower(
            self._vehicle_id,
            self._network,
            route,
            speed_factor=self._speed_factor,
        )

    @property
    def vehicle_id(self) -> str:
        """Identifier."""
        return self._vehicle_id

    @property
    def position(self) -> tuple[float, float]:
        """Current position."""
        return self._follower.position

    @property
    def odometer_m(self) -> float:
        """Cumulative distance driven (across legs)."""
        return self._odometer_base + self._follower.state.odometer_m

    _odometer_base = 0.0

    def advance(self, dt_s: float) -> tuple[float, float]:
        """Drive for ``dt_s`` seconds, re-routing when a leg finishes."""
        require_positive("dt_s", dt_s)
        remaining = dt_s
        # Drive in chunks; when the leg ends, start a fresh leg from its
        # terminal junction. Chunk granularity of 1s bounds the overshoot.
        while remaining > 0.0:
            step = min(1.0, remaining)
            self._follower.advance(step)
            remaining -= step
            if self._follower.finished:
                self._odometer_base += self._follower.state.odometer_m
                terminal = self._follower._route[-1]
                self._follower = self._new_leg(terminal)
        return self.position
