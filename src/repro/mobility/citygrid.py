"""City-scale market generation: one migration market per RSU-grid junction.

The paper's migration scenarios play out on a city street grid: every
junction hosts an RSU, vehicles crossing a cell hand their VT over to the
next RSU, and each junction's handover stream is one bandwidth market.
:func:`city_markets` turns a :class:`CityGridSpec` into that market
population using the existing mobility substrate — the road grid from
:func:`repro.mobility.road.grid_city`, per-junction
:class:`~repro.entities.rsu.RoadsideUnit` coverage to decide whether a
cell crossing forces a hard migration, and
:func:`repro.mobility.demand.capacity_for_demand` to size each market's
``B_max`` from its migration rate.

Determinism contract
--------------------
Market ``i`` is a pure function of ``(spec, i)``: every random draw uses
``np.random.default_rng([spec.seed, i])``, and the junction geometry is
derived from the grid parameters alone. Building markets ``[start, stop)``
therefore yields objects identical to the same index range of the full
build — which is what lets scheduler jobs and chunked solves construct
only their own slice of a 10k-market city from a payload of a dozen
scalars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.channel.link import paper_link
from repro.core.stackelberg import MarketConfig, StackelbergMarket
from repro.entities.rsu import RoadsideUnit
from repro.entities.vmu import sample_population
from repro.errors import ConfigurationError
from repro.mobility.coverage import CoverageMap
from repro.mobility.demand import DemandProfile, capacity_for_demand
from repro.mobility.road import RoadNetwork, grid_city

__all__ = ["CityGridSpec", "city_markets", "city_coverage"]

_SOFT_HANDOVER_FACTOR = 0.5
"""Migration-rate multiplier when the neighbouring junction is still inside
the source RSU's coverage: overlapping cells resolve half their crossings
as soft handovers that keep the VT in place."""


@dataclass(frozen=True)
class CityGridSpec:
    """Parameters of a city-grid market population (payload-friendly).

    ``num_markets`` may truncate the ``rows × cols`` grid: markets are laid
    out junction-by-junction in row-major order, and only the first
    ``num_markets`` junctions trade.
    """

    num_markets: int
    rows: int
    cols: int
    block_m: float = 400.0
    coverage_radius_m: float | None = None
    speed_limit_mps: float = 13.9
    vehicles_per_cell: float = 400.0
    max_vmus: int = 6
    target_aotm: float = 0.05
    horizon_s: float = 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ConfigurationError(
                f"need a >= 2x2 grid, got {self.rows}x{self.cols}"
            )
        if not 1 <= self.num_markets <= self.rows * self.cols:
            raise ConfigurationError(
                f"num_markets must be in [1, rows*cols] = "
                f"[1, {self.rows * self.cols}], got {self.num_markets}"
            )
        if self.max_vmus < 1:
            raise ConfigurationError(
                f"max_vmus must be >= 1, got {self.max_vmus}"
            )
        for name in ("block_m", "speed_limit_mps", "vehicles_per_cell",
                     "target_aotm", "horizon_s"):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )

    @classmethod
    def for_markets(
        cls,
        num_markets: int | None = None,
        *,
        rows: int | None = None,
        cols: int | None = None,
        **kwargs: Any,
    ) -> "CityGridSpec":
        """Build a spec from either a market count or an explicit shape.

        With only ``num_markets``, the grid is the smallest near-square
        ``rows × cols`` (each >= 2) holding that many junctions; with an
        explicit shape, ``num_markets`` defaults to the full grid.
        """
        if rows is None and cols is None:
            if num_markets is None:
                raise ConfigurationError(
                    "pass num_markets or an explicit rows x cols shape"
                )
            cols = max(2, math.ceil(math.sqrt(num_markets)))
            rows = max(2, math.ceil(num_markets / cols))
        elif rows is None or cols is None:
            raise ConfigurationError("pass both rows and cols, or neither")
        if num_markets is None:
            num_markets = rows * cols
        return cls(num_markets=num_markets, rows=rows, cols=cols, **kwargs)

    @property
    def coverage_radius(self) -> float:
        """Effective RSU coverage radius (default ¾ of a block, so cell
        crossings always exit coverage and force a hard migration)."""
        if self.coverage_radius_m is not None:
            return float(self.coverage_radius_m)
        return 0.75 * self.block_m

    def to_payload(self) -> dict[str, Any]:
        """A JSON-able dict that round-trips through :meth:`from_payload`."""
        return {
            "num_markets": self.num_markets,
            "rows": self.rows,
            "cols": self.cols,
            "block_m": self.block_m,
            "coverage_radius_m": self.coverage_radius_m,
            "speed_limit_mps": self.speed_limit_mps,
            "vehicles_per_cell": self.vehicles_per_cell,
            "max_vmus": self.max_vmus,
            "target_aotm": self.target_aotm,
            "horizon_s": self.horizon_s,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CityGridSpec":
        """Rebuild a spec from :meth:`to_payload` output."""
        return cls(**dict(payload))


def _junction_id(spec: CityGridSpec, index: int) -> str:
    return f"g{index // spec.cols}-{index % spec.cols}"


def _nearest_neighbor(
    network: RoadNetwork, junction: str
) -> tuple[str, float]:
    """The road-adjacent junction closest to ``junction`` (O(degree) —
    never a scan over all RSUs, so a 10k-junction city stays O(M) total).

    Ties break on the neighbour id so the choice is deterministic.
    """
    best: tuple[float, str] | None = None
    for _, neighbor, length in network.graph.out_edges(junction, data="length_m"):
        key = (float(length), neighbor)
        if best is None or key < best:
            best = key
    if best is None:  # grid_city always wires >= 2x2, so unreachable
        raise ConfigurationError(f"junction {junction!r} has no roads")
    return best[1], best[0]


def city_markets(
    spec: CityGridSpec, start: int = 0, stop: int | None = None
) -> list[StackelbergMarket]:
    """Markets ``[start, stop)`` of the city grid described by ``spec``.

    Per junction: the cell's vehicle stream (``vehicles_per_cell`` vehicles
    crossing at the speed limit) sets the handover rate towards the nearest
    road neighbour; crossings that exit the source RSU's coverage are hard
    VT migrations, soft handovers (neighbour still covered) migrate at half
    that rate. The rate becomes a :class:`DemandProfile` whose
    :func:`capacity_for_demand` sizing — at the junction link's actual
    spectral efficiency — sets the market's ``B_max``. The VMU population
    and per-cell congestion are drawn from the per-index generator (see the
    module docstring's determinism contract).
    """
    if stop is None:
        stop = spec.num_markets
    if not 0 <= start <= stop <= spec.num_markets:
        raise ConfigurationError(
            f"invalid market range [{start}, {stop}) for "
            f"{spec.num_markets} markets"
        )
    network = grid_city(
        spec.rows,
        spec.cols,
        block_m=spec.block_m,
        speed_limit_mps=spec.speed_limit_mps,
    )
    base_link = paper_link()
    markets: list[StackelbergMarket] = []
    for index in range(start, stop):
        junction = _junction_id(spec, index)
        neighbor, road_length = _nearest_neighbor(network, junction)
        rng = np.random.default_rng([spec.seed, index])
        population = sample_population(
            int(rng.integers(1, spec.max_vmus + 1)), seed=rng
        )
        vehicles = 1 + int(rng.poisson(spec.vehicles_per_cell))
        # VTs migrate at the coverage boundary, somewhere along the road —
        # the RSU-to-RSU link distance is a per-cell fraction of the block.
        link = base_link.with_distance(road_length * float(rng.uniform(0.6, 1.0)))
        source_rsu = RoadsideUnit(
            rsu_id=f"rsu-{junction}",
            position_m=network.position(junction),
            coverage_radius_m=spec.coverage_radius,
        )
        crossing_rate_hz = vehicles * spec.speed_limit_mps / road_length
        if source_rsu.covers(network.position(neighbor)):
            crossing_rate_hz *= _SOFT_HANDOVER_FACTOR
        profile = DemandProfile(
            duration_s=spec.horizon_s,
            total_migrations=int(round(crossing_rate_hz * spec.horizon_s)),
            arrival_rate_hz=crossing_rate_hz,
            per_vehicle_rate_hz=crossing_rate_hz / vehicles,
            mean_interarrival_s=1.0 / crossing_rate_hz,
            interarrival_cv=1.0,
            busiest_pair=(
                junction,
                neighbor,
                int(round(crossing_rate_hz * spec.horizon_s)),
            ),
        )
        mean_data_units = float(
            np.mean([vmu.data_units for vmu in population])
        )
        capacity_natural = capacity_for_demand(
            profile,
            mean_data_units=mean_data_units,
            target_aotm=spec.target_aotm,
            spectral_efficiency=link.spectral_efficiency,
        )
        config = MarketConfig(
            max_bandwidth=capacity_natural * MarketConfig().bandwidth_report_scale
        )
        markets.append(
            StackelbergMarket(population, config=config, link=link)
        )
    return markets


def city_coverage(spec: CityGridSpec) -> tuple[RoadNetwork, CoverageMap]:
    """The city's road network and full-city RSU coverage map.

    Diagnostics companion to :func:`city_markets` (which deliberately never
    queries the full map — :class:`CoverageMap` lookups scan all RSUs, and
    a per-market scan would be O(M²) at city scale). Useful for asserting
    the grid leaves no coverage holes at junctions.
    """
    network = grid_city(
        spec.rows,
        spec.cols,
        block_m=spec.block_m,
        speed_limit_mps=spec.speed_limit_mps,
    )
    rsus = [
        RoadsideUnit(
            rsu_id=f"rsu-{junction}",
            position_m=network.position(junction),
            coverage_radius_m=spec.coverage_radius,
        )
        for junction in network.junctions()
    ]
    return network, CoverageMap(rsus)
