"""Road-network model on top of networkx.

The paper's motivation — "due to the dynamic mobility of vehicles and the
limited service coverage of RSUs, VTs must be migrated" — needs a road
substrate to be demonstrated end-to-end. A :class:`RoadNetwork` is a
directed graph whose nodes carry 2-D positions and whose edges are
traversable road segments with speed limits; vehicles move along paths of
this graph in :mod:`repro.mobility.models`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import networkx as nx

from repro.errors import MobilityError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["RoadNetwork", "straight_highway", "grid_city"]


class RoadNetwork:
    """A directed road graph with embedded node positions (metres)."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-mostly)."""
        return self._graph

    def add_junction(self, node_id: str, position_m: tuple[float, float]) -> None:
        """Add a junction (graph node) at a position."""
        if node_id in self._graph:
            raise MobilityError(f"duplicate junction {node_id!r}")
        self._graph.add_node(node_id, position=tuple(map(float, position_m)))

    def add_road(
        self, from_id: str, to_id: str, *, speed_limit_mps: float = 16.7,
        bidirectional: bool = True,
    ) -> None:
        """Add a road segment; length is the Euclidean node distance."""
        for node_id in (from_id, to_id):
            if node_id not in self._graph:
                raise MobilityError(f"unknown junction {node_id!r}")
        if speed_limit_mps <= 0.0:
            raise MobilityError(f"speed limit must be > 0, got {speed_limit_mps}")
        length = self.distance(from_id, to_id)
        if length == 0.0:
            raise MobilityError(
                f"junctions {from_id!r} and {to_id!r} are co-located"
            )
        self._graph.add_edge(
            from_id, to_id, length_m=length, speed_limit_mps=float(speed_limit_mps)
        )
        if bidirectional:
            self._graph.add_edge(
                to_id, from_id, length_m=length, speed_limit_mps=float(speed_limit_mps)
            )

    def position(self, node_id: str) -> tuple[float, float]:
        """Position of a junction."""
        if node_id not in self._graph:
            raise MobilityError(f"unknown junction {node_id!r}")
        return self._graph.nodes[node_id]["position"]

    def distance(self, from_id: str, to_id: str) -> float:
        """Euclidean distance between two junctions."""
        ax, ay = self.position(from_id)
        bx, by = self.position(to_id)
        return math.hypot(bx - ax, by - ay)

    def junctions(self) -> list[str]:
        """All junction ids."""
        return list(self._graph.nodes)

    def shortest_path(self, from_id: str, to_id: str) -> list[str]:
        """Length-weighted shortest path between junctions.

        Raises:
            MobilityError: if no path exists.
        """
        try:
            return nx.shortest_path(
                self._graph, from_id, to_id, weight="length_m"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise MobilityError(f"no route {from_id!r} -> {to_id!r}") from exc

    def path_length(self, path: Sequence[str]) -> float:
        """Total length of a junction path in metres."""
        if len(path) < 2:
            return 0.0
        return sum(
            self._graph.edges[a, b]["length_m"] for a, b in zip(path[:-1], path[1:])
        )

    def interpolate(
        self, from_id: str, to_id: str, fraction: float
    ) -> tuple[float, float]:
        """Position ``fraction`` of the way along the edge from->to."""
        if not self._graph.has_edge(from_id, to_id):
            raise MobilityError(f"no road {from_id!r} -> {to_id!r}")
        if not 0.0 <= fraction <= 1.0:
            raise MobilityError(f"fraction must be in [0, 1], got {fraction}")
        ax, ay = self.position(from_id)
        bx, by = self.position(to_id)
        return (ax + (bx - ax) * fraction, ay + (by - ay) * fraction)

    def random_junction(self, seed: SeedLike = None) -> str:
        """A uniformly random junction id."""
        nodes = self.junctions()
        if not nodes:
            raise MobilityError("empty road network")
        rng = as_generator(seed)
        return nodes[int(rng.integers(0, len(nodes)))]


def straight_highway(
    length_m: float = 5000.0,
    *,
    num_junctions: int = 11,
    speed_limit_mps: float = 27.8,
) -> RoadNetwork:
    """A straight east-west highway with evenly spaced junctions.

    The canonical scenario for RSU handovers: RSUs sit along the road and
    vehicles traverse it end to end.
    """
    if num_junctions < 2:
        raise MobilityError(f"need >= 2 junctions, got {num_junctions}")
    if length_m <= 0.0:
        raise MobilityError(f"length must be > 0, got {length_m}")
    network = RoadNetwork()
    spacing = length_m / (num_junctions - 1)
    for index in range(num_junctions):
        network.add_junction(f"j{index}", (index * spacing, 0.0))
    for index in range(num_junctions - 1):
        network.add_road(
            f"j{index}", f"j{index + 1}", speed_limit_mps=speed_limit_mps
        )
    return network


def grid_city(
    rows: int = 4,
    cols: int = 4,
    *,
    block_m: float = 400.0,
    speed_limit_mps: float = 13.9,
) -> RoadNetwork:
    """A Manhattan-style grid of ``rows × cols`` junctions."""
    if rows < 2 or cols < 2:
        raise MobilityError(f"need a >= 2x2 grid, got {rows}x{cols}")
    if block_m <= 0.0:
        raise MobilityError(f"block size must be > 0, got {block_m}")
    network = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            network.add_junction(f"g{r}-{c}", (c * block_m, r * block_m))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_road(
                    f"g{r}-{c}", f"g{r}-{c + 1}", speed_limit_mps=speed_limit_mps
                )
            if r + 1 < rows:
                network.add_road(
                    f"g{r}-{c}", f"g{r + 1}-{c}", speed_limit_mps=speed_limit_mps
                )
    return network
