"""Migration-demand statistics from handover event streams.

Bridges the mobility substrate and the market: given the handover events
of a scenario, estimate the arrival process of migration tasks — per
vehicle, per RSU pair, and in aggregate — and size the bandwidth the MSP
must hold to serve that demand at a target AoTM. This is the capacity-
planning question hiding behind the paper's fixed ``B_max``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.mobility.coverage import HandoverEvent
from repro.utils.validation import require_positive

__all__ = ["DemandProfile", "analyze_demand", "capacity_for_demand"]


@dataclass(frozen=True)
class DemandProfile:
    """Summary of a migration-task arrival stream.

    Attributes:
        duration_s: observation window.
        total_migrations: migration (non-attach) events observed.
        arrival_rate_hz: aggregate migrations per second.
        per_vehicle_rate_hz: mean migrations per second per vehicle.
        mean_interarrival_s: mean gap between consecutive migrations
            (NaN with fewer than two events).
        interarrival_cv: coefficient of variation of the gaps — ≈1 for a
            Poisson stream, <1 for regular (deterministic) streams like
            constant-speed highway driving.
        busiest_pair: (source, destination, count) of the hottest RSU pair.
    """

    duration_s: float
    total_migrations: int
    arrival_rate_hz: float
    per_vehicle_rate_hz: float
    mean_interarrival_s: float
    interarrival_cv: float
    busiest_pair: tuple[str, str, int] | None


def analyze_demand(
    events: list[HandoverEvent], duration_s: float
) -> DemandProfile:
    """Summarise the migration-task arrival process of an event stream."""
    require_positive("duration_s", duration_s)
    migrations = sorted(
        (e for e in events if e.is_migration), key=lambda e: e.time_s
    )
    vehicles = {e.vehicle_id for e in events}
    pair_counts: Counter[tuple[str, str]] = Counter(
        (e.source_rsu_id, e.destination_rsu_id) for e in migrations
    )
    busiest = None
    if pair_counts:
        (src, dst), count = pair_counts.most_common(1)[0]
        busiest = (src, dst, count)

    times = np.array([e.time_s for e in migrations])
    if len(times) >= 2:
        gaps = np.diff(times)
        positive = gaps[gaps > 0]
        if positive.size >= 2:
            mean_gap = float(positive.mean())
            cv = float(positive.std() / mean_gap) if mean_gap > 0 else 0.0
        elif positive.size == 1:
            mean_gap, cv = float(positive[0]), 0.0
        else:
            mean_gap, cv = 0.0, 0.0
    else:
        mean_gap, cv = float("nan"), float("nan")

    rate = len(migrations) / duration_s
    return DemandProfile(
        duration_s=duration_s,
        total_migrations=len(migrations),
        arrival_rate_hz=rate,
        per_vehicle_rate_hz=rate / max(1, len(vehicles)),
        mean_interarrival_s=mean_gap,
        interarrival_cv=cv,
        busiest_pair=busiest,
    )


def capacity_for_demand(
    profile: DemandProfile,
    *,
    mean_data_units: float,
    target_aotm: float,
    spectral_efficiency: float,
    concurrency_margin: float = 1.5,
) -> float:
    """Bandwidth the MSP should hold to serve the demand at a target AoTM.

    Little's-law sizing: migrations in flight ≈ arrival_rate × AoTM; each
    in-flight migration needs ``b = D / (A_target · SE)`` (Eq. 1 inverted).
    The concurrency margin absorbs burstiness (use ~1 for CV ≈ 0 streams,
    higher for Poisson-like arrivals).

    Returns bandwidth in natural units.
    """
    require_positive("mean_data_units", mean_data_units)
    require_positive("target_aotm", target_aotm)
    require_positive("spectral_efficiency", spectral_efficiency)
    require_positive("concurrency_margin", concurrency_margin)
    in_flight = profile.arrival_rate_hz * target_aotm
    per_flow = mean_data_units / (target_aotm * spectral_efficiency)
    return concurrency_margin * in_flight * per_flow
