"""Vehicular mobility substrate: roads, mobility models, coverage, traces."""

from repro.mobility.citygrid import CityGridSpec, city_coverage, city_markets
from repro.mobility.coverage import CoverageMap, HandoverDetector, HandoverEvent
from repro.mobility.demand import DemandProfile, analyze_demand, capacity_for_demand
from repro.mobility.models import RandomWaypoint, RouteFollower, VehicleState
from repro.mobility.road import RoadNetwork, grid_city, straight_highway
from repro.mobility.trace import (
    SimulationResult,
    TracePoint,
    VehicleTrace,
    deploy_rsus_along_highway,
    simulate_handovers,
)

__all__ = [
    "CityGridSpec",
    "city_coverage",
    "city_markets",
    "DemandProfile",
    "analyze_demand",
    "capacity_for_demand",
    "CoverageMap",
    "HandoverDetector",
    "HandoverEvent",
    "RandomWaypoint",
    "RouteFollower",
    "VehicleState",
    "RoadNetwork",
    "grid_city",
    "straight_highway",
    "SimulationResult",
    "TracePoint",
    "VehicleTrace",
    "deploy_rsus_along_highway",
    "simulate_handovers",
]
