"""RSU coverage map and handover detection.

This is the component that *generates migration demand*: as a vehicle
moves, the detector tracks which RSU serves it (nearest covering RSU,
with hysteresis to avoid ping-ponging on the coverage boundary) and emits
a :class:`HandoverEvent` whenever the serving RSU changes — each event is
a VT migration task for the incentive mechanism downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.entities.rsu import RoadsideUnit
from repro.errors import MobilityError
from repro.utils.validation import require_non_negative

__all__ = ["HandoverEvent", "CoverageMap", "HandoverDetector"]


@dataclass(frozen=True)
class HandoverEvent:
    """A serving-RSU change for one vehicle — i.e. one VT migration task."""

    vehicle_id: str
    time_s: float
    source_rsu_id: str | None
    """None for the initial attachment (no migration needed)."""
    destination_rsu_id: str
    position_m: tuple[float, float]

    @property
    def is_migration(self) -> bool:
        """True when a VT actually has to move (source exists)."""
        return self.source_rsu_id is not None


class CoverageMap:
    """Spatial queries over a set of RSUs."""

    def __init__(self, rsus: list[RoadsideUnit]) -> None:
        if not rsus:
            raise MobilityError("coverage map needs at least one RSU")
        ids = [r.rsu_id for r in rsus]
        if len(set(ids)) != len(ids):
            raise MobilityError("duplicate RSU ids in coverage map")
        self._rsus = list(rsus)

    @property
    def rsus(self) -> list[RoadsideUnit]:
        """The RSUs in this map."""
        return list(self._rsus)

    def covering(self, point_m: tuple[float, float]) -> list[RoadsideUnit]:
        """All RSUs whose coverage disc contains ``point_m``."""
        return [r for r in self._rsus if r.covers(point_m)]

    def nearest(self, point_m: tuple[float, float]) -> RoadsideUnit:
        """The RSU nearest to ``point_m`` (covering or not)."""
        return min(self._rsus, key=lambda r: r.distance_to(point_m))

    def best_server(self, point_m: tuple[float, float]) -> RoadsideUnit | None:
        """Nearest *covering* RSU, or None if the point is uncovered."""
        covering = self.covering(point_m)
        if not covering:
            return None
        return min(covering, key=lambda r: r.distance_to(point_m))

    def coverage_holes(
        self, points: list[tuple[float, float]]
    ) -> list[tuple[float, float]]:
        """The subset of ``points`` not covered by any RSU."""
        return [p for p in points if not self.covering(p)]


class HandoverDetector:
    """Tracks serving RSUs per vehicle and emits handover events.

    Hysteresis: a handover to a new RSU only triggers when the new RSU is
    closer than the current one by at least ``hysteresis_m`` metres (and
    the current one no longer covers the vehicle, or the new one is
    strictly better by the margin). This mirrors real cellular handover
    logic and prevents boundary oscillation.
    """

    def __init__(self, coverage: CoverageMap, *, hysteresis_m: float = 25.0) -> None:
        require_non_negative("hysteresis_m", hysteresis_m)
        self._coverage = coverage
        self._hysteresis = float(hysteresis_m)
        self._serving: dict[str, str] = {}

    def serving_rsu(self, vehicle_id: str) -> str | None:
        """Current serving RSU id for a vehicle (None if unattached)."""
        return self._serving.get(vehicle_id)

    def observe(
        self,
        vehicle_id: str,
        position_m: tuple[float, float],
        time_s: float,
    ) -> HandoverEvent | None:
        """Update tracking with a new position sample.

        Returns a :class:`HandoverEvent` if the serving RSU changed
        (or the vehicle just attached), else None.
        """
        best = self._coverage.best_server(position_m)
        current_id = self._serving.get(vehicle_id)
        if best is None:
            # Out of coverage: keep the old association (the VT stays on
            # the last RSU until coverage resumes).
            return None
        if current_id is None:
            self._serving[vehicle_id] = best.rsu_id
            return HandoverEvent(
                vehicle_id=vehicle_id,
                time_s=time_s,
                source_rsu_id=None,
                destination_rsu_id=best.rsu_id,
                position_m=position_m,
            )
        if best.rsu_id == current_id:
            return None
        current = next(
            r for r in self._coverage.rsus if r.rsu_id == current_id
        )
        current_distance = current.distance_to(position_m)
        best_distance = best.distance_to(position_m)
        still_covered = current.covers(position_m)
        if still_covered and (
            current_distance - best_distance
        ) < self._hysteresis:
            return None
        self._serving[vehicle_id] = best.rsu_id
        return HandoverEvent(
            vehicle_id=vehicle_id,
            time_s=time_s,
            source_rsu_id=current_id,
            destination_rsu_id=best.rsu_id,
            position_m=position_m,
        )
