"""Trajectory simulation: drive vehicles, sample positions, collect handovers.

``simulate_handovers`` is the top of the mobility substrate: given a road
network, RSU deployment, and a set of mobility models, it advances the
world in fixed ticks and returns every vehicle's trace plus the handover
events — the stream of VT-migration tasks consumed by the examples and
the end-to-end benchmark (E9 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.entities.rsu import RoadsideUnit
from repro.errors import MobilityError
from repro.mobility.coverage import CoverageMap, HandoverDetector, HandoverEvent
from repro.utils.validation import require_positive

__all__ = ["MobileAgent", "TracePoint", "VehicleTrace", "SimulationResult", "simulate_handovers", "deploy_rsus_along_highway"]


class MobileAgent(Protocol):
    """Anything that can report a position and advance in time."""

    @property
    def vehicle_id(self) -> str: ...

    @property
    def position(self) -> tuple[float, float]: ...

    def advance(self, dt_s: float) -> tuple[float, float]: ...


@dataclass(frozen=True)
class TracePoint:
    """One time-stamped position sample."""

    time_s: float
    position_m: tuple[float, float]


@dataclass
class VehicleTrace:
    """A vehicle's sampled trajectory."""

    vehicle_id: str
    points: list[TracePoint] = field(default_factory=list)

    def positions(self) -> list[tuple[float, float]]:
        """Just the positions, in time order."""
        return [p.position_m for p in self.points]


@dataclass
class SimulationResult:
    """Traces plus handover (migration-task) events."""

    traces: dict[str, VehicleTrace]
    events: list[HandoverEvent]

    @property
    def migrations(self) -> list[HandoverEvent]:
        """Events that require an actual VT migration."""
        return [e for e in self.events if e.is_migration]

    def migrations_of(self, vehicle_id: str) -> list[HandoverEvent]:
        """Migration events of one vehicle."""
        return [e for e in self.migrations if e.vehicle_id == vehicle_id]


def simulate_handovers(
    agents: list[MobileAgent],
    rsus: list[RoadsideUnit],
    *,
    duration_s: float,
    tick_s: float = 1.0,
    hysteresis_m: float = 25.0,
) -> SimulationResult:
    """Advance all agents for ``duration_s`` and collect handover events."""
    if not agents:
        raise MobilityError("need at least one agent")
    require_positive("duration_s", duration_s)
    require_positive("tick_s", tick_s)
    coverage = CoverageMap(rsus)
    detector = HandoverDetector(coverage, hysteresis_m=hysteresis_m)
    traces = {
        agent.vehicle_id: VehicleTrace(vehicle_id=agent.vehicle_id)
        for agent in agents
    }
    events: list[HandoverEvent] = []

    clock = 0.0
    # Initial attachment at t = 0.
    for agent in agents:
        traces[agent.vehicle_id].points.append(
            TracePoint(time_s=clock, position_m=agent.position)
        )
        event = detector.observe(agent.vehicle_id, agent.position, clock)
        if event is not None:
            events.append(event)

    while clock < duration_s:
        step = min(tick_s, duration_s - clock)
        clock += step
        for agent in agents:
            position = agent.advance(step)
            traces[agent.vehicle_id].points.append(
                TracePoint(time_s=clock, position_m=position)
            )
            event = detector.observe(agent.vehicle_id, position, clock)
            if event is not None:
                events.append(event)
    return SimulationResult(traces=traces, events=events)


def deploy_rsus_along_highway(
    highway_length_m: float,
    *,
    spacing_m: float = 1000.0,
    coverage_radius_m: float = 600.0,
    lateral_offset_m: float = 20.0,
) -> list[RoadsideUnit]:
    """Place RSUs at regular intervals beside a straight highway.

    Coverage radius > spacing/2 guarantees no holes along the roadway,
    matching the paper's assumption of continuous service.
    """
    require_positive("highway_length_m", highway_length_m)
    require_positive("spacing_m", spacing_m)
    require_positive("coverage_radius_m", coverage_radius_m)
    rsus: list[RoadsideUnit] = []
    count = int(highway_length_m // spacing_m) + 1
    for index in range(count):
        rsus.append(
            RoadsideUnit(
                rsu_id=f"rsu-{index}",
                position_m=(index * spacing_m, lateral_offset_m),
                coverage_radius_m=coverage_radius_m,
            )
        )
    return rsus
