"""Shared job queue + content-addressed artifact store.

The cross-machine half of the experiment scheduler: producers enqueue
:class:`~repro.experiments.scheduler.Job` specs into a shared directory,
:class:`QueueWorker` processes lease them via atomic rename, heartbeat on
a fixed cadence, and push results into a content-addressed
:class:`ArtifactStore` whose every entry embeds the full job spec
(provenance: any artifact reloads and re-runs from its own metadata —
:meth:`Artifact.replay`). A reaper pass expires stale leases so a dead
worker's jobs requeue; results stay exactly-once via the content hash
even though execution is at-least-once. :class:`QueueScheduler` plugs the
queue into ``run_experiment(..., scheduler=...)`` — the queued path is
bitwise-equal to the direct path.

Quickstart (one shared directory, any number of processes/machines)::

    from repro.experiments import run_experiment
    from repro.queue import QueueScheduler

    scheduler = QueueScheduler("/shared/queue", lease_ttl=60.0)
    result = run_experiment("fig3_cost", {"costs": (5.0, 7.0)},
                            scheduler=scheduler)

    # elsewhere, as many times as you like:
    #   python -m repro.experiments.run worker --queue-dir /shared/queue
"""

from repro.queue.artifacts import Artifact, ArtifactStore
from repro.queue.queue import (
    DEFAULT_LEASE_TTL,
    JobQueue,
    LeasedJob,
    QueueStats,
)
from repro.queue.worker import (
    QueueScheduler,
    QueueWorker,
    WorkerStats,
    default_worker_id,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "DEFAULT_LEASE_TTL",
    "JobQueue",
    "LeasedJob",
    "QueueStats",
    "QueueScheduler",
    "QueueWorker",
    "WorkerStats",
    "default_worker_id",
]
