"""Shared job queue: lease-based work distribution over a directory.

The queue is a directory any number of producers and workers share — on
one box, or across machines via a network filesystem (nothing below needs
more than atomic rename within one filesystem; an object-store backend
would swap the directory primitives for conditional puts). Layout::

    <queue_dir>/
        pending/<job_hash>.json        # enqueued job specs {"kind","payload"}
        leases/<worker_id>/<hash>.json # specs a worker is executing
        heartbeats/<worker_id>.json    # liveness beacons, one per worker
        results/<hash>.json            # the ArtifactStore (+ checkpoints/)

**Leasing.** A worker takes a job by atomically renaming its spec file
from ``pending/`` into its own ``leases/<worker_id>/`` directory — rename
either succeeds for exactly one contender or raises, so no lock manager is
needed and two workers can never both hold the same job. Acking (after the
result is stored) deletes the lease file; releasing renames it back.

**Heartbeats.** Every worker rewrites its heartbeat file on a fixed
cadence (a daemon thread in :class:`~repro.queue.worker.QueueWorker`, so a
long job does not starve the beacon). A reaper pass —
:meth:`JobQueue.reap`, run opportunistically by every worker and by the
scheduler's wait loop — expires any worker whose heartbeat is older than
``lease_ttl`` (or missing) and renames its leased specs back to
``pending/``, so a SIGKILLed worker's jobs requeue after at most one TTL.

**Exactly-once results from at-least-once execution.** Reaping a worker
that was merely slow (not dead) means two workers may execute the same
job. That is safe by construction: results are content-addressed by the
job hash in the artifact store, job functions are pure, and every store
write is atomic — both workers produce the identical entry, and a worker
finding the result already stored acks without executing. Requeue/retry
therefore never forks state; it only wastes the duplicated compute.

Timestamps ride *inside* the heartbeat file (wall clock of the writer),
falling back to the file's mtime if unreadable; ``lease_ttl`` must
comfortably exceed heartbeat cadence + clock skew between machines.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.scheduler import Job
from repro.queue.artifacts import ArtifactStore
from repro.utils.serialization import load_json

__all__ = ["JobQueue", "LeasedJob", "QueueStats", "DEFAULT_LEASE_TTL"]

DEFAULT_LEASE_TTL = 60.0
"""Default seconds of heartbeat silence before a worker's leases requeue."""


@dataclass(frozen=True)
class LeasedJob:
    """One job a worker currently holds: the spec plus its lease file."""

    job: Job
    job_hash: str
    worker_id: str
    path: Path


@dataclass(frozen=True)
class QueueStats:
    """A point-in-time census of the queue directory."""

    pending: int
    leased: int
    stored: int
    workers: int


class JobQueue:
    """A shared-directory job queue with leasing, heartbeats, and reaping.

    Every operation is safe under concurrent producers, workers, and
    reapers; none holds a lock. ``lease_ttl`` is the liveness contract:
    a worker whose heartbeat goes stale for longer than this forfeits its
    leases.
    """

    def __init__(
        self, queue_dir: str | Path, *, lease_ttl: float = DEFAULT_LEASE_TTL
    ) -> None:
        if lease_ttl <= 0:
            raise ExperimentError(
                f"lease_ttl must be > 0 seconds, got {lease_ttl}"
            )
        self.root = Path(queue_dir)
        self.lease_ttl = float(lease_ttl)
        self.pending_dir = self.root / "pending"
        self.leases_dir = self.root / "leases"
        self.heartbeats_dir = self.root / "heartbeats"
        self.store = ArtifactStore(self.root / "results")
        for directory in (
            self.pending_dir,
            self.leases_dir,
            self.heartbeats_dir,
            self.store.root,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # producing
    # ------------------------------------------------------------------ #
    def enqueue(self, job: Job) -> bool:
        """Make ``job`` available for leasing; returns False if redundant.

        Redundant means its result is already in the artifact store, or an
        identical spec is already pending or leased — the content hash
        dedupes across producers, so N schedulers enqueueing the same plan
        yield one execution. The spec file is written atomically through a
        unique temp name; racing producers both "win" with identical
        content.
        """
        key = job.job_hash()
        if (
            self.store.contains(key)
            or (self.pending_dir / f"{key}.json").exists()
            or self._lease_paths(key)
        ):
            return False
        self._write_spec(self.pending_dir / f"{key}.json", job)
        return True

    def enqueue_many(self, jobs: Iterable[Job]) -> int:
        """Enqueue a batch; returns how many were newly enqueued."""
        return sum(1 for job in jobs if self.enqueue(job))

    # ------------------------------------------------------------------ #
    # leasing
    # ------------------------------------------------------------------ #
    def lease(self, worker_id: str) -> LeasedJob | None:
        """Atomically claim one pending job for ``worker_id`` (or None).

        Claiming renames the spec file into ``leases/<worker_id>/``;
        losing a rename race to another worker just moves on to the next
        candidate. A fresh heartbeat is written first so a job can never
        be held by a worker that looks dead from the moment it leased.
        Candidates are taken in hash order — deterministic across workers,
        which spreads contenders instead of having every worker fight over
        one file (each loser retries the next candidate).
        """
        worker_dir = self.leases_dir / self._safe_worker_id(worker_id)
        worker_dir.mkdir(parents=True, exist_ok=True)
        self.heartbeat(worker_id)
        for candidate in sorted(self.pending_dir.glob("*.json")):
            claimed = worker_dir / candidate.name
            try:
                os.replace(candidate, claimed)
            except FileNotFoundError:
                continue  # another worker won this rename; try the next
            try:
                job = Job.from_spec(load_json(claimed))
            except (ExperimentError, json.JSONDecodeError, OSError) as exc:
                # A malformed spec must not wedge the queue: park it out
                # of rotation with a .rejected suffix and keep leasing.
                claimed.rename(claimed.with_suffix(".rejected"))
                raise ExperimentError(
                    f"queue spec {candidate.name} is malformed and was "
                    f"quarantined as {claimed.with_suffix('.rejected').name}: "
                    f"{exc}"
                ) from exc
            return LeasedJob(
                job=job,
                job_hash=candidate.stem,
                worker_id=worker_id,
                path=claimed,
            )
        return None

    def ack(self, leased: LeasedJob) -> None:
        """Complete a lease: the result is stored, drop the spec file.

        Tolerates the file having been reaped away (the slow-worker race):
        the job will be re-leased elsewhere, find its result stored, and
        ack again harmlessly.
        """
        leased.path.unlink(missing_ok=True)

    def release(self, leased: LeasedJob) -> None:
        """Return a leased job to ``pending/`` without completing it."""
        try:
            os.replace(leased.path, self.pending_dir / leased.path.name)
        except FileNotFoundError:
            pass  # already reaped back or acked concurrently

    # ------------------------------------------------------------------ #
    # heartbeats and reaping
    # ------------------------------------------------------------------ #
    def heartbeat(self, worker_id: str, *, now: float | None = None) -> Path:
        """Rewrite ``worker_id``'s liveness beacon (atomic replace)."""
        path = self.heartbeats_dir / f"{self._safe_worker_id(worker_id)}.json"
        stamp = time.time() if now is None else float(now)
        entry = {"worker_id": str(worker_id), "pid": os.getpid(), "time": stamp}
        temporary = path.with_name(
            f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        try:
            temporary.write_text(json.dumps(entry) + "\n")
            os.replace(temporary, path)
        finally:
            temporary.unlink(missing_ok=True)
        return path

    def heartbeat_age(
        self, worker_id: str, *, now: float | None = None
    ) -> float | None:
        """Seconds since ``worker_id`` last beat, or None if it never has.

        Prefers the timestamp written inside the beacon; falls back to the
        file's mtime if the content is unreadable.
        """
        path = self.heartbeats_dir / f"{self._safe_worker_id(worker_id)}.json"
        reference = time.time() if now is None else float(now)
        try:
            entry = load_json(path)
            stamp = float(entry["time"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            try:
                stamp = path.stat().st_mtime
            except OSError:
                return None
        return max(0.0, reference - stamp)

    def reap(self, *, now: float | None = None) -> list[str]:
        """Requeue every lease held by a stale or heartbeat-less worker.

        A worker is stale when its heartbeat is older than ``lease_ttl``
        (or missing entirely — e.g. its beacon was cleaned up but a lease
        file survived a partial crash). Returns the requeued job hashes.
        Safe to run from any process at any time; concurrent reapers race
        benignly on the renames.
        """
        requeued: list[str] = []
        for worker_dir in sorted(self.leases_dir.iterdir()):
            if not worker_dir.is_dir():
                continue
            age = self.heartbeat_age(worker_dir.name, now=now)
            leases = sorted(worker_dir.glob("*.json"))
            if age is not None and age <= self.lease_ttl:
                continue
            for lease in leases:
                try:
                    os.replace(lease, self.pending_dir / lease.name)
                except FileNotFoundError:
                    continue  # acked/released/reaped concurrently
                requeued.append(lease.stem)
            # Retire the dead worker's bookkeeping once its leases are
            # drained; ignore races with the worker coming back to life.
            if not any(worker_dir.iterdir()):
                heartbeat = (
                    self.heartbeats_dir / f"{worker_dir.name}.json"
                )
                heartbeat.unlink(missing_ok=True)
                try:
                    worker_dir.rmdir()
                except OSError:
                    pass
        return requeued

    # ------------------------------------------------------------------ #
    # census
    # ------------------------------------------------------------------ #
    def pending_hashes(self) -> list[str]:
        """Hashes currently waiting to be leased (sorted)."""
        return sorted(path.stem for path in self.pending_dir.glob("*.json"))

    def leased_hashes(self) -> dict[str, list[str]]:
        """worker directory name → hashes it currently holds."""
        return {
            worker_dir.name: sorted(
                path.stem for path in worker_dir.glob("*.json")
            )
            for worker_dir in sorted(self.leases_dir.iterdir())
            if worker_dir.is_dir()
        }

    def outstanding(self, hashes: Sequence[str] | None = None) -> list[str]:
        """Of ``hashes`` (default: everything enqueued), those without a
        stored result yet — the completion predicate schedulers wait on."""
        if hashes is None:
            keys = set(self.pending_hashes())
            for held in self.leased_hashes().values():
                keys.update(held)
        else:
            keys = set(hashes)
        return sorted(key for key in keys if not self.store.contains(key))

    def stats(self) -> QueueStats:
        """A point-in-time census (counts race with live workers)."""
        leased = self.leased_hashes()
        return QueueStats(
            pending=len(self.pending_hashes()),
            leased=sum(len(held) for held in leased.values()),
            stored=len(self.store),
            workers=len(leased),
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _safe_worker_id(worker_id: str) -> str:
        """Worker ids become directory names; reject path-meaningful ones."""
        text = str(worker_id)
        if not text or "/" in text or "\\" in text or text in (".", ".."):
            raise ExperimentError(
                f"worker id {worker_id!r} is not a valid directory name"
            )
        return text

    def _lease_paths(self, job_hash: str) -> list[Path]:
        return list(self.leases_dir.glob(f"*/{job_hash}.json"))

    def _write_spec(self, path: Path, job: Job) -> None:
        temporary = path.with_name(
            f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        try:
            with open(temporary, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(job.spec(), indent=2) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, path)
        finally:
            temporary.unlink(missing_ok=True)
