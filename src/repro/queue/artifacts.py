"""Content-addressed artifact store: every result carries its provenance.

An :class:`ArtifactStore` is a directory of ``<job_hash>.json`` entries —
the exact ``{"job": spec, "result": payload}`` files the experiment
scheduler's cache writes (:func:`repro.experiments.scheduler
.write_result_entry` is the shared codec), so a queue's ``results/``
directory doubles as a :class:`~repro.experiments.scheduler.JobScheduler`
cache and vice versa. Blob sidecars (DRL checkpoints) live under
``<root>/checkpoints/<job_hash>.npz``, the same convention the scheduler's
``checkpoint_path`` uses, recorded *store-relative* in result payloads so
a store rsynced to another machine stays internally consistent.

Provenance is the load-bearing property: because every entry embeds the
**full job spec**, any artifact reloads and re-runs from its own metadata
alone — :meth:`Artifact.replay` re-executes the embedded spec in-process
and asserts the fresh result is bitwise-identical to the stored payload
(floats survive the JSON wire exactly, so this is an equality check, not a
tolerance check). A store is therefore self-verifying: no side channel —
not the queue, not the plan that enqueued the job — is needed to audit or
reproduce anything it holds.

Addressing is by content: the file name is the SHA-256 of the canonical
spec JSON (:meth:`~repro.experiments.scheduler.Job.job_hash`), so
identical specs land on the same entry no matter which worker, machine, or
scheduler executed them — that is what turns at-least-once *execution*
into exactly-once *results*.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.scheduler import (
    MISSING_RESULT,
    Job,
    execute_job,
    read_result_entry,
    write_result_entry,
)

__all__ = ["Artifact", "ArtifactStore"]

_HASH_HEX_LENGTH = 64  # SHA-256


@dataclass(frozen=True)
class Artifact:
    """One stored result: the job that produced it, its payload, its file.

    ``job`` is rebuilt from the spec *embedded in the entry itself* — the
    artifact's provenance — never from the caller's expectation.
    """

    job: Job
    result: object
    path: Path
    store_root: Path

    @property
    def job_hash(self) -> str:
        """The content address (SHA-256 of the canonical embedded spec)."""
        return self.job.job_hash()

    def spec(self) -> dict:
        """The full embedded job spec — enough to re-run this artifact."""
        return self.job.spec()

    def blob_path(self, relative: str | Path) -> Path:
        """Resolve a store-relative sidecar path recorded in the result."""
        return self.store_root / Path(relative)

    def checkpoint(self) -> Path | None:
        """The checkpoint sidecar this result recorded, if any (absolute).

        DRL job kinds (``market_scheme``, ``training_run``) record their
        parked agent as a store-relative ``"checkpoint"`` entry in the
        result payload; plannable/analytic kinds record none.
        """
        if not isinstance(self.result, Mapping):
            return None
        recorded = self.result.get("checkpoint")
        if recorded is None:
            return None
        recorded = Path(str(recorded))
        return recorded if recorded.is_absolute() else self.blob_path(recorded)

    def replay(self) -> object:
        """Re-execute the embedded spec; assert the result is bitwise-equal.

        The job function runs in *this* process with the store root
        injected as its artifact dir (so checkpoint-recording kinds
        produce the same store-relative paths they produced originally —
        their sidecars are rewritten in place, which is sound because the
        jobs are pure). Returns the replayed result payload.

        Raises:
            ExperimentError: if the replayed result differs anywhere from
                the stored payload — the store's provenance contract is
                broken (nondeterministic job function, or a tampered
                entry whose spec/result pairing no longer holds).
        """
        fresh = execute_job(self.job, artifact_dir=self.store_root)
        if fresh != self.result:
            raise ExperimentError(
                f"artifact {self.path} does not replay: re-executing its "
                f"embedded {self.job.kind!r} spec produced a different "
                "result — the job function is impure or the entry was "
                "tampered with"
            )
        return fresh


class ArtifactStore:
    """A directory of content-addressed ``{"job", "result"}`` entries.

    The store is safe for concurrent writers (every write goes through the
    unique-temp-name + fsync + rename codec) and requires no locking to
    read: an entry is either absent or complete. It is designed so a
    network filesystem or an object store (one key per hash) can back it —
    nothing below relies on more than atomic rename within one directory.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    def path_for(self, job_or_hash: Job | str) -> Path:
        """Where the entry for ``job_or_hash`` lives (exists or not)."""
        key = (
            job_or_hash.job_hash()
            if isinstance(job_or_hash, Job)
            else str(job_or_hash)
        )
        return self.root / f"{key}.json"

    def checkpoint_dir(self) -> Path:
        """The blob-sidecar directory (shared with the scheduler cache)."""
        return self.root / "checkpoints"

    def contains(self, job_or_hash: Job | str) -> bool:
        """Whether a (possibly not-yet-verified) entry exists for this key."""
        return self.path_for(job_or_hash).exists()

    # ------------------------------------------------------------------ #
    # read / write
    # ------------------------------------------------------------------ #
    def put(self, job: Job, result: object) -> Artifact:
        """Persist ``result`` under ``job``'s content address, atomically.

        Concurrent puts of the same job are benign: both writers produce
        the same entry (pure jobs, canonical encoding) through unique temp
        files, and whichever rename lands last wins with identical bytes'
        worth of content.
        """
        path = write_result_entry(self.path_for(job), job, result)
        # Hand back what later readers will see: the JSON-round-tripped
        # form (identical — floats survive the wire exactly — but e.g.
        # tuples have become lists).
        stored = read_result_entry(path, job)
        if stored is MISSING_RESULT:  # pragma: no cover - just written
            raise ExperimentError(f"artifact {path} vanished after write")
        return Artifact(job=job, result=stored, path=path, store_root=self.root)

    def get(self, job: Job) -> Artifact | None:
        """The verified artifact for ``job``, or None if absent/torn.

        Raises:
            ExperimentError: if the slot is occupied by a different spec
                (foreign file vs hash collision, per
                :func:`~repro.experiments.scheduler.read_result_entry`).
        """
        path = self.path_for(job)
        result = read_result_entry(path, job)
        if result is MISSING_RESULT:
            return None
        return Artifact(job=job, result=result, path=path, store_root=self.root)

    def load(self, job_hash: str) -> Artifact | None:
        """Load an entry by bare hash, verifying its embedded provenance.

        The embedded spec must hash back to the file's own name — an entry
        that fails this is a foreign or tampered file and raises, because
        serving it would attribute a result to a spec that never produced
        it. Torn/absent entries return None.
        """
        path = self.path_for(job_hash)
        result = read_result_entry(path)
        if result is MISSING_RESULT:
            return None
        entry = json.loads(path.read_text())
        job = Job.from_spec(entry["job"])
        if job.job_hash() != str(job_hash):
            raise ExperimentError(
                f"artifact {path} embeds a spec of kind {job.kind!r} that "
                f"hashes to {job.job_hash()[:16]}..., not to its own file "
                "name — a foreign or tampered entry"
            )
        return Artifact(job=job, result=result, path=path, store_root=self.root)

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #
    def hashes(self) -> list[str]:
        """The content addresses currently stored (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*.json")
            if len(path.stem) == _HASH_HEX_LENGTH
        )

    def artifacts(self) -> Iterator[Artifact]:
        """Iterate every readable artifact (torn entries skipped)."""
        for key in self.hashes():
            artifact = self.load(key)
            if artifact is not None:
                yield artifact

    def __len__(self) -> int:
        return len(self.hashes())

    def __iter__(self) -> Iterator[Artifact]:
        return self.artifacts()
