"""Queue workers and the queue-backed scheduler.

:class:`QueueWorker` is the execution half of the queue subsystem: a loop
of lease → execute → store → ack against one shared
:class:`~repro.queue.queue.JobQueue`, with a daemon heartbeat thread
beating on a fixed cadence so a multi-minute DRL training job never
starves the liveness beacon, and an opportunistic reap before each lease
so any worker doubles as the fleet's reaper — no dedicated supervisor
process is needed for kill-resume.

:class:`QueueScheduler` adapts the queue to the
:class:`~repro.experiments.scheduler.JobScheduler` ``run()`` contract, so
``run_experiment(name, params, scheduler=QueueScheduler(queue_dir))``
batch-runs any experiment's plan against a shared queue/store: jobs whose
results are already stored are cache hits, the rest are enqueued for the
fleet, and (by default) the scheduler also runs an **inline worker** so a
single invocation completes even with no external workers — while any
external workers that are attached drain the same queue concurrently.
Results always come back from the artifact store (the JSON wire), so the
queued path is bitwise-equal to the direct path by the same float-exact
round-trip contract the process-pool scheduler pins.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.scheduler import Job, execute_job
from repro.queue.queue import DEFAULT_LEASE_TTL, JobQueue, LeasedJob

__all__ = ["QueueWorker", "QueueScheduler", "WorkerStats", "default_worker_id"]


def default_worker_id() -> str:
    """A fleet-unique worker id: host, pid, and a random suffix."""
    return (
        f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    )


@dataclass
class WorkerStats:
    """What one :meth:`QueueWorker.run` call did."""

    completed: int = 0
    executed: int = 0
    deduplicated: int = 0
    requeued: int = 0
    hashes: list[str] = field(default_factory=list)


class _HeartbeatThread(threading.Thread):
    """Daemon beating ``queue.heartbeat(worker_id)`` every ``interval``.

    A daemon thread dies with the process — including under SIGKILL — so
    the beacon goes stale exactly when the worker actually stops, which is
    the signal the reaper keys on.
    """

    def __init__(self, queue: JobQueue, worker_id: str, interval: float):
        super().__init__(daemon=True, name=f"heartbeat-{worker_id}")
        self._queue = queue
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.is_set():
            try:
                self._queue.heartbeat(self._worker_id)
            except OSError:
                pass  # a transiently unwritable beacon is not fatal
            self._stop.wait(self._interval)

    def stop(self) -> None:
        self._stop.set()


class QueueWorker:
    """One worker process's loop over a shared :class:`JobQueue`.

    Execution is *at-least-once*, results are *exactly-once*: before
    running a leased job the worker checks the artifact store and, if the
    result is already there (another worker finished a reaped duplicate),
    acks without executing. A job function that raises releases its lease
    back to ``pending/`` and re-raises — the failure is visible on this
    worker, and the job stays available for a retry elsewhere.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        worker_id: str | None = None,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.1,
        reap: bool = True,
    ) -> None:
        self.queue = queue
        self.worker_id = worker_id or default_worker_id()
        # Default cadence: several beats per TTL, so one missed beat (GC
        # pause, NFS hiccup) never looks like death.
        self.heartbeat_interval = (
            queue.lease_ttl / 4.0
            if heartbeat_interval is None
            else float(heartbeat_interval)
        )
        if self.heartbeat_interval <= 0:
            raise ExperimentError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if poll_interval <= 0:
            raise ExperimentError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        self.poll_interval = float(poll_interval)
        self.reap = bool(reap)

    def run(
        self,
        *,
        max_jobs: int | None = None,
        drain: bool = False,
        idle_timeout: float | None = None,
    ) -> WorkerStats:
        """Lease and execute jobs until a stop condition holds.

        Stop conditions: ``max_jobs`` completions; ``drain`` and the queue
        is empty (nothing pending *and* nothing leased anywhere — i.e. the
        whole fleet's work is done, so a draining worker waits out other
        workers' leases and picks them up if they die); or ``idle_timeout``
        seconds without obtaining a lease. With none set, serves forever.
        """
        stats = WorkerStats()
        beat = _HeartbeatThread(
            self.queue, self.worker_id, self.heartbeat_interval
        )
        self.queue.heartbeat(self.worker_id)
        beat.start()
        idle_since: float | None = None
        try:
            while max_jobs is None or stats.completed < max_jobs:
                if self.reap:
                    stats.requeued += len(self.queue.reap())
                leased = self.queue.lease(self.worker_id)
                if leased is None:
                    if drain and self._fleet_done():
                        break
                    now = time.monotonic()
                    idle_since = idle_since if idle_since is not None else now
                    if (
                        idle_timeout is not None
                        and now - idle_since >= idle_timeout
                    ):
                        break
                    time.sleep(self.poll_interval)
                    continue
                idle_since = None
                self._execute(leased, stats)
        finally:
            beat.stop()
        return stats

    def _execute(self, leased: LeasedJob, stats: WorkerStats) -> None:
        store = self.queue.store
        existing = store.get(leased.job)
        if existing is not None:
            # Exactly-once results: a duplicate execution (reaped slow
            # worker, double enqueue across queues) completes by ack alone.
            self.queue.ack(leased)
            stats.deduplicated += 1
        else:
            try:
                result = execute_job(leased.job, artifact_dir=store.root)
            except BaseException:
                # Keep the job available for a retry by another worker;
                # this worker surfaces the failure to its caller/CLI.
                self.queue.release(leased)
                raise
            store.put(leased.job, result)
            self.queue.ack(leased)
            stats.executed += 1
        stats.completed += 1
        stats.hashes.append(leased.job_hash)

    def _fleet_done(self) -> bool:
        if self.queue.pending_hashes():
            return False
        held = self.queue.leased_hashes()
        mine = held.get(self.worker_id, [])
        return all(
            not hashes or worker == self.worker_id
            for worker, hashes in held.items()
        ) and not mine


class QueueScheduler:
    """The :class:`JobScheduler` ``run()`` contract over a shared queue.

    Drop-in for ``run_experiment(..., scheduler=...)`` and the CLI's
    scheduler slot: exposes the same ``workers`` / ``resume`` knobs and
    the same post-run ``cache_hits`` / ``jobs_executed`` / ``job_sources``
    accounting. ``workers`` only sizes shard-style plan fan-out (the
    ``shards`` parameter defaulting) — actual parallelism comes from how
    many worker processes are attached to the queue directory.

    With ``execute=True`` (default) the scheduler participates as an
    inline worker until the batch is complete, so one invocation finishes
    the plan even on a box with no fleet. With ``execute=False`` it only
    enqueues and waits (``wait_timeout`` bounds the wait), which is the
    pure-producer mode for driving a remote fleet.

    ``resume=False`` recomputes every job in-process and overwrites its
    stored artifact (the same overwrite semantics as
    ``JobScheduler(resume=False)``); it deliberately bypasses the shared
    queue, because other workers would dedupe against the very results
    being invalidated.
    """

    def __init__(
        self,
        queue_dir: str | Path,
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        workers: int = 1,
        resume: bool = True,
        execute: bool = True,
        wait_timeout: float | None = None,
        poll_interval: float = 0.05,
        worker_id: str | None = None,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if wait_timeout is not None and wait_timeout <= 0:
            raise ExperimentError(
                f"wait_timeout must be > 0 seconds, got {wait_timeout}"
            )
        self.queue = JobQueue(queue_dir, lease_ttl=lease_ttl)
        self.workers = workers
        self.resume = resume
        self.execute = execute
        self.wait_timeout = wait_timeout
        self.poll_interval = float(poll_interval)
        self.worker_id = worker_id or default_worker_id()
        self.cache_hits = 0
        self.jobs_executed = 0
        self.jobs_completed_elsewhere = 0
        self.job_sources: list[str] = []

    @property
    def cache_dir(self) -> Path:
        """The artifact-store root (the queue's result cache)."""
        return self.queue.store.root

    def run(self, jobs: Sequence[Job]) -> list:
        """Execute ``jobs`` via the shared queue; results in job order.

        Matches ``JobScheduler.run`` semantics: duplicate specs collapse
        onto one execution, results already in the store are cache hits
        served without touching the queue, and every returned payload is
        the store's JSON-round-tripped form (bitwise-equal to direct
        execution).
        """
        jobs = list(jobs)
        self.cache_hits = 0
        self.jobs_executed = 0
        self.jobs_completed_elsewhere = 0
        self.job_sources = ["cache"] * len(jobs)
        results: list = [None] * len(jobs)
        store = self.queue.store
        pending: dict[str, list[int]] = {}
        pending_jobs: dict[str, Job] = {}
        for index, job in enumerate(jobs):
            key = job.job_hash()
            if key in pending:
                pending[key].append(index)
                self.job_sources[index] = "executed"
                continue
            artifact = store.get(job) if self.resume else None
            if artifact is not None:
                results[index] = artifact.result
                self.cache_hits += 1
            else:
                pending[key] = [index]
                pending_jobs[key] = job
                self.job_sources[index] = "executed"
        if not pending:
            return results
        if not self.resume:
            self._recompute_inline(pending_jobs)
        else:
            self.queue.enqueue_many(pending_jobs.values())
            if self.execute:
                self._drain_inline(set(pending))
            self._await_results(set(pending))
        executed_locally = self.jobs_executed
        for key, indices in pending.items():
            artifact = store.get(pending_jobs[key])
            if artifact is None:  # pragma: no cover - _await_results guards
                raise ExperimentError(
                    f"job {key[:16]}... completed without a stored result"
                )
            for index in indices:
                results[index] = artifact.result
        self.jobs_executed = len(pending)
        self.jobs_completed_elsewhere = len(pending) - executed_locally
        return results

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _recompute_inline(self, pending_jobs: dict[str, Job]) -> None:
        for job in pending_jobs.values():
            result = execute_job(job, artifact_dir=self.queue.store.root)
            self.queue.store.put(job, result)
            self.jobs_executed += 1

    def _drain_inline(self, batch: set[str]) -> None:
        """Work the queue as an inline worker until the batch is stored.

        The inline worker executes whatever it leases — its own batch or a
        cooperating producer's jobs — because a shared queue has no "my
        jobs first" ordering; reaping before each lease keeps a dead
        external worker from stalling the batch for more than one TTL.
        """
        worker = QueueWorker(
            self.queue,
            worker_id=self.worker_id,
            poll_interval=self.poll_interval,
        )
        deadline = (
            time.monotonic() + self.wait_timeout
            if self.wait_timeout is not None
            else None
        )
        beat = _HeartbeatThread(
            self.queue, self.worker_id, worker.heartbeat_interval
        )
        self.queue.heartbeat(self.worker_id)
        beat.start()
        try:
            while self.queue.outstanding(sorted(batch)):
                self.queue.reap()
                leased = self.queue.lease(self.worker_id)
                if leased is not None:
                    stats = WorkerStats()
                    worker._execute(leased, stats)
                    self.jobs_executed += stats.executed
                    continue
                if deadline is not None and time.monotonic() >= deadline:
                    raise ExperimentError(
                        f"queue batch incomplete after wait_timeout="
                        f"{self.wait_timeout}s; outstanding: "
                        f"{self.queue.outstanding(sorted(batch))}"
                    )
                time.sleep(self.poll_interval)
        finally:
            beat.stop()

    def _await_results(self, batch: set[str]) -> None:
        deadline = (
            time.monotonic() + self.wait_timeout
            if self.wait_timeout is not None
            else None
        )
        while True:
            outstanding = self.queue.outstanding(sorted(batch))
            if not outstanding:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise ExperimentError(
                    f"queue batch incomplete after wait_timeout="
                    f"{self.wait_timeout}s; outstanding jobs: "
                    f"{[key[:16] for key in outstanding]}"
                )
            self.queue.reap()
            time.sleep(self.poll_interval)
