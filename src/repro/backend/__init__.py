"""Pluggable array backend for the numerical hot path.

Every hot-path module (the stacked equilibrium solve, the batched
utilities, the DRL tensor/optimiser/GAE stack) routes its array operations
through the :data:`xp` namespace proxy defined here instead of importing
numpy directly.  Under the default numpy backend ``xp.<op>`` resolves to
the *identical* numpy function, so results are bitwise-unchanged and the
seam's only cost is one attribute dispatch per call site (measured at ~0
by ``benchmarks/test_bench_equilibrium.py``).  A GPU / array-API backend
(cupy, an array-API namespace, ...) slots in by name without touching any
caller.

Selection, in priority order:

1. an explicit :func:`set_backend` / :func:`use_backend` call,
2. the ``REPRO_BACKEND`` environment variable (read once, lazily, at the
   first array operation),
3. the built-in default: ``numpy``.

``REPRO_BACKEND=numpy`` is always available; any other value is treated
as an importable module name exposing an array namespace (e.g. ``cupy``).
Unknown or unimportable names raise :class:`ConfigurationError` naming
the backend, rather than silently falling back.

The contract every backend must honour is :data:`SEAM_ATTRS` — the exact
set of namespace attributes the hot path calls.  The conformance suite
(``tests/test_backend_conformance.py``) pins both the attribute set and
bitwise equality of the numpy-backend results against direct-numpy
references.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "ArrayBackend",
    "SEAM_ATTRS",
    "active_backend",
    "get_backend",
    "set_backend",
    "use_backend",
    "xp",
]

_ENV_VAR = "REPRO_BACKEND"
_DEFAULT_NAME = "numpy"

SEAM_ATTRS: tuple[str, ...] = (
    # array construction / conversion
    "asarray",
    "array",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "empty",
    "empty_like",
    "full",
    "arange",
    "concatenate",
    "stack",
    "broadcast_to",
    "expand_dims",
    "squeeze",
    "copyto",
    "append",
    "reshape",
    # dtypes / scalars
    "float64",
    "ndarray",
    "newaxis",
    "isfinite",
    "isnan",
    # elementwise math
    "maximum",
    "minimum",
    "clip",
    "abs",
    "sqrt",
    "exp",
    "log",
    "log1p",
    "tanh",
    "sign",
    "where",
    # reductions / scans
    "sum",
    "cumsum",
    "mean",
    "argmax",
    "any",
    "all",
    "max",
    "min",
    # misc used by the solvers / stack
    "errstate",
    "diag",
    "add",
    "multiply",
    "subtract",
    "divide",
)
"""Namespace attributes the seam-covered hot path dispatches through
:data:`xp`.  A candidate backend must expose every one of these (checked
by the conformance suite for the active backend)."""


@dataclass(frozen=True)
class ArrayBackend:
    """A named array namespace the hot path can run on.

    Attributes:
        name: the backend's selection name (``"numpy"``, a module path,
            or a caller-chosen label for hand-built namespaces).
        module: the namespace object whose attributes :data:`xp`
            forwards to (numpy itself for the default backend).
    """

    name: str
    module: Any

    @property
    def is_numpy(self) -> bool:
        """Whether this backend dispatches straight to numpy."""
        import numpy

        return self.module is numpy

    def missing_seam_attrs(self) -> list[str]:
        """Seam attributes this backend's namespace does not provide."""
        return [a for a in SEAM_ATTRS if not hasattr(self.module, a)]


def _load(name: str) -> ArrayBackend:
    if name == _DEFAULT_NAME:
        import numpy

        return ArrayBackend(_DEFAULT_NAME, numpy)
    try:
        module = importlib.import_module(name)
    except ImportError as exc:
        raise ConfigurationError(
            f"array backend {name!r} is not importable: {exc}. "
            f"Set {_ENV_VAR} to 'numpy' or to an importable array "
            f"namespace module."
        ) from exc
    backend = ArrayBackend(name, module)
    missing = backend.missing_seam_attrs()
    if missing:
        raise ConfigurationError(
            f"array backend {name!r} is missing required namespace "
            f"attributes: {missing}"
        )
    return backend


# The active backend; None until first resolution so the environment
# variable is honoured however late it is set before first array use.
_ACTIVE: ArrayBackend | None = None


def get_backend(name: str | None = None) -> ArrayBackend:
    """Resolve a backend by ``name`` (or the environment / default).

    Does not change the active backend; use :func:`set_backend` or
    :func:`use_backend` for that.
    """
    if name is None:
        name = os.environ.get(_ENV_VAR, _DEFAULT_NAME)
    return _load(name)


def active_backend() -> ArrayBackend:
    """The backend :data:`xp` currently dispatches to (resolving the
    ``REPRO_BACKEND`` environment variable on first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend()
    return _ACTIVE


def set_backend(backend: ArrayBackend | str | None) -> ArrayBackend:
    """Select the active backend by name or instance.

    ``None`` resets to the environment/default resolution on next use.
    Returns the newly active backend (resolving immediately unless
    resetting).
    """
    global _ACTIVE
    xp.__dict__.clear()
    if backend is None:
        _ACTIVE = None
        return active_backend()
    if isinstance(backend, str):
        backend = get_backend(backend)
    _ACTIVE = backend
    return backend


class use_backend:
    """Context manager pinning the active backend for a ``with`` block.

    Accepts a name or a prebuilt :class:`ArrayBackend` (the benchmark
    suite uses a counting wrapper around numpy to measure seam
    dispatches).  Restores the previous selection state on exit.
    """

    def __init__(self, backend: ArrayBackend | str) -> None:
        self._backend = backend
        self._previous: ArrayBackend | None = None

    def __enter__(self) -> ArrayBackend:
        global _ACTIVE
        self._previous = _ACTIVE
        return set_backend(self._backend)

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        xp.__dict__.clear()
        _ACTIVE = self._previous


class _NamespaceProxy:
    """Forwards attribute access to the active backend's namespace.

    ``xp.maximum`` *is* ``numpy.maximum`` under the default backend — the
    same function object — so every downstream result stays
    bitwise-identical.  Resolved attributes are memoised in the instance
    ``__dict__`` (cleared by :func:`set_backend` / :class:`use_backend` on
    every switch), so steady-state dispatch is a plain attribute hit with
    no ``__getattr__`` overhead at all.
    """

    def __getattr__(self, name: str) -> Any:
        value = getattr(active_backend().module, name)
        self.__dict__[name] = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<xp -> {active_backend().name}>"


xp = _NamespaceProxy()
"""The array namespace of the active backend (numpy by default)."""
