"""Content-keyed, invalidation-aware equilibrium cache.

The immutable :class:`~repro.core.marketstack.MarketStack` memoises its
solve *per stack object* — two overlapping stacks (a robustness sweep
re-solving the same base market under 20 fading draws, an oracle grid
rebuilt after one cell changed) share nothing. This cache keys each
*market* by its exact content instead: the canonical-JSON form of
:func:`repro.experiments.scheduler.market_to_payload`, whose float fields
round-trip bit-exactly, so two markets get the same key iff a stacked
solve would hand them bitwise the same row. Lookups that miss are solved
together as one sub-stack through the ordinary stacked path — row-locality
makes the grouping invisible — and every market seen once is free in every
later stack that contains it, whatever stack object it arrives in.

Content keys cannot go stale (a mutated market *is* a different key), so
"invalidation" here means dropping rows to bound memory or to force a
re-solve; for in-place mutable state use
:class:`~repro.core.marketstack.MutableMarketStack`, whose dirty sets are
the index-based face of the same idea.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.marketstack import MarketStack
from repro.core.stackelberg import StackelbergEquilibrium, StackelbergMarket
from repro.errors import InfeasibleMarketError

__all__ = ["EquilibriumCache", "shared_cache"]


@dataclass(frozen=True)
class _Infeasible:
    """Negative-result marker: the market admits no profitable trade."""

    unit_cost: float


class EquilibriumCache:
    """Per-market equilibrium rows cached across stacks by market content.

    One instance per workload (or the process-wide :func:`shared_cache`);
    ``refine`` is fixed per cache so every row comes from the same solve
    mode. Infeasible markets are cached too — repeated sweeps do not
    re-solve a known-degenerate cell just to re-raise.
    """

    def __init__(self, *, refine: bool = True) -> None:
        self._refine = bool(refine)
        self._rows: dict[str, StackelbergEquilibrium | _Infeasible] = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def refine(self) -> bool:
        """The solve mode every cached row was produced under."""
        return self._refine

    @property
    def hits(self) -> int:
        """Market lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Market lookups that required a solve."""
        return self._misses

    @staticmethod
    def market_key(market: StackelbergMarket) -> str:
        """The market's content key: canonical JSON of its exact-float
        wire payload (two markets share a key iff their solves share
        bits)."""
        # Lazy import: repro.experiments imports the service package, so a
        # top-level import here would be circular.
        from repro.experiments.scheduler import market_to_payload

        return json.dumps(
            market_to_payload(market), sort_keys=True, separators=(",", ":")
        )

    def invalidate(self, market: StackelbergMarket) -> bool:
        """Drop ``market``'s cached row; True if one was present."""
        return self._rows.pop(self.market_key(market), None) is not None

    def clear(self) -> None:
        """Drop every cached row and reset the hit/miss counters."""
        self._rows.clear()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def solve(
        self,
        markets: Sequence[StackelbergMarket],
        *,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> None:
        """Ensure every market's row is cached.

        The unseen markets (deduplicated by key) are solved together as
        one sub-stack — chunked when either knob is set — and their scalar
        rows stored. Already-cached markets cost a key computation only.
        """
        keys = [self.market_key(m) for m in markets]
        unseen: dict[str, StackelbergMarket] = {}
        for key, market in zip(keys, markets):
            if key not in self._rows and key not in unseen:
                unseen[key] = market
        self._misses += len(unseen)
        self._hits += len(keys) - len(unseen)
        if not unseen:
            return
        sub = MarketStack(list(unseen.values()))
        if chunk_size is not None or chunk_bytes is not None:
            solved = sub.equilibria_stacked_chunked(
                refine=self._refine,
                chunk_size=chunk_size,
                chunk_bytes=chunk_bytes,
            )
        else:
            solved = sub.equilibria_stacked(refine=self._refine)
        for row, key in enumerate(unseen):
            if bool(solved.feasible[row]):
                self._rows[key] = solved.equilibrium(row)
            else:
                self._rows[key] = _Infeasible(float(solved.unit_costs[row]))

    def equilibrium(self, market: StackelbergMarket) -> StackelbergEquilibrium:
        """``market``'s equilibrium, solving on a miss.

        Raises:
            InfeasibleMarketError: if the market admits no profitable
                trade — the identical semantics (and message) of
                :meth:`StackedEquilibria.equilibrium`.
        """
        self.solve([market])
        return self._row(self.market_key(market))

    def equilibria(
        self,
        markets: Sequence[StackelbergMarket],
        *,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> list[StackelbergEquilibrium]:
        """Every market's equilibrium, solving the misses as one sub-stack.

        Raises:
            InfeasibleMarketError: if any member market is infeasible
                (matching a loop of per-market ``equilibrium()`` calls).
        """
        self.solve(markets, chunk_size=chunk_size, chunk_bytes=chunk_bytes)
        return [self._row(self.market_key(m)) for m in markets]

    def _row(self, key: str) -> StackelbergEquilibrium:
        row = self._rows[key]
        if isinstance(row, _Infeasible):
            raise InfeasibleMarketError(
                "every VMU's drop-out threshold is at or below the unit "
                f"cost C={row.unit_cost}; no profitable trade exists"
            )
        return row


_SHARED: EquilibriumCache | None = None


def shared_cache() -> EquilibriumCache:
    """The process-wide refined-solve cache.

    Shared by repeated robustness sweeps (``reuse_cache=True``) and any
    caller that wants cross-stack reuse without threading a cache object
    through spec parameters (which must stay JSON-serialisable).
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = EquilibriumCache(refine=True)
    return _SHARED
