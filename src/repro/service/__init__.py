"""``repro.service`` — the low-latency live pricing service.

The "millions of users" workload in miniature: a long-running
:class:`LivePricingService` holds a mutable stack of markets, applies
point updates (VMU churn, fading drift, demand shifts) by dirtying
exactly the touched rows, and answers price queries from an
incrementally maintained :class:`~repro.core.marketstack.StackedEquilibria`
— bitwise-equal to a cold full solve at every step, at a fraction of the
work. :class:`EquilibriumCache` is the cross-stack face of the same idea:
equilibrium rows keyed by market *content*, reused across overlapping
stacks (robustness sweeps, oracle grids).
"""

from repro.service.cache import EquilibriumCache, shared_cache
from repro.service.pricing import (
    FadingDrift,
    LivePricingService,
    PriceQuote,
    Query,
    ServiceStats,
    UpdateMarket,
    VmuJoin,
    VmuLeave,
    latency_percentile,
)

__all__ = [
    "EquilibriumCache",
    "FadingDrift",
    "LivePricingService",
    "PriceQuote",
    "Query",
    "ServiceStats",
    "UpdateMarket",
    "VmuJoin",
    "VmuLeave",
    "latency_percentile",
    "shared_cache",
]
