"""The live pricing service: queries and updates over a mutable stack.

A long-running MSP answering "what is the optimal migration price for
this market *right now*" while the market state churns under it. The
service owns a :class:`~repro.core.marketstack.MutableMarketStack`;
update events (a VMU joins or leaves, fading drifts, a whole market is
replaced) mark exactly their row dirty, and the first query after any
burst of updates triggers one incremental re-solve of the dirty rows —
every further query in that micro-window reads the same cached
:class:`~repro.core.marketstack.StackedEquilibria` row for free. Queries
therefore batch naturally: interleave 100 updates and 1 000 queries and
the service pays ~(number of update bursts) sub-stack solves, not 1 000.

Every query is timed individually (the solve-triggering query pays the
window's solve), so :meth:`LivePricingService.stats` reports honest
per-query p50/p99 latency and throughput.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.marketstack import MutableMarketStack, StackedEquilibria
from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError

__all__ = [
    "FadingDrift",
    "LivePricingService",
    "PriceQuote",
    "Query",
    "ServiceStats",
    "UpdateMarket",
    "VmuJoin",
    "VmuLeave",
    "latency_percentile",
]


@dataclass(frozen=True)
class Query:
    """Ask for market ``market_index``'s current equilibrium quote."""

    market_index: int


@dataclass(frozen=True)
class UpdateMarket:
    """Replace market ``market_index`` wholesale (e.g. demand drift)."""

    market_index: int
    market: StackelbergMarket


@dataclass(frozen=True)
class VmuJoin:
    """``vmu`` joins market ``market_index``."""

    market_index: int
    vmu: VmuProfile


@dataclass(frozen=True)
class VmuLeave:
    """VMU ``vmu_id`` leaves market ``market_index``."""

    market_index: int
    vmu_id: str


@dataclass(frozen=True)
class FadingDrift:
    """Market ``market_index``'s RSU link drifts to ``fading_gain``."""

    market_index: int
    fading_gain: float


@dataclass(frozen=True)
class PriceQuote:
    """One answered query: the market's current equilibrium summary.

    ``feasible=False`` markets quote ``nan`` numerics instead of raising —
    a service does not abort the request loop because one market is
    degenerate right now.
    """

    market_index: int
    feasible: bool
    price: float
    msp_utility: float
    capacity_binding: bool
    price_cap_binding: bool


@dataclass(frozen=True)
class ServiceStats:
    """Service-lifetime counters (see :meth:`LivePricingService.stats`)."""

    queries: int
    updates: int
    solves: int
    rows_resolved: int
    busy_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    max_ms: float


def latency_percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a latency sample.

    Deterministic and interpolation-free: the reported p99 is a latency
    that actually occurred. Empty samples report ``0.0``.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    if len(latencies) == 0:
        return 0.0
    ordered = sorted(latencies)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float error
    return float(ordered[int(rank) - 1])


class LivePricingService:
    """Serve equilibrium price quotes over live, mutating market state.

    Args:
        markets: the initial markets — a sequence, or an existing
            :class:`MutableMarketStack` to serve over directly.
        refine: solve mode for every answer (golden refinement on/off).
        warm_start: restart dirty rows' refinement from their previous
            equilibrium price (tolerance-level answers instead of
            bitwise; see :class:`MutableMarketStack`).
        chunk_size / chunk_bytes: chunk knobs of the underlying solves
            (ignored when an existing stack is passed — it has its own).
    """

    def __init__(
        self,
        markets: Iterable[StackelbergMarket] | MutableMarketStack,
        *,
        refine: bool = True,
        warm_start: bool = False,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> None:
        if isinstance(markets, MutableMarketStack):
            self._stack = markets
        else:
            self._stack = MutableMarketStack(
                markets, chunk_size=chunk_size, chunk_bytes=chunk_bytes
            )
        self._refine = bool(refine)
        self._warm_start = bool(warm_start)
        self._latencies: list[float] = []
        self._updates = 0
        self._update_s = 0.0

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def stack(self) -> MutableMarketStack:
        """The live market state the service prices over."""
        return self._stack

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return self._stack.num_markets

    def equilibria(self) -> StackedEquilibria:
        """The current full solution (solving dirty rows if any) — the
        bulk face of :meth:`query`, and the live-vs-cold test hook."""
        return self._stack.equilibria_live(
            refine=self._refine, warm_start=self._warm_start
        )

    # ------------------------------------------------------------------ #
    # the request loop
    # ------------------------------------------------------------------ #
    def query(self, market_index: int) -> PriceQuote:
        """Answer one price query (timed; may trigger a dirty-row solve)."""
        start = time.perf_counter()
        solved = self.equilibria()
        index = int(market_index)
        quote = PriceQuote(
            market_index=index,
            feasible=bool(solved.feasible[index]),
            price=float(solved.prices[index]),
            msp_utility=float(solved.msp_utilities[index]),
            capacity_binding=bool(solved.capacity_binding[index]),
            price_cap_binding=bool(solved.price_cap_binding[index]),
        )
        self._latencies.append(time.perf_counter() - start)
        return quote

    def apply(self, event) -> None:
        """Apply one update event (marks its market's row dirty)."""
        start = time.perf_counter()
        if isinstance(event, UpdateMarket):
            self._stack.update_market(event.market_index, event.market)
        elif isinstance(event, VmuJoin):
            self._stack.join(event.market_index, event.vmu)
        elif isinstance(event, VmuLeave):
            self._stack.leave(event.market_index, event.vmu_id)
        elif isinstance(event, FadingDrift):
            self._stack.set_fading_gain(event.market_index, event.fading_gain)
        else:
            raise ConfigurationError(
                f"unknown service event {type(event).__name__}"
            )
        self._updates += 1
        self._update_s += time.perf_counter() - start

    def serve(self, events: Iterable[object]) -> list[PriceQuote]:
        """Run the request loop over an event stream, in order.

        :class:`Query` events are answered (and their quotes returned, in
        arrival order); everything else is applied as an update.
        Consecutive queries between updates form a micro-window sharing
        one solve — the first query pays it, the rest read cached rows.
        """
        quotes: list[PriceQuote] = []
        for event in events:
            if isinstance(event, Query):
                quotes.append(self.query(event.market_index))
            else:
                self.apply(event)
        return quotes

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Lifetime latency/throughput counters.

        ``qps`` is queries over *busy* time (query + update handling) —
        the rate the service actually sustained while working, independent
        of idle gaps between events.
        """
        query_s = float(sum(self._latencies))
        busy_s = query_s + self._update_s
        queries = len(self._latencies)
        return ServiceStats(
            queries=queries,
            updates=self._updates,
            solves=self._stack.solve_count,
            rows_resolved=self._stack.rows_resolved,
            busy_s=busy_s,
            qps=queries / busy_s if busy_s > 0.0 else 0.0,
            p50_ms=1e3 * latency_percentile(self._latencies, 50.0),
            p99_ms=1e3 * latency_percentile(self._latencies, 99.0),
            max_ms=1e3 * max(self._latencies, default=0.0),
        )

    def reset_stats(self) -> None:
        """Zero the latency sample and update counters (the stack's solve
        counters keep accumulating — they belong to the stack)."""
        self._latencies.clear()
        self._updates = 0
        self._update_s = 0.0
