"""The VT-migration pricing POMDP (paper Sec. IV-A).

State (Sec. IV-A1): ``S_k = {p_k, b_k}`` — the current price and demand
vector. Observation (Eq. 11): the last ``L`` rounds of (price, demands),
``o_k = {p_{k-L}, b_{k-L}, ..., p_{k-1}, b_{k-1}}``, randomly initialised
while ``k < L``. Action: the price ``p_k ∈ [C, p_max]``. Reward (Eq. 12):
binary — 1 iff the MSP's round utility reaches a new episode best.

Observations are normalised (prices by ``p_max``, demands by natural
capacity) so the 64-unit tanh trunk sees O(1) inputs; the ``info`` dict
carries the raw round quantities for logging and evaluation.

``reward_mode``:
- ``"paper"`` — Eq. (12) exactly;
- ``"utility"`` — the MSP's round utility scaled to O(1); a shaped
  alternative used by the ablation experiment (E7 in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from repro.core.stackelberg import StackelbergMarket
from repro.errors import EnvironmentError_
from repro.utils.rng import SeedLike, as_generator

__all__ = ["MigrationGameEnv"]

_REWARD_MODES = ("paper", "utility")


class MigrationGameEnv:
    """POMDP wrapper around a :class:`StackelbergMarket`."""

    def __init__(
        self,
        market: StackelbergMarket,
        *,
        history_length: int = 4,
        rounds_per_episode: int = 100,
        reward_mode: str = "paper",
        reward_tolerance: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        if history_length < 1:
            raise EnvironmentError_(
                f"history_length must be >= 1, got {history_length}"
            )
        if rounds_per_episode < 1:
            raise EnvironmentError_(
                f"rounds_per_episode must be >= 1, got {rounds_per_episode}"
            )
        if reward_mode not in _REWARD_MODES:
            raise EnvironmentError_(
                f"reward_mode must be one of {_REWARD_MODES}, got {reward_mode!r}"
            )
        if reward_tolerance < 0.0:
            raise EnvironmentError_(
                f"reward_tolerance must be >= 0, got {reward_tolerance}"
            )
        self.market = market
        self.history_length = history_length
        self.rounds_per_episode = rounds_per_episode
        self.reward_mode = reward_mode
        self.reward_tolerance = float(reward_tolerance)
        self._rng = as_generator(seed)
        self._history: deque[np.ndarray] = deque(maxlen=history_length)
        self._round = 0
        self._best_utility = float("-inf")
        self._started = False
        # O(1) scale for the shaped reward: profit of selling the full
        # capacity at the maximum margin.
        config = market.config
        self._utility_scale = (
            (config.max_price - config.unit_cost) * config.capacity_natural
        )

    # ------------------------------------------------------------------ #
    @property
    def observation_dim(self) -> int:
        """L · (1 + N): price plus one demand entry per VMU, per round."""
        return self.history_length * (1 + self.market.num_vmus)

    @property
    def action_low(self) -> float:
        """Lower price bound ``C``."""
        return self.market.config.unit_cost

    @property
    def action_high(self) -> float:
        """Upper price bound ``p_max``."""
        return self.market.config.max_price

    @property
    def round_index(self) -> int:
        """Current round ``k`` within the episode."""
        return self._round

    @property
    def best_utility(self) -> float:
        """Episode-best MSP utility ``U^k_best`` so far."""
        return self._best_utility

    # ------------------------------------------------------------------ #
    def _normalise_entry(self, price: float, demands: np.ndarray) -> np.ndarray:
        config = self.market.config
        scaled_price = price / config.max_price
        scaled_demands = demands / config.capacity_natural
        return np.concatenate(([scaled_price], scaled_demands))

    def _observation(self) -> np.ndarray:
        return np.concatenate(list(self._history))

    def reset(self) -> np.ndarray:
        """Start a new episode with a randomly initialised history
        (the paper: ``p_{k-L}, b_{k-L}`` generated randomly when k < L).

        The ``L`` priming rounds are solved as one price batch;
        :class:`repro.env.vector.VectorMigrationEnv` batches further, one
        stacked ``(E, L)`` solve for the whole fleet, via the
        draw/prime split below.
        """
        prices = self._draw_reset_prices()
        return self._prime_history(prices, self.market.allocate_batch(prices))

    def _draw_reset_prices(self) -> np.ndarray:
        """The ``L`` random priming prices, drawn from this env's own stream.

        One vectorised ``uniform(size=L)`` draw — it consumes the stream
        exactly like ``L`` scalar draws, so the batched reset sees the same
        prices the historical per-round loop drew.
        """
        config = self.market.config
        return self._rng.uniform(
            config.unit_cost, config.max_price, size=self.history_length
        )

    def _prime_history(
        self, prices: np.ndarray, allocations: np.ndarray
    ) -> np.ndarray:
        """Fill the observation window from already-solved priming rounds.

        Split out of :meth:`reset` so the vector env can solve a whole
        fleet's priming rounds in one stacked pass and feed each env its
        ``(L, N)`` block — the history layout and episode-state reset stay
        in exactly one place.
        """
        self._history.clear()
        for price, demands in zip(prices, allocations):
            self._history.append(self._normalise_entry(float(price), demands))
        self._round = 0
        self._best_utility = float("-inf")
        self._started = True
        return self._observation()

    def step(self, action: float) -> tuple[np.ndarray, float, bool, dict[str, Any]]:
        """Play one pricing round.

        The action is clamped to ``[C, p_max]`` (the policy's feasible
        action space, Sec. IV-A2). Returns the next observation, the
        Eq.-12 (or shaped) reward, the episode-done flag, and an info dict
        with the raw round outcome.
        """
        self._require_steppable()
        price = float(np.clip(action, self.action_low, self.action_high))
        outcome = self.market.round_outcome(price)
        return self._advance(float(action), price, outcome)

    def _require_steppable(self) -> None:
        if not self._started:
            raise EnvironmentError_("call reset() before step()")
        if self._round >= self.rounds_per_episode:
            raise EnvironmentError_(
                "episode already finished; call reset() to start a new one"
            )

    def _advance(
        self, raw_action: float, price: float, outcome
    ) -> tuple[np.ndarray, float, bool, dict[str, Any]]:
        """Apply one already-solved market round to the POMDP state.

        Split out of :meth:`step` so :class:`repro.env.vector.VectorMigrationEnv`
        can solve a whole env batch's markets in one vectorised pass and
        feed each env its own row — the reward logic, history update, and
        info dict stay in exactly one place.
        """
        utility = outcome.msp_utility

        if self.reward_mode == "paper":
            # Eq. (12) with an equality tolerance: utilities are continuous,
            # so exact ">= best" can never be re-attained under exploration
            # noise; the tolerance (relative to the utility scale) lets a
            # converged policy collect reward every round, which is what
            # makes the episode return converge to K as in Fig. 2(a).
            slack = self.reward_tolerance * self._utility_scale
            reward = 1.0 if utility >= self._best_utility - slack else 0.0
        else:
            reward = utility / self._utility_scale
        if utility >= self._best_utility:
            self._best_utility = utility

        self._history.append(self._normalise_entry(price, outcome.allocations))
        self._round += 1
        done = self._round >= self.rounds_per_episode
        info: dict[str, Any] = {
            "price": price,
            "raw_action": raw_action,
            "msp_utility": utility,
            "best_utility": self._best_utility,
            "demands": outcome.demands.copy(),
            "allocations": outcome.allocations.copy(),
            "vmu_utilities": outcome.vmu_utilities.copy(),
            "capacity_binding": outcome.capacity_binding,
            "round": self._round,
        }
        return self._observation(), reward, done, info
