"""Minimal environment API (gym-style) used by the DRL stack.

A deliberately small protocol: ``reset() -> observation`` and
``step(action) -> (observation, reward, done, info)``. The trainer and
wrappers only rely on this surface, so any POMDP formulation of the pricing
game (or a user's custom market) plugs in.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["Environment", "StepResult"]

StepResult = tuple[np.ndarray, float, bool, dict[str, Any]]
"""(observation, reward, done, info)."""


@runtime_checkable
class Environment(Protocol):
    """Gym-style episodic environment with a 1-D continuous action."""

    @property
    def observation_dim(self) -> int:
        """Width of the observation vector."""
        ...

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial observation."""
        ...

    def step(self, action: float) -> StepResult:
        """Advance one round with the given action."""
        ...
