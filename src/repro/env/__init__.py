"""POMDP environments for the pricing game and composable wrappers."""

from repro.env.base import Environment, StepResult
from repro.env.migration_game import MigrationGameEnv
from repro.env.nonstationary import ChurnConfig, ChurningMigrationEnv
from repro.env.stochastic import StochasticMarketEnv
from repro.env.vector import VectorMigrationEnv
from repro.env.wrappers import EpisodeStats, NormalizeObservation, RunningMeanStd

__all__ = [
    "Environment",
    "StepResult",
    "MigrationGameEnv",
    "StochasticMarketEnv",
    "VectorMigrationEnv",
    "ChurnConfig",
    "ChurningMigrationEnv",
    "EpisodeStats",
    "NormalizeObservation",
    "RunningMeanStd",
]
