"""Vectorised POMDP: step ``E`` independent pricing games as one batch.

:class:`VectorMigrationEnv` holds ``E`` :class:`MigrationGameEnv` instances
(different seeds and/or different markets) and exposes batched
``reset() -> (E, obs_dim)`` / ``step(actions (E,)) -> (obs, rewards, dones,
infos)``. Each member env keeps its *own* RNG stream and episode state, so
the vectorised run reproduces the exact per-episode trace of ``E``
sequential single-env runs with the same seeds — bit for bit.

The speed comes from two places:

- every round's market stage is one vectorised solve for the whole batch:
  members sharing one :class:`StackelbergMarket` object go through a single
  :meth:`StackelbergMarket.outcomes_batch` call, and *heterogeneous* fleets
  (a different market per member env) go through one
  :meth:`repro.core.marketstack.MarketStack.outcomes_stacked` pass — either
  way a single numpy pass instead of ``E`` scalar Stackelberg solves;
- the DRL trainer feeds the whole ``(E, obs_dim)`` observation batch
  through the actor-critic in one forward pass.

Exactness holds because the scalar market path itself delegates to the
stacked evaluator (``outcomes_batch`` is the ``M = 1`` broadcast case of
``outcomes_stacked``) — every route runs the identical numpy operations
row for row.

Heterogeneous fleets must still share one observation layout (same
population size ``N`` and ``history_length``) and one episode length;
costs, price caps, capacities, populations' parameters, and links may all
differ per member. Members may then also differ in their feasible price
interval ``[C, p_max]`` — each env clamps its own action to its own
bounds, and :attr:`action_low` / :attr:`action_high` report the envelope.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.marketstack import MarketStack
from repro.core.stackelberg import StackelbergMarket
from repro.env.migration_game import MigrationGameEnv
from repro.errors import EnvironmentError_
from repro.utils.rng import SeedLike, spawn_children

__all__ = ["VectorMigrationEnv"]


class VectorMigrationEnv:
    """A batch of :class:`MigrationGameEnv` stepped in lockstep."""

    def __init__(self, envs: Sequence[MigrationGameEnv]) -> None:
        if len(envs) == 0:
            raise EnvironmentError_("need at least one environment")
        first = envs[0]
        for env in envs[1:]:
            if env.observation_dim != first.observation_dim:
                raise EnvironmentError_(
                    "all environments must share one observation layout; "
                    f"got dims {first.observation_dim} and {env.observation_dim}"
                )
            if env.rounds_per_episode != first.rounds_per_episode:
                raise EnvironmentError_(
                    "all environments must share rounds_per_episode; got "
                    f"{first.rounds_per_episode} and {env.rounds_per_episode}"
                )
        self._envs = tuple(envs)
        self._action_lows = np.array([env.action_low for env in envs])
        self._action_highs = np.array([env.action_high for env in envs])
        # Members sharing one market instance skip the stack's padding and
        # solve as a plain single-market price batch.
        self._shared_market = all(env.market is first.market for env in envs)
        self._stack: MarketStack | None = None
        # Uniform shared-market batches (one market object, one reward
        # configuration, one history window — what from_market builds) take
        # a fully vectorised step: the POMDP bookkeeping itself runs as
        # whole-batch array ops instead of E per-env Python passes.
        self._uniform_shared = self._shared_market and all(
            env.reward_mode == first.reward_mode
            and env.reward_tolerance == first.reward_tolerance
            and env.history_length == first.history_length
            for env in envs
        )
        # Observation cache for the vectorised step: the next observation
        # is the previous one shifted left by one history entry. Written on
        # every reset()/step(), so path switches stay consistent.
        self._observations: np.ndarray | None = None

    @classmethod
    def from_market(
        cls,
        market: StackelbergMarket,
        num_envs: int,
        *,
        seeds: Sequence[SeedLike] | None = None,
        seed: SeedLike = None,
        **env_kwargs: Any,
    ) -> "VectorMigrationEnv":
        """Build ``num_envs`` envs over one shared market.

        RNG-stream contract: with explicit ``seeds`` each env gets its own
        entry. Otherwise an integer ``seed`` gives env 0 the seed itself —
        so env 0 matches a scalar ``MigrationGameEnv(market, seed=seed)``
        exactly, which is what makes ``num_envs=1`` runs bit-compatible
        with the historical single-env path — while envs ``e >= 1`` draw
        independent ``SeedSequence`` children of the root seed. (Children,
        not ``seed + e``: offset seeds would make adjacent root seeds share
        most of their env streams, correlating the "independent" samples a
        multi-seed comparison feeds its significance test.) A generator
        ``seed`` spawns independent child streams; ``None`` leaves every
        env nondeterministic.
        """
        return cls.from_markets(
            [market] * num_envs, seeds=seeds, seed=seed, **env_kwargs
        )

    @classmethod
    def from_markets(
        cls,
        markets: Sequence[StackelbergMarket],
        *,
        seeds: Sequence[SeedLike] | None = None,
        seed: SeedLike = None,
        **env_kwargs: Any,
    ) -> "VectorMigrationEnv":
        """Build one env per market — a (possibly heterogeneous) fleet.

        Same RNG-stream contract as :meth:`from_market`, with
        ``num_envs = len(markets)``. The markets may differ in costs,
        capacities, links, and population parameters; they must share the
        population size ``N`` (one observation layout — enforced by the
        constructor). Stepping such a fleet batch-solves all member markets
        in one :meth:`MarketStack.outcomes_stacked` pass.
        """
        num_envs = len(markets)
        if num_envs < 1:
            raise EnvironmentError_(f"need at least one market, got {num_envs}")
        if seeds is not None:
            if len(seeds) != num_envs:
                raise EnvironmentError_(
                    f"got {len(seeds)} seeds for {num_envs} envs"
                )
            env_seeds = list(seeds)
        elif seed is None:
            env_seeds = [None] * num_envs
        elif isinstance(seed, (int, np.integer)):
            children = np.random.SeedSequence(int(seed)).spawn(num_envs - 1)
            env_seeds = [int(seed), *children]
        else:
            env_seeds = spawn_children(seed, num_envs)
        return cls(
            [
                MigrationGameEnv(market, seed=env_seed, **env_kwargs)
                for market, env_seed in zip(markets, env_seeds)
            ]
        )

    # ------------------------------------------------------------------ #
    @property
    def envs(self) -> tuple[MigrationGameEnv, ...]:
        """The member environments (shared state — do not step directly)."""
        return self._envs

    @property
    def num_envs(self) -> int:
        """Batch size ``E``."""
        return len(self._envs)

    @property
    def observation_dim(self) -> int:
        """Per-env observation width (shared across the batch)."""
        return self._envs[0].observation_dim

    @property
    def rounds_per_episode(self) -> int:
        """Episode length ``K`` (shared across the batch)."""
        return self._envs[0].rounds_per_episode

    @property
    def action_low(self) -> float:
        """Lower price bound: the fleet envelope ``min_e C_e`` (every
        member's own ``C`` for a homogeneous fleet)."""
        return float(self._action_lows.min())

    @property
    def action_high(self) -> float:
        """Upper price bound: the fleet envelope ``max_e p_max,e``."""
        return float(self._action_highs.max())

    # ------------------------------------------------------------------ #
    def reset(self) -> np.ndarray:
        """Reset every env (each on its own RNG stream); returns ``(E, obs_dim)``.

        The fleet's ``E · L`` history-priming market solves collapse into
        one vectorised pass: each env draws its ``L`` priming prices from
        its own stream (same order as a sequential reset), then a shared
        market solves the flattened ``(E·L,)`` price batch — and a
        heterogeneous fleet solves the ``(E, L)`` grid through one
        :meth:`MarketStack.outcomes_stacked` call. Observations are
        bit-identical to per-env ``reset()`` loops.
        """
        if self.num_envs == 1 or len(
            {env.history_length for env in self._envs}
        ) != 1:
            # Mixed observation windows (same obs_dim, different L·N split)
            # can't share one price matrix; fall back to per-env resets.
            self._observations = np.stack([env.reset() for env in self._envs])
            return self._observations
        price_rows = np.stack([env._draw_reset_prices() for env in self._envs])
        if self._shared_market:
            flat = self._envs[0].market.allocate_batch(price_rows.reshape(-1))
            blocks = flat.reshape(*price_rows.shape, -1)
        else:
            if self._stack is None:
                self._stack = MarketStack([env.market for env in self._envs])
            stacked = self._stack.outcomes_stacked(price_rows)
            blocks = stacked.allocations
        self._observations = np.stack(
            [
                env._prime_history(price_rows[e], blocks[e])
                for e, env in enumerate(self._envs)
            ]
        )
        return self._observations

    def equilibria(self, *, refine: bool = True):
        """Every member market's Stackelberg equilibrium, one stacked solve.

        Shared-market batches solve once and replicate; heterogeneous
        fleets solve all members through a single
        :meth:`MarketStack.equilibria_stacked` pass (memoised on the
        fleet's stack, so repeated calls are free). Returns one
        :class:`repro.core.stackelberg.StackelbergEquilibrium` per env —
        the oracle reference the baselines replay.

        Raises:
            InfeasibleMarketError: if any member market admits no
                profitable trade.
        """
        if self._shared_market:
            # One memoised solve; each env still gets its own equilibrium
            # object (fresh array copies), like the heterogeneous path —
            # replicating one object would alias demands across envs.
            market = self._envs[0].market
            return [market.equilibrium(refine=refine) for _ in self._envs]
        if self._stack is None:
            self._stack = MarketStack([env.market for env in self._envs])
        solved = self._stack.equilibria_stacked(refine=refine)
        return [solved.equilibrium(e) for e in range(self.num_envs)]

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict[str, Any]]]:
        """Advance every env one round with its own action.

        Args:
            actions: raw prices, shape ``(E,)`` (scalars are broadcast).

        Returns:
            ``(observations (E, obs_dim), rewards (E,), dones (E,), infos)``
            where ``infos`` is one dict per env, identical to the scalar
            env's info contract.
        """
        acts = np.asarray(actions, dtype=float)
        if acts.shape != (self.num_envs,):
            acts = np.broadcast_to(acts, (self.num_envs,))
        if self.num_envs > 1:
            if self._uniform_shared and self._observations is not None:
                return self._step_shared_fast(acts)
            results = (
                self._step_shared(acts)
                if self._shared_market
                else self._step_stacked(acts)
            )
        else:
            results = [env.step(float(a)) for env, a in zip(self._envs, acts)]
        observations = np.stack([r[0] for r in results])
        rewards = np.array([r[1] for r in results], dtype=float)
        dones = np.array([r[2] for r in results], dtype=bool)
        infos = [r[3] for r in results]
        self._observations = observations
        return observations, rewards, dones, infos

    def _clip_actions(self, actions: np.ndarray) -> np.ndarray:
        """Each member env's own ``[C, p_max]`` clamp, vectorised."""
        return np.clip(actions, self._action_lows, self._action_highs)

    def _step_shared(self, actions: np.ndarray):
        """One vectorised market solve for a shared-market batch."""
        for env in self._envs:
            env._require_steppable()
        prices = self._clip_actions(actions)
        batch = self._envs[0].market.outcomes_batch(prices)
        return [
            env._advance(float(actions[e]), float(prices[e]), batch.row(e))
            for e, env in enumerate(self._envs)
        ]

    def _step_shared_fast(self, actions: np.ndarray):
        """Whole-batch POMDP step for a uniform shared-market fleet.

        The market stage is the same single :meth:`outcomes_batch` solve as
        :meth:`_step_shared`; the difference is the bookkeeping around it.
        Rewards, episode bests, and the shifted observation window are
        computed as ``(E,)``/``(E, obs_dim)`` array ops instead of ``E``
        per-env ``_advance`` passes — every operation is the elementwise
        twin of the scalar one, so the trace stays bit-identical. Member
        envs are kept in sync (history deque, round counter, episode best)
        so mid-episode reads and path switches see the same state.
        """
        envs = self._envs
        for env in envs:
            env._require_steppable()
        prices = self._clip_actions(actions)
        first = envs[0]
        # The clamp just guaranteed finite positive prices, so skip the
        # public wrappers' re-validation and solve the trusted M = 1 grid
        # directly — the identical numpy pass ``outcomes_batch`` runs.
        out = first.market.as_stack()._outcomes_trusted(prices[np.newaxis, :])
        utilities = out.msp_utilities[0]
        demands = out.demands[0]
        allocations = out.allocations[0]
        vmu_utilities = out.vmu_utilities[0]
        binding = out.capacity_binding[0]
        previous_best = np.fromiter(
            (env._best_utility for env in envs), dtype=float, count=len(envs)
        )
        if first.reward_mode == "paper":
            slack = first.reward_tolerance * first._utility_scale
            rewards = np.where(utilities >= previous_best - slack, 1.0, 0.0)
        else:
            rewards = utilities / first._utility_scale
        new_best = np.where(utilities >= previous_best, utilities, previous_best)

        config = first.market.config
        entries = np.concatenate(
            (
                (prices / config.max_price)[:, np.newaxis],
                allocations / config.capacity_natural,
            ),
            axis=1,
        )
        width = entries.shape[1]
        # o_{k+1} is o_k shifted left one (price, demands) entry — the
        # deque-drop-then-concatenate of the scalar path, done batch-wide.
        observations = np.concatenate(
            (self._observations[:, width:], entries), axis=1
        )
        self._observations = observations
        round_index = first._round + 1
        done = round_index >= first.rounds_per_episode
        dones = np.full(len(envs), done)
        prices_list = prices.tolist()
        actions_list = actions.tolist()
        utilities_list = utilities.tolist()
        best_list = new_best.tolist()
        infos: list[dict[str, Any]] = []
        for e, env in enumerate(envs):
            env._history.append(entries[e])
            env._round = round_index
            env._best_utility = best_list[e]
            # Info arrays are rows of this step's freshly solved batch —
            # nothing else holds or mutates them, so views keep the scalar
            # env's value contract without E·3 defensive copies per round.
            infos.append(
                {
                    "price": prices_list[e],
                    "raw_action": actions_list[e],
                    "msp_utility": utilities_list[e],
                    "best_utility": best_list[e],
                    "demands": demands[e],
                    "allocations": allocations[e],
                    "vmu_utilities": vmu_utilities[e],
                    "capacity_binding": bool(binding[e]),
                    "round": round_index,
                }
            )
        return observations, rewards, dones, infos

    def _step_stacked(self, actions: np.ndarray):
        """One stacked solve for a heterogeneous-market fleet."""
        for env in self._envs:
            env._require_steppable()
        if self._stack is None:
            self._stack = MarketStack([env.market for env in self._envs])
        prices = self._clip_actions(actions)
        stacked = self._stack.outcomes_stacked(prices)
        return [
            env._advance(float(actions[e]), float(prices[e]), stacked.row(e))
            for e, env in enumerate(self._envs)
        ]
