"""Non-stationary pricing POMDP: the VMU population churns over time.

The base environment's followers are fixed, which makes the game a
contextual bandit — the MSP never actually needs the L-round history of
Eq. (11). This variant makes the history *matter*: vehicles enter and
leave RSU coverage (a two-state Markov chain per VMU), so the demand
curve the MSP faces drifts between rounds. The recent (price, demand)
history is then genuinely informative about the currently active
population, which is exactly the situation the paper's observation design
anticipates.

Used by the E8 history-length ablation's non-stationary companion and as
a harder benchmark for the PPO agent.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from repro.core.stackelberg import StackelbergMarket
from repro.errors import EnvironmentError_
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_probability

__all__ = ["ChurnConfig", "ChurningMigrationEnv"]


class ChurnConfig:
    """Two-state (present/absent) Markov churn per VMU.

    Attributes:
        leave_probability: P(present -> absent) per round.
        return_probability: P(absent -> present) per round.
        min_active: rounds never drop below this many active VMUs
            (re-activating uniformly at random if churn would).
    """

    def __init__(
        self,
        leave_probability: float = 0.05,
        return_probability: float = 0.2,
        min_active: int = 1,
    ) -> None:
        require_probability("leave_probability", leave_probability)
        require_probability("return_probability", return_probability)
        if min_active < 1:
            raise EnvironmentError_(f"min_active must be >= 1, got {min_active}")
        self.leave_probability = float(leave_probability)
        self.return_probability = float(return_probability)
        self.min_active = int(min_active)

    @property
    def stationary_presence(self) -> float:
        """Long-run fraction of time a VMU is present."""
        denom = self.leave_probability + self.return_probability
        if denom == 0.0:
            return 1.0
        return self.return_probability / denom


class ChurningMigrationEnv:
    """Pricing POMDP over a churning VMU population.

    Observations have the same layout as :class:`MigrationGameEnv`
    (L rounds of normalised (price, demand vector), demand entries of
    absent VMUs are 0), so the same agent architecture plugs in.
    """

    def __init__(
        self,
        market: StackelbergMarket,
        *,
        churn: ChurnConfig | None = None,
        history_length: int = 4,
        rounds_per_episode: int = 100,
        seed: SeedLike = None,
    ) -> None:
        if history_length < 1:
            raise EnvironmentError_(
                f"history_length must be >= 1, got {history_length}"
            )
        if rounds_per_episode < 1:
            raise EnvironmentError_(
                f"rounds_per_episode must be >= 1, got {rounds_per_episode}"
            )
        self.market = market
        self.churn = churn if churn is not None else ChurnConfig()
        if self.churn.min_active > market.num_vmus:
            raise EnvironmentError_(
                f"min_active ({self.churn.min_active}) exceeds population "
                f"({market.num_vmus})"
            )
        self.history_length = history_length
        self.rounds_per_episode = rounds_per_episode
        self._rng = as_generator(seed)
        self._history: deque[np.ndarray] = deque(maxlen=history_length)
        self._active = np.ones(market.num_vmus, dtype=bool)
        self._round = 0
        self._started = False
        config = market.config
        self._utility_scale = (
            (config.max_price - config.unit_cost) * config.capacity_natural
        )

    # ------------------------------------------------------------------ #
    @property
    def observation_dim(self) -> int:
        """Same layout as the stationary env: L · (1 + N)."""
        return self.history_length * (1 + self.market.num_vmus)

    @property
    def action_low(self) -> float:
        """Lower price bound ``C``."""
        return self.market.config.unit_cost

    @property
    def action_high(self) -> float:
        """Upper price bound ``p_max``."""
        return self.market.config.max_price

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of currently present VMUs (copy)."""
        return self._active.copy()

    # ------------------------------------------------------------------ #
    def _step_churn(self) -> None:
        present = self._active
        leave = self._rng.uniform(size=present.shape) < self.churn.leave_probability
        arrive = (
            self._rng.uniform(size=present.shape) < self.churn.return_probability
        )
        self._active = np.where(present, ~leave, arrive)
        while self._active.sum() < self.churn.min_active:
            absent = np.flatnonzero(~self._active)
            self._active[self._rng.choice(absent)] = True

    def _masked_allocations(self, price: float) -> np.ndarray:
        """Best responses of the active VMUs only, with B_max rationing."""
        from repro.channel.ofdma import proportional_rationing

        demands = self.market.best_response(price) * self._active
        if not self.market.config.enforce_capacity:
            return demands
        return proportional_rationing(
            demands, self.market.config.capacity_natural
        )

    def _entry(self, price: float, allocations: np.ndarray) -> np.ndarray:
        config = self.market.config
        return np.concatenate(
            ([price / config.max_price], allocations / config.capacity_natural)
        )

    def reset(self) -> np.ndarray:
        """Start an episode with every VMU present and a random history."""
        self._active = np.ones(self.market.num_vmus, dtype=bool)
        self._history.clear()
        config = self.market.config
        for _ in range(self.history_length):
            price = float(self._rng.uniform(config.unit_cost, config.max_price))
            self._history.append(self._entry(price, self._masked_allocations(price)))
        self._round = 0
        self._started = True
        return np.concatenate(list(self._history))

    def step(self, action: float) -> tuple[np.ndarray, float, bool, dict[str, Any]]:
        """Churn the population, then clear one pricing round."""
        if not self._started:
            raise EnvironmentError_("call reset() before step()")
        if self._round >= self.rounds_per_episode:
            raise EnvironmentError_("episode finished; call reset()")
        self._step_churn()
        price = float(np.clip(action, self.action_low, self.action_high))
        allocations = self._masked_allocations(price)
        utility = float(
            (price - self.market.config.unit_cost) * allocations.sum()
        )
        reward = utility / self._utility_scale
        self._history.append(self._entry(price, allocations))
        self._round += 1
        done = self._round >= self.rounds_per_episode
        info: dict[str, Any] = {
            "price": price,
            "msp_utility": utility,
            "best_utility": utility,  # shaped reward; kept for API parity
            "allocations": allocations.copy(),
            "active_count": int(self._active.sum()),
            "round": self._round,
        }
        return np.concatenate(list(self._history)), reward, done, info
