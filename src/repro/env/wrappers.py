"""Environment wrappers: running observation normalisation and episode stats.

Wrappers preserve the :class:`repro.env.base.Environment` protocol so they
compose: ``EpisodeStats(NormalizeObservation(env))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import EnvironmentError_

__all__ = ["RunningMeanStd", "NormalizeObservation", "EpisodeStats"]


class RunningMeanStd:
    """Numerically stable running mean/variance (Welford/parallel update)."""

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.mean = np.zeros(shape)
        self.var = np.ones(shape)
        self.count = 1e-4

    def update(self, batch: np.ndarray) -> None:
        """Fold a batch of rows into the running statistics."""
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        batch_count = batch.shape[0]
        delta = batch_mean - self.mean
        total = self.count + batch_count
        self.mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta**2 * self.count * batch_count / total
        self.var = m2 / total
        self.count = total

    def normalize(self, value: np.ndarray, *, clip: float = 10.0) -> np.ndarray:
        """Standardise ``value`` by the running statistics and clip."""
        return np.clip(
            (value - self.mean) / np.sqrt(self.var + 1e-8), -clip, clip
        )


class NormalizeObservation:
    """Standardises observations with running statistics.

    The migration env already emits O(1) observations; this wrapper is for
    ablations and for plugging in custom markets whose scales differ.
    """

    def __init__(self, env: Any, *, clip: float = 10.0) -> None:
        self.env = env
        self.clip = float(clip)
        self.stats = RunningMeanStd((env.observation_dim,))

    @property
    def observation_dim(self) -> int:
        """Width of the observation vector (unchanged)."""
        return self.env.observation_dim

    def __getattr__(self, name: str) -> Any:
        return getattr(self.env, name)

    def reset(self) -> np.ndarray:
        obs = self.env.reset()
        self.stats.update(obs)
        return self.stats.normalize(obs, clip=self.clip)

    def step(self, action: float):
        obs, reward, done, info = self.env.step(action)
        self.stats.update(obs)
        return self.stats.normalize(obs, clip=self.clip), reward, done, info


@dataclass
class EpisodeRecord:
    """Summary of one finished episode."""

    total_reward: float
    length: int
    mean_msp_utility: float
    final_best_utility: float


@dataclass
class EpisodeStats:
    """Wrapper accumulating per-episode reward/utility summaries."""

    env: Any
    episodes: list[EpisodeRecord] = field(default_factory=list)
    _reward_sum: float = 0.0
    _length: int = 0
    _utility_sum: float = 0.0
    _best: float = float("-inf")
    _open: bool = False

    @property
    def observation_dim(self) -> int:
        """Width of the observation vector (unchanged)."""
        return self.env.observation_dim

    def __getattr__(self, name: str) -> Any:
        return getattr(self.env, name)

    def reset(self) -> np.ndarray:
        self._reward_sum = 0.0
        self._length = 0
        self._utility_sum = 0.0
        self._best = float("-inf")
        self._open = True
        return self.env.reset()

    def step(self, action: float):
        if not self._open:
            raise EnvironmentError_("call reset() before step()")
        obs, reward, done, info = self.env.step(action)
        self._reward_sum += reward
        self._length += 1
        self._utility_sum += float(info.get("msp_utility", 0.0))
        self._best = max(self._best, float(info.get("best_utility", self._best)))
        if done:
            self.episodes.append(
                EpisodeRecord(
                    total_reward=self._reward_sum,
                    length=self._length,
                    mean_msp_utility=self._utility_sum / max(1, self._length),
                    final_best_utility=self._best,
                )
            )
            self._open = False
        return obs, reward, done, info
