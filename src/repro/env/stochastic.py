"""Stochastic-market episodes: nature redraws the market per episode.

The Bayesian game's chance node, as an environment mode: each
:meth:`StochasticMarketEnv.reset` draws a scenario from the distribution
(weights included) through the env's own RNG stream, rebinds the episode
to that scenario's market, and then primes the observation history
exactly like the deterministic env. Training the DRL pricing agent on
this env measures robustness under market uncertainty — the policy must
price well *in expectation* over scenarios it cannot observe directly
(only through the demand history).

Determinism contract: the scenario sequence and the priming prices both
come from the env's single stream, in a fixed order (one scenario draw,
then the ``L`` priming prices), so a seeded env replays the exact same
episode sequence. This env is scalar-only — the vectorised fleet env
binds a static :class:`MarketStack` at construction and cannot rebind
per episode.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.bayesian import BayesianStackelbergMarket
from repro.core.stackelberg import StackelbergMarket
from repro.env.migration_game import MigrationGameEnv
from repro.errors import EnvironmentError_
from repro.utils.rng import SeedLike

__all__ = ["StochasticMarketEnv"]


class StochasticMarketEnv(MigrationGameEnv):
    """A :class:`MigrationGameEnv` whose market is redrawn per episode."""

    def __init__(
        self,
        scenarios: Sequence[StackelbergMarket],
        *,
        weights: Sequence[float] | None = None,
        history_length: int = 4,
        rounds_per_episode: int = 100,
        reward_mode: str = "paper",
        reward_tolerance: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        markets = tuple(scenarios)
        if not markets:
            raise EnvironmentError_("need at least one market scenario")
        num_vmus = markets[0].num_vmus
        for index, market in enumerate(markets):
            if market.num_vmus != num_vmus:
                raise EnvironmentError_(
                    "scenarios must share the population size (the "
                    f"observation layout): scenario {index} has "
                    f"{market.num_vmus} VMUs, expected {num_vmus}"
                )
        if weights is None:
            probabilities = np.full(len(markets), 1.0 / len(markets))
        else:
            probabilities = np.asarray(weights, dtype=float)
            if probabilities.shape != (len(markets),):
                raise EnvironmentError_(
                    f"expected {len(markets)} weights, got shape "
                    f"{probabilities.shape}"
                )
            if not np.all(np.isfinite(probabilities)) or np.any(
                probabilities <= 0.0
            ):
                raise EnvironmentError_("weights must be finite and > 0")
            probabilities = probabilities / probabilities.sum()
        super().__init__(
            markets[0],
            history_length=history_length,
            rounds_per_episode=rounds_per_episode,
            reward_mode=reward_mode,
            reward_tolerance=reward_tolerance,
            seed=seed,
        )
        self._scenarios = markets
        self._probabilities = probabilities
        self._scenario_index = 0

    @classmethod
    def from_distribution(
        cls, distribution: BayesianStackelbergMarket, **kwargs
    ) -> "StochasticMarketEnv":
        """The episode env of a :class:`BayesianStackelbergMarket`
        (scenarios and weights taken from the distribution)."""
        return cls(
            distribution.scenarios, weights=distribution.weights, **kwargs
        )

    @property
    def scenarios(self) -> tuple[StackelbergMarket, ...]:
        """The scenario markets nature draws from."""
        return self._scenarios

    @property
    def scenario_probabilities(self) -> np.ndarray:
        """Normalised scenario weights (copy)."""
        return self._probabilities.copy()

    @property
    def scenario_index(self) -> int:
        """Index of the scenario the current episode is playing."""
        return self._scenario_index

    def reset(self) -> np.ndarray:
        """Draw the episode's scenario, rebind the market, prime history.

        The scenario draw consumes the env stream *before* the priming
        prices (fixed stream layout — see the module docstring), and the
        per-episode utility scale / action bounds follow the drawn
        scenario's config.
        """
        index = int(
            self._rng.choice(len(self._scenarios), p=self._probabilities)
        )
        self._bind_market(self._scenarios[index])
        self._scenario_index = index
        return super().reset()

    def _bind_market(self, market: StackelbergMarket) -> None:
        self.market = market
        config = market.config
        self._utility_scale = (
            (config.max_price - config.unit_cost) * config.capacity_natural
        )
