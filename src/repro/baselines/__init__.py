"""Baseline pricing policies the paper compares against.

- :class:`RandomPricing` — the paper's "random scheme": a uniform price
  each round.
- :class:`GreedyPricing` — the paper's "greedy scheme": replay the best
  price seen in past rounds (with ε-exploration so "past rounds" contain
  more than one candidate).
- :class:`FixedPricing` — a constant posted price (sanity baseline).
- :class:`OraclePricing` — the complete-information Stackelberg
  equilibrium price (the upper bound every learning scheme chases).
- :class:`LearnedPricing` — adapts a trained PPO agent to the
  :class:`~repro.core.mechanism.PricingPolicy` protocol.
"""

from repro.baselines.policies import (
    FixedPricing,
    GreedyPricing,
    LearnedPricing,
    OraclePricing,
    RandomPricing,
)

__all__ = [
    "FixedPricing",
    "GreedyPricing",
    "LearnedPricing",
    "OraclePricing",
    "RandomPricing",
]
