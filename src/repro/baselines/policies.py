"""Implementations of the baseline pricing policies.

All classes satisfy :class:`repro.core.mechanism.PricingPolicy`:
``propose_price(history) -> float`` plus ``reset()``.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import GameHistory
from repro.core.stackelberg import StackelbergMarket
from repro.drl.policy import ActionScaler
from repro.drl.ppo import PPOAgent
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_probability

__all__ = [
    "RandomPricing",
    "GreedyPricing",
    "FixedPricing",
    "OraclePricing",
    "LearnedPricing",
]


class RandomPricing:
    """Uniform-random price in ``[C, p_max]`` every round (paper baseline)."""

    def __init__(self, low: float, high: float, *, seed: SeedLike = None) -> None:
        if not low < high:
            raise ConfigurationError(f"need low < high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)
        self._rng = as_generator(seed)

    def propose_price(self, history: GameHistory) -> float:
        """A fresh uniform draw, independent of history."""
        return float(self._rng.uniform(self.low, self.high))

    def propose_prices(self, history: GameHistory, count: int) -> np.ndarray:
        """The next ``count`` prices as one vectorised draw.

        ``Generator.uniform(size=count)`` consumes the stream exactly like
        ``count`` scalar draws, so the batched evaluation path sees the
        same prices a sequential round loop would have.
        """
        return self._rng.uniform(self.low, self.high, size=count)

    def reset(self) -> None:
        """Stateless (the RNG stream continues)."""


class GreedyPricing:
    """Replay the best past price; explore randomly with probability ε.

    The paper's greedy scheme "determines the best price by selecting from
    past game rounds". With no exploration it could only ever replay its
    first draw, so we keep a small ε-exploration (ε = 0.1 by default) and
    always explore on an empty history.

    Greedy deliberately has no ``propose_prices`` batch hook: each round's
    proposal depends on the outcomes of the rounds before it. The engine's
    sequential path still avoids re-solving the market on the (dominant)
    rounds where the best past price is replayed.
    """

    def __init__(
        self,
        low: float,
        high: float,
        *,
        epsilon: float = 0.1,
        seed: SeedLike = None,
    ) -> None:
        if not low < high:
            raise ConfigurationError(f"need low < high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)
        self.epsilon = require_probability("epsilon", epsilon)
        self._rng = as_generator(seed)

    def propose_price(self, history: GameHistory) -> float:
        """Best past price, or a uniform draw with probability ε."""
        best = history.best_price
        if best is None or self._rng.uniform() < self.epsilon:
            return float(self._rng.uniform(self.low, self.high))
        return float(best)

    def reset(self) -> None:
        """Stateless across episodes (history is supplied per call)."""


class FixedPricing:
    """Always post the same price."""

    def __init__(self, price: float) -> None:
        if price <= 0.0:
            raise ConfigurationError(f"price must be > 0, got {price}")
        self.price = float(price)

    def propose_price(self, history: GameHistory) -> float:
        """The configured constant."""
        return self.price

    def propose_prices(self, history: GameHistory, count: int) -> np.ndarray:
        """The constant, replicated — evaluation becomes one batched solve."""
        return np.full(count, self.price)

    def reset(self) -> None:
        """Stateless."""


class OraclePricing:
    """The complete-information Stackelberg equilibrium price.

    Computes the equilibrium of the supplied market once and replays it —
    the theoretical optimum the DRL agent should converge to (Fig. 2(b)).
    For a whole market grid, :meth:`from_stack` builds every market's
    oracle from one stacked equilibrium solve instead of per-market loops.
    """

    def __init__(
        self, market: StackelbergMarket, *, price: float | None = None
    ) -> None:
        """Build the oracle for ``market``.

        Args:
            market: the market whose equilibrium price to replay.
            price: the already-solved equilibrium price, if the caller
                solved it elsewhere (e.g. one stacked solve for a whole
                sweep — see :meth:`from_stack`); ``None`` solves here.
        """
        self._price = (
            market.equilibrium().price if price is None else float(price)
        )

    @classmethod
    def from_stack(
        cls,
        stack_or_markets,
        *,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
        cache=None,
    ) -> list["OraclePricing"]:
        """One oracle per market of a stack, solved in a single pass.

        Accepts a :class:`repro.core.marketstack.MarketStack` or a market
        sequence. All ``M`` equilibria come from one
        :meth:`MarketStack.equilibria_stacked` call — bitwise-equal to
        ``[OraclePricing(m) for m in markets]``, which solves per market.
        With either chunk knob set, the solve streams through
        :meth:`MarketStack.equilibria_stacked_chunked` (same bits, memory
        bounded by the chunk — for city-scale oracle grids). With a
        ``cache`` (a :class:`repro.service.EquilibriumCache`), rows are
        served by market content — rebuilding an oracle grid after a few
        cells changed re-solves only the changed cells, same bits.

        Raises:
            InfeasibleMarketError: if any member market admits no
                profitable trade (same as the per-market path).
        """
        from repro.core.marketstack import MarketStack

        stack = (
            stack_or_markets
            if isinstance(stack_or_markets, MarketStack)
            else MarketStack(stack_or_markets)
        )
        if cache is not None:
            rows = cache.equilibria(
                stack.markets, chunk_size=chunk_size, chunk_bytes=chunk_bytes
            )
            return [
                cls(market, price=row.price)
                for market, row in zip(stack.markets, rows)
            ]
        if chunk_size is not None or chunk_bytes is not None:
            solved = stack.equilibria_stacked_chunked(
                chunk_size=chunk_size, chunk_bytes=chunk_bytes
            )
        else:
            solved = stack.equilibria_stacked()
        return [
            cls(market, price=solved.equilibrium(m).price)
            for m, market in enumerate(stack.markets)
        ]

    @property
    def equilibrium_price(self) -> float:
        """The cached equilibrium price."""
        return self._price

    def propose_price(self, history: GameHistory) -> float:
        """The equilibrium price, always."""
        return self._price

    def propose_prices(self, history: GameHistory, count: int) -> np.ndarray:
        """The equilibrium price, replicated for one batched evaluation."""
        return np.full(count, self._price)

    def reset(self) -> None:
        """Stateless."""


class LearnedPricing:
    """Adapts a trained PPO agent to the pricing-policy protocol.

    Reconstructs the agent's normalised observation from the public
    history (mirroring :class:`repro.env.MigrationGameEnv`) and returns the
    deterministic (mode) price.
    """

    def __init__(
        self,
        agent: PPOAgent,
        scaler: ActionScaler,
        market: StackelbergMarket,
        *,
        history_length: int = 4,
        seed: SeedLike = None,
    ) -> None:
        if history_length < 1:
            raise ConfigurationError(
                f"history_length must be >= 1, got {history_length}"
            )
        self.agent = agent
        self.scaler = scaler
        self.market = market
        self.history_length = history_length
        self._rng = as_generator(seed)

    def _observation(self, history: GameHistory) -> np.ndarray:
        config = self.market.config
        entries: list[np.ndarray] = []
        records = history.last(self.history_length)
        # Pad missing history with random rounds, like the env's reset.
        for _ in range(self.history_length - len(records)):
            price = float(self._rng.uniform(config.unit_cost, config.max_price))
            demands = self.market.allocate(price)
            entries.append(
                np.concatenate(
                    ([price / config.max_price], demands / config.capacity_natural)
                )
            )
        for record in records:
            demands = np.asarray(record.demands, dtype=float)
            entries.append(
                np.concatenate(
                    (
                        [record.price / config.max_price],
                        demands / config.capacity_natural,
                    )
                )
            )
        return np.concatenate(entries)

    def propose_price(self, history: GameHistory) -> float:
        """Deterministic price from the trained policy."""
        observation = self._observation(history)
        raw_action, _, _ = self.agent.act(
            observation, seed=self._rng, deterministic=True
        )
        return float(self.scaler.to_price(raw_action[0]))

    def reset(self) -> None:
        """Stateless between episodes (the network holds the knowledge)."""
