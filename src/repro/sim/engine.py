"""Batched repeated-game evaluation: play pricing policies without the
round-by-round Python loop whenever the policy allows it.

Two speed levers, both exact:

- **Price-vector fast path.** Policies whose future prices do not depend on
  intermediate outcomes (random, fixed, oracle) implement
  ``propose_prices(history, count)`` and commit to all ``count`` prices up
  front; the whole evaluation then collapses to a single
  :meth:`StackelbergMarket.outcomes_batch` call over the ``(R,)`` price
  vector.
- **Outcome memoisation.** History-dependent policies (greedy replay, the
  learned DRL policy) stay sequential, but the market is deterministic
  given a price, so repeated prices — greedy replays its best past price on
  almost every round — reuse the cached outcome instead of re-solving the
  Stackelberg stage.

Both paths produce the identical :class:`GameHistory` and per-round
:class:`PriceBatchOutcome` (axis 0 = round) as the classic
:func:`repro.core.mechanism.run_rounds` loop; they are the engine behind
:func:`repro.experiments.runner.evaluate_policy`.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import GameHistory, PricingPolicy, RoundRecord
from repro.core.stackelberg import MarketOutcome, PriceBatchOutcome, StackelbergMarket

__all__ = ["plan_prices", "play_policy"]


def plan_prices(
    policy: PricingPolicy, history: GameHistory, count: int
) -> np.ndarray | None:
    """The policy's next ``count`` prices, if it can commit to them now.

    Returns ``None`` for history-dependent policies (no ``propose_prices``
    hook, or the hook declines) — the caller must then fall back to the
    sequential round loop.
    """
    planner = getattr(policy, "propose_prices", None)
    if planner is None:
        return None
    planned = planner(history, count)
    if planned is None:
        return None
    prices = np.asarray(planned, dtype=float)
    if prices.shape != (count,):
        raise ValueError(
            f"propose_prices returned shape {prices.shape}, expected ({count},)"
        )
    return prices


def play_policy(
    market: StackelbergMarket,
    policy: PricingPolicy,
    num_rounds: int,
    *,
    history: GameHistory | None = None,
) -> tuple[GameHistory, PriceBatchOutcome]:
    """Play ``num_rounds`` of the repeated pricing game, batched when possible.

    Same contract as :func:`repro.core.mechanism.run_rounds` (prices clamped
    to ``[C, p_max]``, one :class:`RoundRecord` appended per round, record
    indices continuing from the supplied history), but the per-round
    outcomes come back as one stacked :class:`PriceBatchOutcome` and the
    market stage is evaluated through the batched engine.
    """
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
    history = history if history is not None else GameHistory()
    config = market.config
    start_index = len(history)

    planned = plan_prices(policy, history, num_rounds)
    if planned is not None:
        prices = np.clip(planned, config.unit_cost, config.max_price)
        played = market.outcomes_batch(prices)
    else:
        return history, _play_sequential(market, policy, num_rounds, history)

    for offset in range(num_rounds):
        history.append(
            RoundRecord(
                round_index=start_index + offset,
                price=float(played.prices[offset]),
                demands=tuple(float(b) for b in played.allocations[offset]),
                msp_utility=float(played.msp_utilities[offset]),
            )
        )
    return history, played


def _play_sequential(
    market: StackelbergMarket,
    policy: PricingPolicy,
    num_rounds: int,
    history: GameHistory,
) -> PriceBatchOutcome:
    """Round loop with an exact price → outcome memo (market is deterministic)."""
    config = market.config
    cache: dict[float, MarketOutcome] = {}
    outcomes: list[MarketOutcome] = []
    for _ in range(num_rounds):
        raw_price = float(policy.propose_price(history))
        price = float(np.clip(raw_price, config.unit_cost, config.max_price))
        outcome = cache.get(price)
        if outcome is None:
            outcome = market.round_outcome(price)
            cache[price] = outcome
        outcomes.append(outcome)
        history.append(
            RoundRecord(
                round_index=len(history),
                price=price,
                demands=tuple(float(b) for b in outcome.allocations),
                msp_utility=outcome.msp_utility,
            )
        )
    return PriceBatchOutcome.from_outcomes(outcomes)
