"""Batched repeated-game evaluation: play pricing policies without the
round-by-round Python loop whenever the policy allows it.

Two speed levers, both exact:

- **Price-vector fast path.** Policies whose future prices do not depend on
  intermediate outcomes (random, fixed, oracle) implement
  ``propose_prices(history, count)`` and commit to all ``count`` prices up
  front; the whole evaluation then collapses to a single
  :meth:`StackelbergMarket.outcomes_batch` call over the ``(R,)`` price
  vector.
- **Outcome memoisation.** History-dependent policies (greedy replay, the
  learned DRL policy) stay sequential, but the market is deterministic
  given a price, so repeated prices — greedy replays its best past price on
  almost every round — reuse the cached outcome instead of re-solving the
  Stackelberg stage.

Both paths produce the identical :class:`GameHistory` and per-round
:class:`PriceBatchOutcome` (axis 0 = round) as the classic
:func:`repro.core.mechanism.run_rounds` loop; they are the engine behind
:func:`repro.experiments.runner.evaluate_policy`.

:func:`play_policies_stacked` lifts the price-vector fast path onto the
market axis ``M``: the committed price vectors of *many* (market, policy)
pairs — e.g. a whole Fig. 3 sweep's market grid — are solved as one
:meth:`repro.core.marketstack.MarketStack.outcomes_stacked` pass instead of
``M`` separate batched evaluations, with history-dependent policies falling
back to the per-market sequential loop. Results are equal to ``M``
independent :func:`play_policy` calls — bitwise, not just numerically.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.marketstack import MarketStack
from repro.core.mechanism import GameHistory, PricingPolicy, RoundRecord
from repro.core.stackelberg import MarketOutcome, PriceBatchOutcome, StackelbergMarket

__all__ = ["plan_prices", "play_policy", "play_policies_stacked"]


def plan_prices(
    policy: PricingPolicy, history: GameHistory, count: int
) -> np.ndarray | None:
    """The policy's next ``count`` prices, if it can commit to them now.

    Returns ``None`` for history-dependent policies (no ``propose_prices``
    hook, or the hook declines) — the caller must then fall back to the
    sequential round loop.
    """
    planner = getattr(policy, "propose_prices", None)
    if planner is None:
        return None
    planned = planner(history, count)
    if planned is None:
        return None
    prices = np.asarray(planned, dtype=float)
    if prices.shape != (count,):
        raise ValueError(
            f"propose_prices returned shape {prices.shape}, expected ({count},)"
        )
    return prices


def play_policy(
    market: StackelbergMarket,
    policy: PricingPolicy,
    num_rounds: int,
    *,
    history: GameHistory | None = None,
) -> tuple[GameHistory, PriceBatchOutcome]:
    """Play ``num_rounds`` of the repeated pricing game, batched when possible.

    Same contract as :func:`repro.core.mechanism.run_rounds` (prices clamped
    to ``[C, p_max]``, one :class:`RoundRecord` appended per round, record
    indices continuing from the supplied history), but the per-round
    outcomes come back as one stacked :class:`PriceBatchOutcome` and the
    market stage is evaluated through the batched engine.
    """
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
    history = history if history is not None else GameHistory()
    config = market.config
    start_index = len(history)

    planned = plan_prices(policy, history, num_rounds)
    if planned is not None:
        prices = np.clip(planned, config.unit_cost, config.max_price)
        played = market.outcomes_batch(prices)
    else:
        return history, _play_sequential(market, policy, num_rounds, history)

    _append_records(history, played, start_index)
    return history, played


def _append_records(
    history: GameHistory, played: PriceBatchOutcome, start_index: int
) -> None:
    """Append one :class:`RoundRecord` per row of a batch-solved evaluation."""
    for offset in range(len(played)):
        history.append(
            RoundRecord(
                round_index=start_index + offset,
                price=float(played.prices[offset]),
                demands=tuple(float(b) for b in played.allocations[offset]),
                msp_utility=float(played.msp_utilities[offset]),
            )
        )


def play_policies_stacked(
    markets: Sequence[StackelbergMarket],
    policies: Sequence[PricingPolicy],
    num_rounds: int,
) -> list[tuple[GameHistory, PriceBatchOutcome]]:
    """Play ``num_rounds`` of the pricing game in every market, stacked.

    Pairs ``markets[m]`` with ``policies[m]`` (fresh histories). Every pair
    whose policy commits to its price vector up front joins one
    :meth:`MarketStack.outcomes_stacked` solve over the ``(M, R)`` price
    grid — a whole market sweep's evaluation in a single numpy pass —
    while history-dependent policies fall back to the per-market
    memoised sequential loop. Per pair, histories and outcomes are equal
    (bitwise) to an independent :func:`play_policy` call; callers that need
    the single-market semantics of a prior history should use
    :func:`play_policy` directly.
    """
    if len(markets) != len(policies):
        raise ValueError(
            f"got {len(markets)} markets for {len(policies)} policies"
        )
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
    histories = [GameHistory() for _ in markets]
    outcomes: list[PriceBatchOutcome | None] = [None] * len(markets)
    stackable: list[tuple[int, np.ndarray]] = []
    for i, (market, policy) in enumerate(zip(markets, policies)):
        planned = plan_prices(policy, histories[i], num_rounds)
        if planned is None:
            outcomes[i] = _play_sequential(
                market, policy, num_rounds, histories[i]
            )
        else:
            config = market.config
            stackable.append(
                (i, np.clip(planned, config.unit_cost, config.max_price))
            )
    if stackable:
        indices = [i for i, _ in stackable]
        stack = MarketStack([markets[i] for i in indices])
        stacked = stack.outcomes_stacked(
            np.stack([prices for _, prices in stackable])
        )
        for position, i in enumerate(indices):
            played = stacked.market_rows(position)
            _append_records(histories[i], played, start_index=0)
            outcomes[i] = played
    return list(zip(histories, outcomes))


def _play_sequential(
    market: StackelbergMarket,
    policy: PricingPolicy,
    num_rounds: int,
    history: GameHistory,
) -> PriceBatchOutcome:
    """Round loop with an exact price → outcome memo (market is deterministic)."""
    config = market.config
    cache: dict[float, MarketOutcome] = {}
    outcomes: list[MarketOutcome] = []
    for _ in range(num_rounds):
        raw_price = float(policy.propose_price(history))
        price = float(np.clip(raw_price, config.unit_cost, config.max_price))
        outcome = cache.get(price)
        if outcome is None:
            outcome = market.round_outcome(price)
            cache[price] = outcome
        outcomes.append(outcome)
        history.append(
            RoundRecord(
                round_index=len(history),
                price=price,
                demands=tuple(float(b) for b in outcome.allocations),
                msp_utility=outcome.msp_utility,
            )
        )
    return PriceBatchOutcome.from_outcomes(outcomes)
