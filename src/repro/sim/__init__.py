"""The batched simulation engine (see README.md in this package).

One import point for everything that runs the Stackelberg pricing game on a
batch axis instead of a Python loop:

- price-batch market evaluation (:class:`PriceBatchOutcome`,
  :func:`batched_landscape`, :func:`scalar_landscape`, :func:`price_grid`);
- the market-stack axis (:class:`MarketStack`, :class:`StackedOutcome`) —
  ``M`` *different* markets solved in one pass, re-exported from
  :mod:`repro.core.marketstack`;
- batched policy evaluation (:func:`play_policy`, :func:`plan_prices`,
  :func:`play_policies_stacked`);
- the vector environment (:class:`VectorMigrationEnv`) and the batched
  Algorithm-1 trainer (:class:`VectorTrainer`) re-exported from their home
  layers.
"""

from repro.core.marketstack import MarketStack, StackedOutcome
from repro.core.stackelberg import PriceBatchOutcome, uniform_price_grid
from repro.drl.trainer import VectorTrainer
from repro.env.vector import VectorMigrationEnv
from repro.sim.engine import plan_prices, play_policies_stacked, play_policy
from repro.sim.landscape import batched_landscape, price_grid, scalar_landscape

__all__ = [
    "MarketStack",
    "StackedOutcome",
    "PriceBatchOutcome",
    "VectorTrainer",
    "VectorMigrationEnv",
    "plan_prices",
    "play_policy",
    "play_policies_stacked",
    "batched_landscape",
    "price_grid",
    "scalar_landscape",
    "uniform_price_grid",
]
