"""Leader-landscape helpers: price grids evaluated as one batch.

The leader's utility landscape over ``[C, p_max]`` is the object every
solver, sweep, and figure in this repro keeps re-evaluating. These helpers
expose it in two forms:

- :func:`batched_landscape` — one :meth:`StackelbergMarket.outcomes_batch`
  pass over the whole grid (the production path);
- :func:`scalar_landscape` — the historical per-price Python loop, kept as
  the independent reference implementation that benchmarks time against and
  property tests compare with (the two must agree to machine precision).
"""

from __future__ import annotations

import numpy as np

from repro.core.stackelberg import (
    PriceBatchOutcome,
    StackelbergMarket,
    uniform_price_grid,
)

__all__ = ["price_grid", "batched_landscape", "scalar_landscape"]


def price_grid(
    market: StackelbergMarket,
    grid_points: int = 256,
    *,
    low: float | None = None,
    high: float | None = None,
) -> np.ndarray:
    """A uniform price grid spanning the market's feasible interval."""
    config = market.config
    return uniform_price_grid(
        config.unit_cost if low is None else float(low),
        config.max_price if high is None else float(high),
        grid_points,
    )


def batched_landscape(
    market: StackelbergMarket, prices: np.ndarray
) -> PriceBatchOutcome:
    """The full landscape in one vectorised pass."""
    return market.outcomes_batch(prices)


def scalar_landscape(
    market: StackelbergMarket, prices: np.ndarray
) -> PriceBatchOutcome:
    """Reference implementation: one scalar Stackelberg solve per price.

    Kept deliberately loop-shaped — do not "optimise" it; its entire point
    is to be the independent baseline the batched path is validated and
    benchmarked against.
    """
    return PriceBatchOutcome.from_outcomes(
        [market.round_outcome(float(p)) for p in np.asarray(prices, dtype=float)]
    )
