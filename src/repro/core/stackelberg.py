"""The AoTM-based Stackelberg market (Problems 1 and 2 of the paper).

The :class:`StackelbergMarket` binds a VMU population to an RSU link and the
MSP's market parameters, and answers every question the rest of the library
asks about the game:

- follower best responses and drop-out thresholds (Eq. 8);
- the leader's utility landscape with B_max rationing and follower
  drop-out (Eq. 9 generalised to the constrained case);
- the unique Stackelberg equilibrium (Theorems 1-2), computed in closed
  form per active set and cross-checked by a global numeric search.

Units: the market consumes VMU data sizes in natural data units (100 MB)
and works with natural bandwidth internally; reported bandwidth multiplies
by ``bandwidth_report_scale`` to match the paper's axes (DESIGN.md §3).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.channel.link import RsuLink, paper_link
from repro.channel.ofdma import proportional_rationing
from repro.core.utilities import follower_best_response
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError
from repro.game.solvers import uniform_price_grid
from repro.utils.validation import require_positive

__all__ = [
    "MarketConfig",
    "StackelbergEquilibrium",
    "MarketOutcome",
    "PriceBatchOutcome",
    "StackelbergMarket",
    "uniform_price_grid",
]


@dataclass(frozen=True)
class MarketConfig:
    """MSP-side market parameters (Problem 2 constraints).

    Attributes:
        unit_cost: unit transmission cost ``C``.
        max_price: price ceiling ``p_max``.
        max_bandwidth: sellable bandwidth ``B_max`` in *market* units.
        bandwidth_report_scale: market units per natural bandwidth unit.
        enforce_capacity: if False the ``B_max`` constraint is ignored
            (useful for isolating the unconstrained closed form in tests).
    """

    unit_cost: float = constants.UNIT_TRANSMISSION_COST
    max_price: float = constants.MAX_PRICE
    max_bandwidth: float = constants.MAX_BANDWIDTH
    bandwidth_report_scale: float = constants.BANDWIDTH_REPORT_SCALE
    enforce_capacity: bool = True

    def __post_init__(self) -> None:
        require_positive("unit_cost", self.unit_cost)
        require_positive("max_price", self.max_price)
        require_positive("max_bandwidth", self.max_bandwidth)
        require_positive("bandwidth_report_scale", self.bandwidth_report_scale)
        if self.unit_cost > self.max_price:
            raise ConfigurationError(
                f"unit_cost ({self.unit_cost}) exceeds max_price "
                f"({self.max_price}); the price interval [C, p_max] is empty"
            )

    @property
    def capacity_natural(self) -> float:
        """``B_max`` converted to natural bandwidth units."""
        return self.max_bandwidth / self.bandwidth_report_scale


@dataclass(frozen=True)
class MarketOutcome:
    """Everything observable after one trading round at a posted price."""

    price: float
    demands: np.ndarray
    """Requested bandwidth per VMU (natural units, before rationing)."""
    allocations: np.ndarray
    """Granted bandwidth per VMU (natural units, after B_max rationing)."""
    msp_utility: float
    vmu_utilities: np.ndarray
    capacity_binding: bool

    @property
    def total_allocated(self) -> float:
        """Σ granted bandwidth (natural units)."""
        return float(self.allocations.sum())


@dataclass(frozen=True)
class PriceBatchOutcome:
    """Per-price outcomes of one vectorised market evaluation.

    Every array is batched along axis 0 (one row per posted price): the
    result of playing ``P`` independent trading rounds in a single numpy
    pass. ``row(i)`` extracts a scalar :class:`MarketOutcome` view, which is
    bit-identical to ``round_outcome(prices[i])`` because the scalar path
    delegates here with ``P = 1``.
    """

    prices: np.ndarray
    """Posted prices, shape ``(P,)``."""
    demands: np.ndarray
    """Requested bandwidth per price and VMU, shape ``(P, N)``."""
    allocations: np.ndarray
    """Granted bandwidth after B_max rationing, shape ``(P, N)``."""
    msp_utilities: np.ndarray
    """Leader utility per price, shape ``(P,)``."""
    vmu_utilities: np.ndarray
    """Follower utilities per price, shape ``(P, N)``."""
    capacity_binding: np.ndarray
    """Whether Σ demand hit ``B_max``, boolean shape ``(P,)``."""

    def __len__(self) -> int:
        return int(self.prices.shape[0])

    @property
    def total_allocated(self) -> np.ndarray:
        """Σ granted bandwidth per price (natural units), shape ``(P,)``."""
        return self.allocations.sum(axis=-1)

    def row(self, index: int) -> MarketOutcome:
        """The ``index``-th price's outcome as a scalar :class:`MarketOutcome`."""
        return MarketOutcome(
            price=float(self.prices[index]),
            demands=self.demands[index].copy(),
            allocations=self.allocations[index].copy(),
            msp_utility=float(self.msp_utilities[index]),
            vmu_utilities=self.vmu_utilities[index].copy(),
            capacity_binding=bool(self.capacity_binding[index]),
        )

    @property
    def best_index(self) -> int:
        """Index of the price with the highest leader utility (first on ties)."""
        return int(np.argmax(self.msp_utilities))

    def best(self) -> MarketOutcome:
        """The outcome of the price with the highest leader utility."""
        return self.row(self.best_index)

    @classmethod
    def from_outcomes(
        cls, outcomes: Sequence[MarketOutcome]
    ) -> "PriceBatchOutcome":
        """Stack scalar outcomes into one batch.

        The bridge the sequential paths (reference landscape loop, the
        memoised policy-evaluation loop) use to hand results back in the
        engine's batched shape.
        """
        return cls(
            prices=np.array([o.price for o in outcomes]),
            demands=np.stack([o.demands for o in outcomes]),
            allocations=np.stack([o.allocations for o in outcomes]),
            msp_utilities=np.array([o.msp_utility for o in outcomes]),
            vmu_utilities=np.stack([o.vmu_utilities for o in outcomes]),
            capacity_binding=np.array([o.capacity_binding for o in outcomes]),
        )


@dataclass(frozen=True)
class StackelbergEquilibrium:
    """The unique Stackelberg equilibrium of the instantiated market."""

    price: float
    demands: np.ndarray
    """Equilibrium bandwidth per VMU (natural units)."""
    msp_utility: float
    vmu_utilities: np.ndarray
    capacity_binding: bool
    price_cap_binding: bool

    @property
    def total_bandwidth(self) -> float:
        """Σ b*_n in natural units."""
        return float(self.demands.sum())

    @property
    def total_vmu_utility(self) -> float:
        """Σ U_n at equilibrium."""
        return float(self.vmu_utilities.sum())


class StackelbergMarket:
    """The AoTM-based Stackelberg game between one MSP and N VMUs."""

    def __init__(
        self,
        vmus: Sequence[VmuProfile],
        *,
        config: MarketConfig | None = None,
        link: RsuLink | None = None,
    ) -> None:
        if len(vmus) == 0:
            raise ConfigurationError("market needs at least one VMU")
        self._vmus = tuple(vmus)
        self._config = config if config is not None else MarketConfig()
        self._link = link if link is not None else paper_link()
        self._alphas = np.array([v.immersion_coef for v in vmus], dtype=float)
        self._data_units = np.array([v.data_units for v in vmus], dtype=float)
        self._stack = None  # lazy M = 1 MarketStack behind outcomes_batch
        self._thresholds = None  # lazy drop-out threshold cache

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def vmus(self) -> tuple[VmuProfile, ...]:
        """The follower population."""
        return self._vmus

    @property
    def config(self) -> MarketConfig:
        """Market parameters."""
        return self._config

    @property
    def link(self) -> RsuLink:
        """The RSU-to-RSU migration link."""
        return self._link

    @property
    def num_vmus(self) -> int:
        """Population size N."""
        return len(self._vmus)

    @property
    def spectral_efficiency(self) -> float:
        """``log2(1 + SNR)`` of the link."""
        return self._link.spectral_efficiency

    @property
    def immersion_coefs(self) -> np.ndarray:
        """``α_n`` vector (copy)."""
        return self._alphas.copy()

    @property
    def data_units(self) -> np.ndarray:
        """``D_n`` vector in natural data units (copy)."""
        return self._data_units.copy()

    def to_market_units(self, bandwidth_natural: float | np.ndarray):
        """Convert natural bandwidth to the paper's reported units."""
        return bandwidth_natural * self._config.bandwidth_report_scale

    # ------------------------------------------------------------------ #
    # follower stage
    # ------------------------------------------------------------------ #
    def _dropout_thresholds_cached(self) -> np.ndarray:
        """The threshold vector, computed once (do not mutate)."""
        if self._thresholds is None:
            self._thresholds = (
                self._alphas * self.spectral_efficiency / self._data_units
            )
        return self._thresholds

    def dropout_thresholds(self) -> np.ndarray:
        """Per-VMU price above which the best response hits zero:
        ``t_n = α_n · SE / D_n`` (copy; cached — the population and link
        are immutable)."""
        return self._dropout_thresholds_cached().copy()

    def best_response(self, price: float) -> np.ndarray:
        """Follower best responses at ``price`` (Eq. 8), natural units."""
        return follower_best_response(
            self._alphas, self._data_units, price, self.spectral_efficiency
        )

    def best_response_batch(self, prices: np.ndarray) -> np.ndarray:
        """Best-response matrix for a price vector ``(P,)``: shape ``(P, N)``."""
        return follower_best_response(
            self._alphas,
            self._data_units,
            self._as_price_batch(prices),
            self.spectral_efficiency,
        )

    def allocate(self, price: float) -> np.ndarray:
        """Granted bandwidth after B_max proportional rationing."""
        demands = self.best_response(price)
        if not self._config.enforce_capacity:
            return demands
        return proportional_rationing(demands, self._config.capacity_natural)

    def allocate_batch(self, prices: np.ndarray) -> np.ndarray:
        """Granted bandwidth per price after rationing, shape ``(P, N)``."""
        demands = self.best_response_batch(prices)
        if not self._config.enforce_capacity:
            return demands
        return proportional_rationing(demands, self._config.capacity_natural)

    def _as_price_batch(self, prices: np.ndarray) -> np.ndarray:
        batch = np.asarray(prices, dtype=float)
        if batch.ndim != 1:
            raise ConfigurationError(
                f"expected a price vector of shape (P,), got shape {batch.shape}"
            )
        if batch.size == 0:
            raise ConfigurationError("price vector must not be empty")
        if np.any(~np.isfinite(batch)) or np.any(batch <= 0.0):
            raise ConfigurationError(
                f"prices must be finite and > 0, got {batch!r}"
            )
        return batch

    def as_stack(self):
        """This market as a (cached) ``M = 1``
        :class:`repro.core.marketstack.MarketStack`."""
        if self._stack is None:
            from repro.core.marketstack import MarketStack

            self._stack = MarketStack([self])
        return self._stack

    def outcomes_batch(self, prices: np.ndarray) -> PriceBatchOutcome:
        """Play one trading round per entry of a price vector, vectorised.

        Equivalent to ``[round_outcome(p) for p in prices]`` but evaluated
        in a single numpy pass over the ``(P, N)`` best-response matrix:
        the demands, B_max rationing, leader utility, and follower
        utilities of all ``P`` candidate prices come out of one call. This
        is the engine behind the leader's landscape scan, the vector
        environment, and the batched baseline evaluation.

        Since the market-stack refactor this is the ``M = 1`` broadcast
        case of :meth:`repro.core.marketstack.MarketStack.outcomes_stacked`
        — the single-market price batch is one row of the stacked grid
        solve, so the two paths run the identical numpy operations and
        cannot diverge.
        """
        batch = self._as_price_batch(prices)
        stacked = self.as_stack().outcomes_stacked(batch[np.newaxis, :])
        return stacked.market_rows(0)

    def round_outcome(self, price: float) -> MarketOutcome:
        """Play one full trading round at a posted ``price``.

        Thin scalar wrapper over :meth:`outcomes_batch` with ``P = 1``, so
        scalar and batched evaluation share one code path (and therefore
        agree bitwise, row for row).
        """
        if price <= 0.0 or not math.isfinite(price):
            raise ConfigurationError(f"price must be finite and > 0, got {price!r}")
        return self.outcomes_batch(np.array([float(price)])).row(0)

    # ------------------------------------------------------------------ #
    # leader stage
    # ------------------------------------------------------------------ #
    def msp_utility(self, price: float) -> float:
        """Leader utility at ``price`` with followers playing Eq. (8)."""
        return self.round_outcome(price).msp_utility

    def msp_utilities(self, prices: np.ndarray) -> np.ndarray:
        """Leader utility per entry of a price vector, shape ``(P,)``."""
        return self.outcomes_batch(prices).msp_utilities

    def leader_landscape(
        self, *, grid_points: int = 256, low: float | None = None, high: float | None = None
    ) -> PriceBatchOutcome:
        """The leader's full utility landscape on a uniform price grid.

        Evaluates ``grid_points`` prices spanning ``[C, p_max]`` (or the
        supplied bounds) in one vectorised pass — the scan that used to be
        ``grid_points`` scalar solves.
        """
        config = self._config
        grid = uniform_price_grid(
            config.unit_cost if low is None else float(low),
            config.max_price if high is None else float(high),
            grid_points,
        )
        return self.outcomes_batch(grid)

    def _active_set(self, price: float) -> np.ndarray:
        return self._dropout_thresholds_cached() > price

    def _segment_candidates(self) -> list[float]:
        """Closed-form candidate prices per active-set segment.

        On a segment where the active set A is constant, the unconstrained
        optimum is ``p_A = sqrt(C·SE·Σ_A α / Σ_A D)`` (Theorem 2) and the
        capacity-saturating price is ``p_cap = Σ_A α / (B + Σ_A D/SE)``
        with B the natural capacity. The equilibrium price is one of these
        (clamped to the segment) or a segment boundary.

        This is the readable scalar reference of the candidate enumeration;
        the solve itself runs through the vectorised
        :meth:`repro.core.marketstack.MarketStack._candidate_matrix`, which
        replaces the per-probe ``O(N)`` active-set reductions here with
        prefix sums over the threshold-sorted population.
        """
        config = self._config
        se = self.spectral_efficiency
        thresholds = np.unique(self._dropout_thresholds_cached())
        boundaries = sorted(
            {config.unit_cost, config.max_price}
            | {float(t) for t in thresholds if config.unit_cost < t < config.max_price}
        )
        candidates: set[float] = set(boundaries)
        for low, high in zip(boundaries[:-1], boundaries[1:]):
            probe = 0.5 * (low + high)
            active = self._active_set(probe)
            if not active.any():
                continue
            alpha_sum = float(self._alphas[active].sum())
            data_sum = float(self._data_units[active].sum())
            p_unconstrained = math.sqrt(config.unit_cost * se * alpha_sum / data_sum)
            candidates.add(min(max(p_unconstrained, low), high))
            if config.enforce_capacity:
                p_cap = alpha_sum / (config.capacity_natural + data_sum / se)
                candidates.add(min(max(p_cap, low), high))
        return sorted(candidates)

    def equilibrium(self, *, refine: bool = True) -> StackelbergEquilibrium:
        """Compute the unique Stackelberg equilibrium.

        Strategy: evaluate the exact leader utility at every closed-form
        candidate (active-set optima, capacity-saturating prices, segment
        boundaries), then optionally refine with a bracketed golden-section
        search as a numerical cross-check. The two agree to ~1e-8 for every
        market the test-suite constructs; the better one wins.

        Since the stacked-equilibrium refactor this is the ``M = 1``
        broadcast case of
        :meth:`repro.core.marketstack.MarketStack.equilibria_stacked` —
        the candidate enumeration, its evaluation, and the golden-section
        refinement all run the identical numpy operations a wide stack
        runs per row, so the two entry points cannot diverge (and repeated
        solves hit the stack's memo).

        Raises:
            InfeasibleMarketError: if no feasible price induces any demand.
        """
        return self.as_stack().equilibria_stacked(refine=refine).equilibrium(0)

    def unconstrained_equilibrium_price(self) -> float:
        """Theorem 2's closed form ``p* = sqrt(C·SE·Σα/ΣD)``, ignoring
        B_max, p_max, and follower drop-out. Matches :meth:`equilibrium`
        whenever none of those constraints bind."""
        return math.sqrt(
            self._config.unit_cost
            * self.spectral_efficiency
            * float(self._alphas.sum())
            / float(self._data_units.sum())
        )

    def with_unit_cost(self, unit_cost: float) -> "StackelbergMarket":
        """A copy of this market with a different transmission cost ``C``
        (the Fig. 3(a-b) sweep)."""
        new_config = MarketConfig(
            unit_cost=unit_cost,
            max_price=self._config.max_price,
            max_bandwidth=self._config.max_bandwidth,
            bandwidth_report_scale=self._config.bandwidth_report_scale,
            enforce_capacity=self._config.enforce_capacity,
        )
        return StackelbergMarket(self._vmus, config=new_config, link=self._link)

    def with_vmus(self, vmus: Sequence[VmuProfile]) -> "StackelbergMarket":
        """A copy of this market with a different population
        (the Fig. 3(c-d) sweep)."""
        return StackelbergMarket(vmus, config=self._config, link=self._link)

    def with_link(self, link: RsuLink) -> "StackelbergMarket":
        """A copy of this market on a different RSU link (fading or
        distance drift — the live-service channel updates)."""
        return StackelbergMarket(self._vmus, config=self._config, link=link)
