"""VMU immersion model: ``G_n = α_n · ln(1 + 1/A_n)`` (paper Sec. III-B1).

Immersion is the VMU's monetised experience quality. It is increasing in
migration freshness (decreasing in AoTM) with diminishing returns, which is
what makes the follower's utility strictly concave in bandwidth.
"""

from __future__ import annotations

import math

from repro.core.aotm import aotm, freshness_gain
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["immersion", "immersion_from_bandwidth", "marginal_immersion"]


def immersion(immersion_coef: float, aotm_value: float) -> float:
    """``G = α · ln(1 + 1/A)`` — immersion at a given AoTM."""
    require_positive("immersion_coef", immersion_coef)
    return immersion_coef * freshness_gain(aotm_value)


def immersion_from_bandwidth(
    immersion_coef: float,
    data_units: float,
    bandwidth: float,
    spectral_efficiency: float,
) -> float:
    """Immersion as a function of purchased bandwidth.

    Substituting Eq. (1) into ``G``:
    ``G(b) = α · ln(1 + b·SE/D)``, which is the form used in the follower's
    concavity proof (Theorem 1).
    """
    require_positive("immersion_coef", immersion_coef)
    require_non_negative("bandwidth", bandwidth)
    if bandwidth == 0.0:
        return 0.0
    value = aotm(data_units, bandwidth, spectral_efficiency)
    return immersion(immersion_coef, value)


def marginal_immersion(
    immersion_coef: float,
    data_units: float,
    bandwidth: float,
    spectral_efficiency: float,
) -> float:
    """``dG/db = α·SE / (D + b·SE)`` — the follower's marginal benefit.

    Setting this equal to the price ``p`` yields the best response of
    Eq. (8): ``b* = α/p − D/SE``.
    """
    require_positive("immersion_coef", immersion_coef)
    require_positive("data_units", data_units)
    require_non_negative("bandwidth", bandwidth)
    require_positive("spectral_efficiency", spectral_efficiency)
    return (
        immersion_coef
        * spectral_efficiency
        / (data_units + bandwidth * spectral_efficiency)
    )
