"""The paper's core contribution: AoTM + the Stackelberg incentive market.

Solve entry points, scalar to stacked:

- :meth:`StackelbergMarket.round_outcome` / ``outcomes_batch`` — one
  market at one price / a ``(P,)`` price vector;
- :meth:`MarketStack.outcomes_stacked` — ``M`` different markets at
  ``(M,)`` prices or ``(M, R)`` grids, one numpy pass;
- :meth:`StackelbergMarket.equilibrium` /
  :meth:`MarketStack.equilibria_stacked` — the closed-form Stackelberg
  equilibrium of one market / of ``M`` markets in one stacked candidate
  evaluation plus lockstep golden refinement (the scalar call is the
  ``M = 1`` case of the stacked solve, so the two agree bitwise).
"""

from repro.core.aotm import aotm, aotm_mb, bandwidth_for_target_aotm, freshness_gain
from repro.core.immersion import immersion, immersion_from_bandwidth, marginal_immersion
from repro.core.mechanism import GameHistory, PricingPolicy, RoundRecord, run_rounds
from repro.core.metrics import (
    ImmersionModel,
    LogImmersion,
    SigmoidImmersion,
    average_aoi,
    deadline_violation_probability,
    peak_aoi,
)
from repro.core.marketstack import (
    MarketStack,
    MutableMarketStack,
    StackedEquilibria,
    StackedOutcome,
)
from repro.core.bayesian import (
    BayesianStackelbergEquilibrium,
    BayesianStackelbergMarket,
    ScenarioSpec,
    sample_market_distribution,
    sample_scenarios,
    scenario_market,
)
from repro.core.multimsp import (
    BestResponseTrace,
    MspSpec,
    MultiMspMarket,
    OligopolyEquilibrium,
    OligopolyOutcome,
    oligopoly_equilibria_batch,
    oligopoly_from_market,
)
from repro.core.welfare import (
    WelfareReport,
    social_welfare,
    social_welfare_batch,
    welfare_report,
    welfare_reports_stacked,
)
from repro.core.stackelberg import (
    MarketConfig,
    MarketOutcome,
    PriceBatchOutcome,
    StackelbergEquilibrium,
    StackelbergMarket,
)
from repro.core.utilities import (
    follower_best_response,
    follower_best_response_stacked,
    msp_utilities_stacked,
    msp_utility,
    vmu_utilities,
    vmu_utilities_stacked,
    vmu_utility,
)

__all__ = [
    "aotm",
    "aotm_mb",
    "bandwidth_for_target_aotm",
    "freshness_gain",
    "immersion",
    "immersion_from_bandwidth",
    "marginal_immersion",
    "ImmersionModel",
    "LogImmersion",
    "SigmoidImmersion",
    "average_aoi",
    "deadline_violation_probability",
    "peak_aoi",
    "MarketStack",
    "MutableMarketStack",
    "StackedEquilibria",
    "StackedOutcome",
    "BayesianStackelbergEquilibrium",
    "BayesianStackelbergMarket",
    "ScenarioSpec",
    "sample_market_distribution",
    "sample_scenarios",
    "scenario_market",
    "BestResponseTrace",
    "MspSpec",
    "MultiMspMarket",
    "OligopolyEquilibrium",
    "OligopolyOutcome",
    "oligopoly_equilibria_batch",
    "oligopoly_from_market",
    "WelfareReport",
    "social_welfare",
    "social_welfare_batch",
    "welfare_report",
    "welfare_reports_stacked",
    "GameHistory",
    "PricingPolicy",
    "RoundRecord",
    "run_rounds",
    "MarketConfig",
    "MarketOutcome",
    "PriceBatchOutcome",
    "StackelbergEquilibrium",
    "StackelbergMarket",
    "follower_best_response",
    "follower_best_response_stacked",
    "msp_utilities_stacked",
    "msp_utility",
    "vmu_utilities",
    "vmu_utilities_stacked",
    "vmu_utility",
]
