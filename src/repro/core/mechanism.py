"""Incentive-mechanism interface: anything that posts prices.

A *pricing policy* observes the public history of the repeated game (past
prices and demand vectors — exactly the incomplete information the paper
grants the MSP) and proposes the next unit price. The analytic equilibrium,
the DRL agent, and all baselines implement this one protocol, so the
experiment harness can sweep them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.stackelberg import MarketOutcome, StackelbergMarket

__all__ = ["PricingPolicy", "RoundRecord", "GameHistory", "run_rounds"]


@dataclass(frozen=True)
class RoundRecord:
    """The public outcome of one game round (what the MSP can observe)."""

    round_index: int
    price: float
    demands: tuple[float, ...]
    msp_utility: float

    @property
    def total_demand(self) -> float:
        """Σ b_n of the round (natural units)."""
        return float(sum(self.demands))


@dataclass
class GameHistory:
    """Append-only public history of a repeated pricing game."""

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Record a completed round."""
        self.records.append(record)

    def last(self, count: int) -> list[RoundRecord]:
        """The most recent ``count`` records (fewer if history is short).

        Always returns a plain (possibly empty) list: an empty history or
        ``count = 0`` yields ``[]``, never an error — callers must not need
        to guard. ``count`` larger than the history returns everything.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self.records[-count:] if count else []

    @property
    def best_record(self) -> RoundRecord | None:
        """The round with the highest MSP utility (None when empty).

        Single source of truth for :attr:`best_utility` / :attr:`best_price`,
        so the two can never disagree about which round "best" means.
        """
        if not self.records:
            return None
        return max(self.records, key=lambda r: r.msp_utility)

    @property
    def best_utility(self) -> float:
        """Highest MSP utility observed so far (-inf when empty, so it can
        seed a running maximum without a guard)."""
        best = self.best_record
        return float("-inf") if best is None else best.msp_utility

    @property
    def best_price(self) -> float | None:
        """Price that achieved :attr:`best_utility` (None when empty)."""
        best = self.best_record
        return None if best is None else best.price

    def __len__(self) -> int:
        return len(self.records)


@runtime_checkable
class PricingPolicy(Protocol):
    """Anything that can act as the MSP's pricing strategy."""

    def propose_price(self, history: GameHistory) -> float:
        """Return the unit price for the next round given public history."""
        ...

    def reset(self) -> None:
        """Clear internal state before a fresh episode."""
        ...


def run_rounds(
    market: StackelbergMarket,
    policy: PricingPolicy,
    num_rounds: int,
    *,
    history: GameHistory | None = None,
) -> tuple[GameHistory, list[MarketOutcome]]:
    """Play ``num_rounds`` of the repeated pricing game.

    Each round: the policy proposes a price from public history (clamped to
    the feasible ``[C, p_max]``), followers best-respond, and the outcome is
    appended to the history. Returns the final history and per-round
    outcomes. Record indices continue from the supplied history, so a
    multi-segment history numbers its rounds uniquely (and matches
    :func:`repro.sim.play_policy`).
    """
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
    history = history if history is not None else GameHistory()
    outcomes: list[MarketOutcome] = []
    config = market.config
    for round_index in range(len(history), len(history) + num_rounds):
        raw_price = float(policy.propose_price(history))
        price = float(np.clip(raw_price, config.unit_cost, config.max_price))
        outcome = market.round_outcome(price)
        outcomes.append(outcome)
        history.append(
            RoundRecord(
                round_index=round_index,
                price=price,
                demands=tuple(float(b) for b in outcome.allocations),
                msp_utility=outcome.msp_utility,
            )
        )
    return history, outcomes
