"""Utility functions of the two game stages (Eqs. 2 and 4).

Follower (VMU n):  U_n(b_n) = α_n ln(1 + b_n·SE/D_n) − p·b_n
Leader  (MSP):     U_s(p)   = Σ_n (p − C)·b_n

Both are exposed in scalar and vectorised forms. On top of the population
axis (``N`` VMUs), every vectorised form also accepts a *price batch*: pass
a price vector of shape ``(P,)`` and the population functions broadcast to
``(P, N)`` (one row per price) while :func:`msp_utility` reduces to
``(P,)``. This is the numpy hot path the batched simulation engine
(:mod:`repro.sim`) drives — a full leader price grid evaluates in a single
pass instead of ``P`` Python-level solves. Scalar prices keep their exact
historical semantics (and return types), so the two entry points stay
bit-compatible row for row.

The ``*_stacked`` variants add a *market* axis ``M`` in front of everything:
per-market parameter matrices of shape ``(M, N)`` (ragged populations padded
— see :class:`repro.core.marketstack.MarketStack`) with per-market prices
``(M,)`` or price grids ``(M, R)``, and per-market spectral efficiencies /
unit costs ``(M,)``. Every stacked operation is elementwise-identical to the
per-market form, so a stacked solve of ``M`` different markets agrees
bitwise with ``M`` separate solves.
"""

from __future__ import annotations

from repro.backend import xp

from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "vmu_utility",
    "vmu_utilities",
    "vmu_utilities_stacked",
    "msp_utility",
    "msp_utilities_stacked",
    "follower_best_response",
    "follower_best_response_stacked",
]


def vmu_utility(
    immersion_coef: float,
    data_units: float,
    bandwidth: float,
    price: float,
    spectral_efficiency: float,
) -> float:
    """Utility of one VMU at purchase ``bandwidth`` under ``price`` (Eq. 2)."""
    require_positive("immersion_coef", immersion_coef)
    require_positive("data_units", data_units)
    require_non_negative("bandwidth", bandwidth)
    require_non_negative("price", price)
    require_positive("spectral_efficiency", spectral_efficiency)
    gain = immersion_coef * xp.log1p(bandwidth * spectral_efficiency / data_units)
    return float(gain - price * bandwidth)


def vmu_utilities(
    immersion_coefs: xp.ndarray,
    data_units: xp.ndarray,
    bandwidths: xp.ndarray,
    price: float | xp.ndarray,
    spectral_efficiency: float,
) -> xp.ndarray:
    """Vectorised Eq. (2) over a population, optionally batched over prices.

    With a scalar ``price`` and ``bandwidths`` of shape ``(N,)`` this is the
    historical per-population form. With ``price`` of shape ``(P,)`` and
    ``bandwidths`` of shape ``(P, N)`` it returns per-price utilities
    ``(P, N)`` in one pass.
    """
    alphas = xp.asarray(immersion_coefs, dtype=float)
    data = xp.asarray(data_units, dtype=float)
    bands = xp.asarray(bandwidths, dtype=float)
    prices = xp.asarray(price, dtype=float)
    if prices.ndim == 1:
        if bands.ndim != 2 or bands.shape[0] != prices.shape[0]:
            raise ValueError(
                f"price batch of shape {prices.shape} needs bandwidths of "
                f"shape (P, N), got {bands.shape}"
            )
        prices = prices[:, xp.newaxis]
    gains = alphas * xp.log1p(bands * spectral_efficiency / data)
    return gains - prices * bands


def msp_utility(
    price: float | xp.ndarray, unit_cost: float, bandwidths: xp.ndarray
) -> float | xp.ndarray:
    """Leader utility ``Σ (p − C)·b_n`` (Eq. 4).

    Scalar ``price`` + ``(N,)`` bandwidths returns a float; a price batch
    ``(P,)`` + ``(P, N)`` bandwidths returns the per-price utilities ``(P,)``.
    """
    require_positive("unit_cost", unit_cost)
    bands = xp.asarray(bandwidths, dtype=float)
    if xp.any(bands < 0.0):
        raise ValueError("bandwidths must be >= 0")
    prices = xp.asarray(price, dtype=float)
    if prices.ndim == 0:
        require_non_negative("price", float(prices))
        return float((float(prices) - unit_cost) * bands.sum())
    if xp.any(~xp.isfinite(prices)) or xp.any(prices < 0.0):
        raise ValueError(f"prices must be finite and >= 0, got {prices!r}")
    if bands.ndim != 2 or bands.shape[0] != prices.shape[0]:
        raise ValueError(
            f"price batch of shape {prices.shape} needs bandwidths of shape "
            f"(P, N), got {bands.shape}"
        )
    return (prices - unit_cost) * bands.sum(axis=-1)


def follower_best_response(
    immersion_coefs: xp.ndarray,
    data_units: xp.ndarray,
    price: float | xp.ndarray,
    spectral_efficiency: float,
) -> xp.ndarray:
    """Vectorised best response of Eq. (8), truncated at zero.

    ``b*_n = max(0, α_n/p − D_n/SE)``. The truncation implements the
    feasibility constraint ``b_n > 0`` of Problem 1: a VMU facing a price
    above its drop-out threshold ``α_n·SE/D_n`` buys nothing.

    ``price`` may be a scalar (returns ``(N,)``) or a vector of shape
    ``(P,)`` (returns the best-response matrix ``(P, N)``, one row per
    posted price).
    """
    require_positive("spectral_efficiency", spectral_efficiency)
    alphas = xp.asarray(immersion_coefs, dtype=float)
    data = xp.asarray(data_units, dtype=float)
    if xp.any(alphas <= 0.0) or xp.any(data <= 0.0):
        raise ValueError("immersion coefficients and data sizes must be > 0")
    prices = xp.asarray(price, dtype=float)
    if prices.ndim == 0:
        require_positive("price", float(prices))
        return xp.maximum(0.0, alphas / float(prices) - data / spectral_efficiency)
    if xp.any(~xp.isfinite(prices)) or xp.any(prices <= 0.0):
        raise ValueError(f"prices must be finite and > 0, got {prices!r}")
    return xp.maximum(
        0.0,
        alphas[xp.newaxis, :] / prices[:, xp.newaxis]
        - data[xp.newaxis, :] / spectral_efficiency,
    )


def _stacked_price_axes(prices: xp.ndarray, num_markets: int) -> xp.ndarray:
    """Validate a stacked price array ``(M,)`` or ``(M, R)``."""
    if prices.ndim not in (1, 2) or prices.shape[0] != num_markets:
        raise ValueError(
            f"stacked prices must have shape (M,) or (M, R) with M = "
            f"{num_markets}, got {prices.shape}"
        )
    return prices


def follower_best_response_stacked(
    immersion_coefs: xp.ndarray,
    data_units: xp.ndarray,
    prices: xp.ndarray,
    spectral_efficiencies: xp.ndarray,
) -> xp.ndarray:
    """Eq. (8) best responses across a stack of *different* markets.

    Args:
        immersion_coefs: per-market ``α`` matrix, shape ``(M, N)``.
        data_units: per-market ``D`` matrix, shape ``(M, N)``.
        prices: one price per market ``(M,)`` or a per-market price grid
            ``(M, R)``.
        spectral_efficiencies: per-market link SE, shape ``(M,)``.

    Returns:
        Best responses of shape ``(M, N)`` (vector prices) or ``(M, R, N)``
        (grid prices). Every entry is the identical elementwise expression
        the per-market :func:`follower_best_response` evaluates, so a
        stacked solve agrees bitwise with ``M`` separate solves.
    """
    alphas = xp.asarray(immersion_coefs, dtype=float)
    data = xp.asarray(data_units, dtype=float)
    se = xp.asarray(spectral_efficiencies, dtype=float)
    if alphas.ndim != 2 or data.shape != alphas.shape:
        raise ValueError(
            "immersion coefficients and data sizes must share one (M, N) "
            f"shape, got {alphas.shape} and {data.shape}"
        )
    if se.shape != (alphas.shape[0],):
        raise ValueError(
            f"spectral efficiencies must have shape (M,), got {se.shape}"
        )
    if xp.any(alphas <= 0.0) or xp.any(data <= 0.0) or xp.any(se <= 0.0):
        raise ValueError(
            "immersion coefficients, data sizes, and spectral efficiencies "
            "must be > 0"
        )
    p = _stacked_price_axes(xp.asarray(prices, dtype=float), alphas.shape[0])
    if xp.any(~xp.isfinite(p)) or xp.any(p <= 0.0):
        raise ValueError(f"prices must be finite and > 0, got {p!r}")
    return _follower_best_response_rows(alphas, data, p, se)


def _follower_best_response_rows(
    alphas: xp.ndarray,
    data: xp.ndarray,
    p: xp.ndarray,
    se: xp.ndarray,
) -> xp.ndarray:
    """Trusted-input kernel of :func:`follower_best_response_stacked`.

    Callers guarantee validated float arrays of matching shapes
    (:class:`repro.core.marketstack.MarketStack` validates its static
    parameters once at construction, then drives this kernel every
    environment round). The arithmetic is the public function's, verbatim,
    so results stay bitwise-identical.
    """
    if p.ndim == 1:
        return xp.maximum(
            0.0, alphas / p[:, xp.newaxis] - data / se[:, xp.newaxis]
        )
    return xp.maximum(
        0.0,
        alphas[:, xp.newaxis, :] / p[:, :, xp.newaxis]
        - data[:, xp.newaxis, :] / se[:, xp.newaxis, xp.newaxis],
    )


def vmu_utilities_stacked(
    immersion_coefs: xp.ndarray,
    data_units: xp.ndarray,
    bandwidths: xp.ndarray,
    prices: xp.ndarray,
    spectral_efficiencies: xp.ndarray,
) -> xp.ndarray:
    """Eq. (2) follower utilities across a stack of different markets.

    Shapes mirror :func:`follower_best_response_stacked`: ``bandwidths`` is
    ``(M, N)`` with prices ``(M,)``, or ``(M, R, N)`` with prices
    ``(M, R)``; the result has the bandwidths' shape.
    """
    alphas = xp.asarray(immersion_coefs, dtype=float)
    data = xp.asarray(data_units, dtype=float)
    bands = xp.asarray(bandwidths, dtype=float)
    se = xp.asarray(spectral_efficiencies, dtype=float)
    p = _stacked_price_axes(xp.asarray(prices, dtype=float), alphas.shape[0])
    if p.ndim == 1:
        if bands.shape != alphas.shape:
            raise ValueError(
                f"per-market prices (M,) need bandwidths of shape (M, N), "
                f"got {bands.shape}"
            )
    elif bands.shape != (p.shape[0], p.shape[1], alphas.shape[1]):
        raise ValueError(
            f"price grids (M, R) need bandwidths of shape (M, R, N), "
            f"got {bands.shape}"
        )
    return _vmu_utilities_rows(alphas, data, bands, p, se)


def _vmu_utilities_rows(
    alphas: xp.ndarray,
    data: xp.ndarray,
    bands: xp.ndarray,
    p: xp.ndarray,
    se: xp.ndarray,
) -> xp.ndarray:
    """Trusted-input kernel of :func:`vmu_utilities_stacked` (same
    caller contract as :func:`_follower_best_response_rows`)."""
    if p.ndim == 1:
        gains = alphas * xp.log1p(bands * se[:, xp.newaxis] / data)
        return gains - p[:, xp.newaxis] * bands
    gains = alphas[:, xp.newaxis, :] * xp.log1p(
        bands * se[:, xp.newaxis, xp.newaxis] / data[:, xp.newaxis, :]
    )
    return gains - p[:, :, xp.newaxis] * bands


def msp_utilities_stacked(
    prices: xp.ndarray,
    unit_costs: xp.ndarray,
    total_bandwidths: xp.ndarray,
) -> xp.ndarray:
    """Eq. (4) leader utilities across a stack of different markets.

    Takes the already-reduced per-market demand totals (``Σ_n b_n``, shape
    matching ``prices``) rather than the bandwidth matrix: ragged stacks
    must sum each market over its *own* population to stay bitwise equal to
    the per-market path, so the reduction lives with the caller that knows
    the population boundaries (:class:`repro.core.marketstack.MarketStack`).
    """
    p = xp.asarray(prices, dtype=float)
    costs = xp.asarray(unit_costs, dtype=float)
    totals = xp.asarray(total_bandwidths, dtype=float)
    if costs.shape != (p.shape[0],):
        raise ValueError(f"unit costs must have shape (M,), got {costs.shape}")
    if totals.shape != p.shape:
        raise ValueError(
            f"total bandwidths must match prices' shape {p.shape}, "
            f"got {totals.shape}"
        )
    if xp.any(costs <= 0.0):
        raise ValueError("unit costs must be > 0")
    return _msp_utilities_rows(p, costs, totals)


def _msp_utilities_rows(
    p: xp.ndarray, costs: xp.ndarray, totals: xp.ndarray
) -> xp.ndarray:
    """Trusted-input kernel of :func:`msp_utilities_stacked` (same
    caller contract as :func:`_follower_best_response_rows`)."""
    if p.ndim == 1:
        return (p - costs) * totals
    return (p - costs[:, xp.newaxis]) * totals
