"""Utility functions of the two game stages (Eqs. 2 and 4).

Follower (VMU n):  U_n(b_n) = α_n ln(1 + b_n·SE/D_n) − p·b_n
Leader  (MSP):     U_s(p)   = Σ_n (p − C)·b_n

Both are exposed in scalar and vectorised forms. On top of the population
axis (``N`` VMUs), every vectorised form also accepts a *price batch*: pass
a price vector of shape ``(P,)`` and the population functions broadcast to
``(P, N)`` (one row per price) while :func:`msp_utility` reduces to
``(P,)``. This is the numpy hot path the batched simulation engine
(:mod:`repro.sim`) drives — a full leader price grid evaluates in a single
pass instead of ``P`` Python-level solves. Scalar prices keep their exact
historical semantics (and return types), so the two entry points stay
bit-compatible row for row.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "vmu_utility",
    "vmu_utilities",
    "msp_utility",
    "follower_best_response",
]


def vmu_utility(
    immersion_coef: float,
    data_units: float,
    bandwidth: float,
    price: float,
    spectral_efficiency: float,
) -> float:
    """Utility of one VMU at purchase ``bandwidth`` under ``price`` (Eq. 2)."""
    require_positive("immersion_coef", immersion_coef)
    require_positive("data_units", data_units)
    require_non_negative("bandwidth", bandwidth)
    require_non_negative("price", price)
    require_positive("spectral_efficiency", spectral_efficiency)
    gain = immersion_coef * np.log1p(bandwidth * spectral_efficiency / data_units)
    return float(gain - price * bandwidth)


def vmu_utilities(
    immersion_coefs: np.ndarray,
    data_units: np.ndarray,
    bandwidths: np.ndarray,
    price: float | np.ndarray,
    spectral_efficiency: float,
) -> np.ndarray:
    """Vectorised Eq. (2) over a population, optionally batched over prices.

    With a scalar ``price`` and ``bandwidths`` of shape ``(N,)`` this is the
    historical per-population form. With ``price`` of shape ``(P,)`` and
    ``bandwidths`` of shape ``(P, N)`` it returns per-price utilities
    ``(P, N)`` in one pass.
    """
    alphas = np.asarray(immersion_coefs, dtype=float)
    data = np.asarray(data_units, dtype=float)
    bands = np.asarray(bandwidths, dtype=float)
    prices = np.asarray(price, dtype=float)
    if prices.ndim == 1:
        if bands.ndim != 2 or bands.shape[0] != prices.shape[0]:
            raise ValueError(
                f"price batch of shape {prices.shape} needs bandwidths of "
                f"shape (P, N), got {bands.shape}"
            )
        prices = prices[:, np.newaxis]
    gains = alphas * np.log1p(bands * spectral_efficiency / data)
    return gains - prices * bands


def msp_utility(
    price: float | np.ndarray, unit_cost: float, bandwidths: np.ndarray
) -> float | np.ndarray:
    """Leader utility ``Σ (p − C)·b_n`` (Eq. 4).

    Scalar ``price`` + ``(N,)`` bandwidths returns a float; a price batch
    ``(P,)`` + ``(P, N)`` bandwidths returns the per-price utilities ``(P,)``.
    """
    require_positive("unit_cost", unit_cost)
    bands = np.asarray(bandwidths, dtype=float)
    if np.any(bands < 0.0):
        raise ValueError("bandwidths must be >= 0")
    prices = np.asarray(price, dtype=float)
    if prices.ndim == 0:
        require_non_negative("price", float(prices))
        return float((float(prices) - unit_cost) * bands.sum())
    if np.any(~np.isfinite(prices)) or np.any(prices < 0.0):
        raise ValueError(f"prices must be finite and >= 0, got {prices!r}")
    if bands.ndim != 2 or bands.shape[0] != prices.shape[0]:
        raise ValueError(
            f"price batch of shape {prices.shape} needs bandwidths of shape "
            f"(P, N), got {bands.shape}"
        )
    return (prices - unit_cost) * bands.sum(axis=-1)


def follower_best_response(
    immersion_coefs: np.ndarray,
    data_units: np.ndarray,
    price: float | np.ndarray,
    spectral_efficiency: float,
) -> np.ndarray:
    """Vectorised best response of Eq. (8), truncated at zero.

    ``b*_n = max(0, α_n/p − D_n/SE)``. The truncation implements the
    feasibility constraint ``b_n > 0`` of Problem 1: a VMU facing a price
    above its drop-out threshold ``α_n·SE/D_n`` buys nothing.

    ``price`` may be a scalar (returns ``(N,)``) or a vector of shape
    ``(P,)`` (returns the best-response matrix ``(P, N)``, one row per
    posted price).
    """
    require_positive("spectral_efficiency", spectral_efficiency)
    alphas = np.asarray(immersion_coefs, dtype=float)
    data = np.asarray(data_units, dtype=float)
    if np.any(alphas <= 0.0) or np.any(data <= 0.0):
        raise ValueError("immersion coefficients and data sizes must be > 0")
    prices = np.asarray(price, dtype=float)
    if prices.ndim == 0:
        require_positive("price", float(prices))
        return np.maximum(0.0, alphas / float(prices) - data / spectral_efficiency)
    if np.any(~np.isfinite(prices)) or np.any(prices <= 0.0):
        raise ValueError(f"prices must be finite and > 0, got {prices!r}")
    return np.maximum(
        0.0,
        alphas[np.newaxis, :] / prices[:, np.newaxis]
        - data[np.newaxis, :] / spectral_efficiency,
    )
