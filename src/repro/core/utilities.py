"""Utility functions of the two game stages (Eqs. 2 and 4).

Follower (VMU n):  U_n(b_n) = α_n ln(1 + b_n·SE/D_n) − p·b_n
Leader  (MSP):     U_s(p)   = Σ_n (p − C)·b_n

Both are exposed in scalar and vectorised forms; the vectorised forms are
what the environment and the equilibrium solver use on every game round.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "vmu_utility",
    "vmu_utilities",
    "msp_utility",
    "follower_best_response",
]


def vmu_utility(
    immersion_coef: float,
    data_units: float,
    bandwidth: float,
    price: float,
    spectral_efficiency: float,
) -> float:
    """Utility of one VMU at purchase ``bandwidth`` under ``price`` (Eq. 2)."""
    require_positive("immersion_coef", immersion_coef)
    require_positive("data_units", data_units)
    require_non_negative("bandwidth", bandwidth)
    require_non_negative("price", price)
    require_positive("spectral_efficiency", spectral_efficiency)
    gain = immersion_coef * np.log1p(bandwidth * spectral_efficiency / data_units)
    return float(gain - price * bandwidth)


def vmu_utilities(
    immersion_coefs: np.ndarray,
    data_units: np.ndarray,
    bandwidths: np.ndarray,
    price: float,
    spectral_efficiency: float,
) -> np.ndarray:
    """Vectorised Eq. (2) over a population."""
    alphas = np.asarray(immersion_coefs, dtype=float)
    data = np.asarray(data_units, dtype=float)
    bands = np.asarray(bandwidths, dtype=float)
    gains = alphas * np.log1p(bands * spectral_efficiency / data)
    return gains - price * bands


def msp_utility(price: float, unit_cost: float, bandwidths: np.ndarray) -> float:
    """Leader utility ``Σ (p − C)·b_n`` (Eq. 4)."""
    require_non_negative("price", price)
    require_positive("unit_cost", unit_cost)
    bands = np.asarray(bandwidths, dtype=float)
    if np.any(bands < 0.0):
        raise ValueError("bandwidths must be >= 0")
    return float((price - unit_cost) * bands.sum())


def follower_best_response(
    immersion_coefs: np.ndarray,
    data_units: np.ndarray,
    price: float,
    spectral_efficiency: float,
) -> np.ndarray:
    """Vectorised best response of Eq. (8), truncated at zero.

    ``b*_n = max(0, α_n/p − D_n/SE)``. The truncation implements the
    feasibility constraint ``b_n > 0`` of Problem 1: a VMU facing a price
    above its drop-out threshold ``α_n·SE/D_n`` buys nothing.
    """
    require_positive("price", price)
    require_positive("spectral_efficiency", spectral_efficiency)
    alphas = np.asarray(immersion_coefs, dtype=float)
    data = np.asarray(data_units, dtype=float)
    if np.any(alphas <= 0.0) or np.any(data <= 0.0):
        raise ValueError("immersion coefficients and data sizes must be > 0")
    return np.maximum(0.0, alphas / price - data / spectral_efficiency)
