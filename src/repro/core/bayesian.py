"""Bayesian Stackelberg pricing over a distribution of markets.

PyNFG's Stackelberg example frames the game as chance node → leader →
follower: nature draws market conditions, the leader prices *before*
seeing the draw, the followers best-respond inside the realised market.
This module adopts that shape on top of the stacked solver: a
:class:`BayesianStackelbergMarket` is a weighted :class:`MarketStack`
sample of scenarios, and the leader's expected-utility objective is a
weights-dot-rows reduction over **one** stacked evaluation — so the
robust solve reuses the exact machinery (candidate matrix, stacked
outcome evaluation, ``grid_then_golden`` with a vector objective) that
already solves the deterministic game. The deterministic
:meth:`StackelbergMarket.equilibrium` is literally the one-atom case:
with a single scenario of weight 1.0 every evaluation in
:meth:`BayesianStackelbergMarket.equilibrium` is the same call the
stacked scalar solve makes, so the two agree bitwise (pinned in tests).

Scenario sampling determinism: ``scenario_market(base, spec, i)`` is a
pure function of ``(base, spec.seed, i)`` — the draw stream is
``np.random.default_rng([spec.seed, index])`` (the same per-index
seeding the city grid uses), so scenario ``i`` is identical no matter
how many scenarios are sampled around it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.core.marketstack import MarketStack, StackedEquilibria
from repro.core.stackelberg import StackelbergMarket
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError, InfeasibleMarketError
from repro.game.solvers import grid_then_golden
from repro.utils.validation import require_in_range, require_positive_int

__all__ = [
    "ScenarioSpec",
    "BayesianStackelbergEquilibrium",
    "BayesianStackelbergMarket",
    "scenario_market",
    "sample_scenarios",
    "sample_market_distribution",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """How to sample market scenarios around a base market.

    Each jitter is the half-width of a multiplicative uniform factor
    (``0.25`` → factors in ``[0.75, 1.25]``): ``alpha_jitter`` scales
    every VMU's immersion coefficient, ``data_jitter`` its VT size, and
    ``capacity_jitter`` the market's sellable bandwidth ``B_max``.
    """

    num_scenarios: int = 16
    seed: int = 0
    alpha_jitter: float = 0.25
    data_jitter: float = 0.25
    capacity_jitter: float = 0.0

    def __post_init__(self) -> None:
        require_positive_int("num_scenarios", self.num_scenarios)
        for name in ("alpha_jitter", "data_jitter", "capacity_jitter"):
            value = require_in_range(name, getattr(self, name), 0.0, 1.0)
            if value == 1.0:
                # A unit jitter admits factor 0, which would zero out a
                # VMU parameter that must stay positive.
                raise ConfigurationError(f"{name} must be < 1, got {value!r}")


def scenario_market(
    base: StackelbergMarket, spec: ScenarioSpec, index: int
) -> StackelbergMarket:
    """Scenario ``index`` of the distribution — a pure function of
    ``(base, spec, index)``.

    The draw stream is ``np.random.default_rng([spec.seed, index])``, so
    the scenario does not depend on which other indices are sampled
    (the determinism contract documented in ``sim/README.md``). The
    stream layout is fixed — per-VMU α factors, per-VMU data factors,
    one capacity factor — and every factor is drawn even at zero jitter
    (``uniform(1, 1)`` is exactly ``1.0``), so turning a jitter knob
    never shifts the other draws.
    """
    if index < 0:
        raise ConfigurationError(f"scenario index must be >= 0, got {index}")
    rng = np.random.default_rng([spec.seed, index])
    count = base.num_vmus
    alpha_factors = rng.uniform(
        1.0 - spec.alpha_jitter, 1.0 + spec.alpha_jitter, size=count
    )
    data_factors = rng.uniform(
        1.0 - spec.data_jitter, 1.0 + spec.data_jitter, size=count
    )
    capacity_factor = float(
        rng.uniform(1.0 - spec.capacity_jitter, 1.0 + spec.capacity_jitter)
    )
    vmus = [
        VmuProfile(
            vmu_id=vmu.vmu_id,
            data_size_mb=vmu.data_size_mb * float(data_factors[i]),
            immersion_coef=vmu.immersion_coef * float(alpha_factors[i]),
        )
        for i, vmu in enumerate(base.vmus)
    ]
    config = replace(
        base.config, max_bandwidth=base.config.max_bandwidth * capacity_factor
    )
    return StackelbergMarket(vmus, config=config, link=base.link)


def sample_scenarios(
    base: StackelbergMarket, spec: ScenarioSpec
) -> list[StackelbergMarket]:
    """Sample ``spec.num_scenarios`` scenarios around ``base``."""
    return [scenario_market(base, spec, i) for i in range(spec.num_scenarios)]


def sample_market_distribution(
    base: StackelbergMarket,
    spec: ScenarioSpec,
    *,
    weights: Sequence[float] | None = None,
) -> "BayesianStackelbergMarket":
    """Sample a scenario distribution around ``base`` (uniform weights
    unless given)."""
    return BayesianStackelbergMarket(sample_scenarios(base, spec), weights=weights)


@dataclass(frozen=True)
class BayesianStackelbergEquilibrium:
    """The leader's robust price against the scenario distribution.

    Attributes:
        price: the expected-utility-maximising posted price.
        expected_utility: Σ_m w_m · U_MSP(price; scenario m).
        scenario_utilities: ``(M,)`` realised leader utility per scenario
            at the robust price.
        weights: ``(M,)`` scenario weights (normalised).
        feasible: ``(M,)`` per-scenario feasibility of the underlying
            deterministic game.
    """

    price: float
    expected_utility: float
    scenario_utilities: np.ndarray
    weights: np.ndarray
    feasible: np.ndarray


class BayesianStackelbergMarket:
    """A weighted distribution over Stackelberg market scenarios.

    The leader commits to **one** price before nature's draw; followers
    best-respond inside the realised scenario. All scenarios must share
    the leader's decision space — unit cost and price cap are required
    to match exactly across scenarios.
    """

    def __init__(
        self,
        scenarios: Sequence[StackelbergMarket],
        *,
        weights: Sequence[float] | None = None,
    ) -> None:
        markets = tuple(scenarios)
        if not markets:
            raise ConfigurationError("distribution needs at least one scenario")
        unit_cost = markets[0].config.unit_cost
        max_price = markets[0].config.max_price
        for index, market in enumerate(markets):
            if (
                market.config.unit_cost != unit_cost
                or market.config.max_price != max_price
            ):
                raise ConfigurationError(
                    "scenarios must share the leader's decision space: "
                    f"scenario {index} has (C, p_max) = "
                    f"({market.config.unit_cost}, {market.config.max_price}), "
                    f"expected ({unit_cost}, {max_price})"
                )
        if weights is None:
            weight_vec = np.full(len(markets), 1.0 / len(markets))
        else:
            weight_vec = np.asarray(weights, dtype=float)
            if weight_vec.shape != (len(markets),):
                raise ConfigurationError(
                    f"expected {len(markets)} weights, got shape {weight_vec.shape}"
                )
            if not np.all(np.isfinite(weight_vec)) or np.any(weight_vec <= 0.0):
                raise ConfigurationError("weights must be finite and > 0")
            weight_vec = weight_vec / weight_vec.sum()
        self._markets = markets
        self._weights = weight_vec
        self._stack = MarketStack(markets)
        self._unit_cost = float(unit_cost)
        self._max_price = float(max_price)

    @property
    def scenarios(self) -> tuple[StackelbergMarket, ...]:
        """The scenario markets."""
        return self._markets

    @property
    def num_scenarios(self) -> int:
        """Number of scenarios M."""
        return len(self._markets)

    @property
    def weights(self) -> np.ndarray:
        """Normalised scenario weights (copy)."""
        return self._weights.copy()

    @property
    def unit_cost(self) -> float:
        """The shared unit cost ``C`` (price floor)."""
        return self._unit_cost

    @property
    def max_price(self) -> float:
        """The shared price cap ``p_max``."""
        return self._max_price

    @property
    def stack(self) -> MarketStack:
        """The scenario stack (shared with the oracle solve)."""
        return self._stack

    def _expected(self, utilities: np.ndarray) -> np.ndarray:
        """Weights-dot-rows reduction ``Σ_m w_m · utilities[m]``.

        Written as an explicit left-to-right accumulation (not a BLAS
        ``w @ U``) so the reduction order — and therefore the bits — is
        fixed for any M, and the one-atom case is literally
        ``1.0 * utilities[0]``. Tests pin the weighted scalar reference
        against this exact order.
        """
        expected = self._weights[0] * utilities[0]
        for m in range(1, len(self._markets)):
            expected = expected + self._weights[m] * utilities[m]
        return expected

    def expected_utilities(self, prices: Sequence[float] | np.ndarray) -> np.ndarray:
        """Expected leader utility at each price of a ``(P,)`` vector.

        One stacked evaluation: the price vector broadcasts to an
        ``(M, P)`` grid (every scenario sees every price), then the
        weighted reduction collapses the scenario axis.
        """
        price_vec = np.asarray(prices, dtype=float)
        if price_vec.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-D price vector, got shape {price_vec.shape}"
            )
        grid = np.broadcast_to(
            price_vec, (len(self._markets), price_vec.shape[0])
        )
        utilities = self._stack.outcomes_stacked(grid).msp_utilities
        return self._expected(utilities)

    def expected_utility(self, price: float) -> float:
        """Expected leader utility at one price."""
        return float(self.expected_utilities(np.array([float(price)]))[0])

    def scenario_utilities(self, price: float) -> np.ndarray:
        """Per-scenario leader utility at one price, shape ``(M,)``."""
        prices = np.full(len(self._markets), float(price))
        return self._stack.outcomes_stacked(prices).msp_utilities

    def oracle_equilibria(self) -> StackedEquilibria:
        """Per-scenario full-information equilibria (the oracle that
        knows nature's draw), solved in one stacked pass."""
        return self._stack.equilibria_stacked()

    def equilibrium(self, *, refine: bool = True) -> BayesianStackelbergEquilibrium:
        """Maximise the leader's expected utility over ``[C, p_max]``.

        Mirrors :meth:`MarketStack.equilibria_stacked` step for step —
        pooled closed-form candidates from every scenario evaluated in
        one stacked pass, argmax, then (with ``refine``) a
        ``grid_then_golden`` cross-check through the vector objective,
        better value wins — so the one-atom case reproduces
        :meth:`StackelbergMarket.equilibrium` bitwise.

        Raises:
            InfeasibleMarketError: if no scenario admits a profitable
                price (scenarios that are individually infeasible merely
                contribute their realised utility to the expectation).
        """
        candidates, feasible = self._stack._candidate_matrix()
        if not bool(np.any(feasible)):
            raise InfeasibleMarketError(
                "no scenario in the distribution admits a profitable price"
            )
        pooled = np.asarray(candidates, dtype=float).reshape(-1)
        values = self.expected_utilities(pooled)
        best_index = int(np.argmax(values))
        best_price = float(pooled[best_index])
        best_value = float(values[best_index])
        if refine:
            refined_price, refined_value = grid_then_golden(
                self.expected_utility,
                self._unit_cost,
                self._max_price,
                vector_objective=self.expected_utilities,
            )
            if refined_value > best_value:
                best_price, best_value = float(refined_price), float(refined_value)
        realised = self.scenario_utilities(best_price)
        return BayesianStackelbergEquilibrium(
            price=best_price,
            expected_utility=float(self._expected(realised)),
            scenario_utilities=realised,
            weights=self._weights.copy(),
            feasible=np.asarray(feasible, dtype=bool).copy(),
        )
