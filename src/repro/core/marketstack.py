"""Heterogeneous market stacking: M *different* Stackelberg markets, one pass.

:class:`StackelbergMarket.outcomes_batch` vectorises many prices against one
market. This module adds the orthogonal axis the paper's figures actually
sweep — many *markets*: a :class:`MarketStack` stacks the per-market
parameter arrays (``α`` and ``D`` as ``(M, N)`` matrices, capacities, unit
costs, and spectral efficiencies as ``(M,)`` vectors, ragged populations
padded and masked) and solves all ``M`` follower stages plus leader
utilities in a single numpy pass via :meth:`MarketStack.outcomes_stacked`.

Exactness contract
------------------
A stacked solve agrees **bitwise** with ``M`` separate per-market solves:

- every follower/leader quantity is the identical elementwise expression
  the per-market path evaluates (`core/utilities` grew the matching
  ``*_stacked`` forms);
- padded population slots carry zero demand, and zeros are exact under
  both multiplication and addition;
- ragged stacks reduce each market's totals over its *own* population
  (summing a zero-padded row can associate differently inside numpy's
  pairwise reduction and drift a ulp), so the summation order matches the
  per-market solve exactly.

``StackelbergMarket.outcomes_batch`` is the ``M = 1`` broadcast case of
this path — the single-market price batch delegates here, so the two
entry points cannot diverge.

Chunking contract
-----------------
:meth:`MarketStack.equilibria_stacked_chunked` streams the equilibrium
solve over row ranges of the stack so peak memory is bounded by the chunk,
not by ``M``. Every operation of the solve — the Theorem-2 candidate
matrix, the candidate evaluation, and the lockstep golden refinement — is
row-local (reductions run along the population or candidate axis, never
across markets), so solving rows ``[lo, hi)`` alone produces bitwise the
same numbers those rows get inside the full stacked solve. The per-chunk
evaluation writes into one set of preallocated scratch buffers
(:class:`_ChunkScratch`) reused across all chunks, and results stream into
preallocated ``(M,)``/``(M, N_max)`` output arrays — memory scales with
``chunk_size``, results are bitwise-equal to :meth:`equilibria_stacked`
for *every* chunk size. See ``sim/README.md`` for the budget semantics.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.backend import xp

from repro.channel.ofdma import _rationing_rows, proportional_rationing_stacked
from repro.core.stackelberg import (
    MarketOutcome,
    PriceBatchOutcome,
    StackelbergEquilibrium,
    StackelbergMarket,
)
from repro.core.utilities import (
    _follower_best_response_rows,
    _msp_utilities_rows,
    _vmu_utilities_rows,
    follower_best_response_stacked,
    msp_utilities_stacked,
    vmu_utilities_stacked,
)
from repro.errors import ConfigurationError, InfeasibleMarketError
from repro.game.solvers import (
    golden_section_maximize,
    grid_then_golden_batch,
)

__all__ = [
    "MarketStack",
    "MutableMarketStack",
    "StackedOutcome",
    "StackedEquilibria",
    "DEFAULT_CHUNK_BYTES",
    "resolve_chunk_size",
    "solve_scratch_bytes_per_market",
]

DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024
"""Default scratch-memory budget of a chunked solve (64 MiB)."""

_REFINE_GRID_POINTS = 256
"""Coarse-scan width of ``grid_then_golden_batch`` — the widest per-market
price batch the equilibrium solve evaluates (together with the
``3·N_max + 4``-wide candidate matrix)."""

_SCALAR_REFINE_MAX_ROWS = 8
"""Row-count ceiling for the scalar refinement fast path. The batched
golden loop costs a fixed ~50 sequential rounds of numpy dispatch no
matter how few rows it refines, so chunks at or below this many rows
(dirty-row re-solves, mostly) refine row by row through the scalar
:func:`golden_section_maximize` instead — linear in rows, and bitwise
the same sequence (see :meth:`MarketStack._refine_rows_scalar`)."""


def solve_scratch_bytes_per_market(n_max: int) -> int:
    """Estimated peak scratch bytes one market contributes to a chunk.

    Sized for the widest evaluation of the solve: a ``(width, N_max)``
    best-response/allocation band where ``width = max(256, 3·N_max + 4)``,
    the transient grouped-reduction copies of that band (ragged stacks),
    the ``(width,)``-shaped grid/total/scale temporaries, and the
    candidate-matrix intermediates. Deliberately conservative so a chunk
    sized from ``chunk_bytes`` stays inside the budget including numpy's
    untracked temporaries.
    """
    if n_max < 1:
        raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
    width = max(_REFINE_GRID_POINTS, 3 * n_max + 4)
    return 8 * (3 * width * n_max + 12 * width + 32 * n_max + 128)


def resolve_chunk_size(
    num_markets: int,
    n_max: int,
    *,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
) -> int:
    """Rows per chunk for a chunked solve of an ``(M, N_max)`` stack.

    An explicit ``chunk_size`` wins over ``chunk_bytes``; with neither set
    the :data:`DEFAULT_CHUNK_BYTES` budget applies. The result is clamped
    to ``[1, num_markets]``, so any positive value is safe to pass.
    """
    if chunk_size is not None:
        size = int(chunk_size)
        if size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        return min(size, num_markets)
    budget = DEFAULT_CHUNK_BYTES if chunk_bytes is None else int(chunk_bytes)
    if budget < 1:
        raise ConfigurationError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    per_market = solve_scratch_bytes_per_market(n_max)
    return max(1, min(num_markets, budget // per_market))


def _per_market_totals(
    values: xp.ndarray, counts: xp.ndarray, *, ragged: bool
) -> xp.ndarray:
    """Row sums over the trailing population axis, one per market.

    Ragged stacks reduce each market over its *own* ``N`` so the summation
    order is identical to the per-market solve; zero-padded rows could
    associate differently inside numpy's pairwise reduction and drift a
    ulp. Markets are grouped by population size — one numpy reduction per
    *distinct* ``N`` instead of one Python iteration per market; within a
    group each row reduces over the same contiguous ``[:n]`` slice the
    per-market loop reduced, so the grouping is bitwise-invisible. The
    single implementation behind ``MarketStack._row_totals`` and
    ``StackedOutcome.total_vmu_utilities``.
    """
    if not ragged:
        return values.sum(axis=-1)
    totals = xp.empty(values.shape[:-1], dtype=xp.float64)
    for n in xp.unique(counts):
        members = xp.flatnonzero(counts == n)
        totals[members] = values[members, ..., : int(n)].sum(axis=-1)
    return totals


class _ProbeContext:
    """Price-independent invariants of one row range's probe evaluations.

    The golden refinement evaluates the leader utility at ~50 sequential
    per-market price vectors; every quantity here is constant across those
    probes — sliced parameter views, the ``D/SE`` ratio matrix, effective
    capacities, and the ragged-reduction grouping (which
    :func:`_per_market_totals` would otherwise rebuild per probe via
    ``xp.unique``). Built once per ``(start, stop)`` row range and cached
    on the (immutable) stack, it makes each probe a handful of elementwise
    numpy ops — the fixed-overhead floor of a small dirty-row sub-solve.
    """

    def __init__(self, stack: "MarketStack", sl: slice) -> None:
        self.alphas = stack._alphas[sl]
        self.mask = stack._mask[sl]
        self.unit_costs = stack._unit_costs[sl]
        se = stack._se[sl]
        # Same division the per-probe kernel performed — computing it once
        # yields the identical bits every probe.
        self.ratio = stack._data[sl] / se[:, xp.newaxis]
        self.effective_caps = xp.where(
            stack._enforce[sl], stack._caps[sl], xp.inf
        )
        counts = stack._counts[sl]
        self.ragged = stack._ragged
        # Full-width row sums are bitwise-equal to the per-market ``[:n]``
        # reductions when the row holds non-negative values with trailing
        # ``+0.0`` padding AND both widths reduce in numpy's sequential
        # regime (width < 8): each padded add is then an exact identity
        # (no partial sum is ``-0.0`` — demands are ``maximum(0, a-b)``
        # with ``a, b >= 0``, which never rounds to ``-0.0``). At width 8
        # numpy switches to an 8-accumulator pairwise kernel that
        # associates differently, so wider ragged stacks keep the grouped
        # reduction. ``tests/test_core_equilibria_stacked.py`` pins the
        # stacked-vs-scalar bits that would drift if numpy moved this
        # regime boundary.
        self.flat = not stack._ragged or stack._alphas.shape[1] < 8
        # xp.unique is sorted, so the group order (and therefore every
        # grouped reduction) matches _per_market_totals exactly.
        self.groups = (
            []
            if self.flat
            else [
                (int(n), xp.flatnonzero(counts == n))
                for n in xp.unique(counts)
            ]
        )
        self.pad = ~self.mask
        # Per-probe scratch, overwritten (and fully consumed) every call.
        self.band = xp.empty(self.alphas.shape, dtype=xp.float64)
        self.scales = xp.empty(self.alphas.shape[0], dtype=xp.float64)

    def totals(self, values: xp.ndarray) -> xp.ndarray:
        """Row sums — bitwise :func:`_per_market_totals` with the ragged
        grouping precomputed (or skipped entirely when the full-width
        reduction provably returns the same bits)."""
        if self.flat:
            return values.sum(axis=-1)
        out = xp.empty(values.shape[:-1], dtype=xp.float64)
        for n, members in self.groups:
            out[members] = values[members, ..., :n].sum(axis=-1)
        return out


class _ChunkScratch:
    """Preallocated per-chunk buffers, reused across every chunk.

    ``band`` holds the widest ``(chunk, width, N_max)`` evaluation of the
    solve (best responses overwritten in place by allocations); ``ratio``
    holds the per-chunk ``D/SE`` matrix; ``pad`` the inverted population
    mask. Chunks narrower than the buffers use leading-axis views, so no
    chunk allocates fresh band-sized arrays.
    """

    def __init__(self, chunk_size: int, n_max: int) -> None:
        width = max(_REFINE_GRID_POINTS, 3 * n_max + 4)
        self.band = xp.empty((chunk_size, width, n_max), dtype=xp.float64)
        self.ratio = xp.empty((chunk_size, n_max), dtype=xp.float64)
        self.pad = xp.empty((chunk_size, n_max), dtype=bool)


@dataclass(frozen=True)
class StackedOutcome:
    """Outcomes of one stacked trading round across ``M`` different markets.

    Arrays are batched along axis 0 (one entry per market). With per-market
    price *grids* the arrays carry an extra round axis ``R`` after the
    market axis. Padded population slots (``mask == False``) hold zeros.
    """

    prices: xp.ndarray
    """Posted prices, shape ``(M,)`` or ``(M, R)``."""
    demands: xp.ndarray
    """Requested bandwidth, shape ``(M, N_max)`` or ``(M, R, N_max)``."""
    allocations: xp.ndarray
    """Granted bandwidth after per-market rationing (same shape)."""
    msp_utilities: xp.ndarray
    """Leader utility per market (and round), shape ``(M,)`` or ``(M, R)``."""
    vmu_utilities: xp.ndarray
    """Follower utilities (same shape as ``demands``)."""
    capacity_binding: xp.ndarray
    """Whether Σ demand hit the market's ``B_max`` (prices' shape, bool)."""
    mask: xp.ndarray
    """Valid-population mask, boolean shape ``(M, N_max)``."""
    counts: xp.ndarray
    """True population size per market, shape ``(M,)``."""

    def __len__(self) -> int:
        return self.num_markets

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return int(self.prices.shape[0])

    @property
    def has_price_grid(self) -> bool:
        """True when the stack was solved on per-market price grids."""
        return self.prices.ndim == 2

    @property
    def total_allocated(self) -> xp.ndarray:
        """Σ granted bandwidth per market (and round), prices' shape."""
        return self.allocations.sum(axis=-1)

    def total_vmu_utilities(self) -> xp.ndarray:
        """Σ U_n per market (and round), prices' shape.

        Reduces each market over its *own* population (not the padded row),
        so ragged stacks agree bitwise with per-market ``vmu_utilities.sum()``
        — padded zeros are exact but would associate differently inside
        numpy's pairwise reduction.
        """
        ragged = bool((self.counts != self.mask.shape[1]).any())
        return _per_market_totals(self.vmu_utilities, self.counts, ragged=ragged)

    def row(self, market_index: int) -> MarketOutcome:
        """Market ``market_index``'s outcome as a scalar
        :class:`MarketOutcome` (padding stripped).

        Only defined for vector-priced solves; grid solves expose
        :meth:`market_rows` instead.
        """
        if self.has_price_grid:
            raise ConfigurationError(
                "row() is for (M,)-priced solves; use market_rows() on a "
                "price-grid solve"
            )
        n = int(self.counts[market_index])
        return MarketOutcome(
            price=float(self.prices[market_index]),
            demands=self.demands[market_index, :n].copy(),
            allocations=self.allocations[market_index, :n].copy(),
            msp_utility=float(self.msp_utilities[market_index]),
            vmu_utilities=self.vmu_utilities[market_index, :n].copy(),
            capacity_binding=bool(self.capacity_binding[market_index]),
        )

    def market_rows(self, market_index: int) -> PriceBatchOutcome:
        """Market ``market_index``'s full price batch as a
        :class:`PriceBatchOutcome` (padding stripped).

        Only defined for grid solves — the per-market view that slots into
        everything already consuming single-market price batches.
        """
        if not self.has_price_grid:
            raise ConfigurationError(
                "market_rows() is for (M, R)-priced solves; use row() on a "
                "vector-priced solve"
            )
        n = int(self.counts[market_index])
        return PriceBatchOutcome(
            prices=self.prices[market_index],
            demands=self.demands[market_index, :, :n],
            allocations=self.allocations[market_index, :, :n],
            msp_utilities=self.msp_utilities[market_index],
            vmu_utilities=self.vmu_utilities[market_index, :, :n],
            capacity_binding=self.capacity_binding[market_index],
        )


@dataclass(frozen=True)
class StackedEquilibria:
    """Stackelberg equilibria of ``M`` different markets, one stacked solve.

    Arrays are batched along axis 0 (one entry per market); padded
    population slots hold zeros. Markets where no feasible price induces
    any demand are *masked*: their ``feasible`` entry is ``False``, their
    numeric fields hold ``nan`` (bindings ``False``), and
    :meth:`equilibrium` raises the same :class:`InfeasibleMarketError` the
    per-market :meth:`StackelbergMarket.equilibrium` raises — the stacked
    solve never aborts a whole grid for one degenerate member.
    """

    prices: xp.ndarray
    """Equilibrium price per market, shape ``(M,)`` (``nan`` if infeasible)."""
    demands: xp.ndarray
    """Equilibrium bandwidth per VMU (natural units), shape ``(M, N_max)``."""
    msp_utilities: xp.ndarray
    """Leader utility at equilibrium, shape ``(M,)``."""
    vmu_utilities: xp.ndarray
    """Follower utilities at equilibrium, shape ``(M, N_max)``."""
    capacity_binding: xp.ndarray
    """Whether Σ demand hit the market's ``B_max``, boolean ``(M,)``."""
    price_cap_binding: xp.ndarray
    """Whether the equilibrium sits at ``p_max``, boolean ``(M,)``."""
    feasible: xp.ndarray
    """Whether the market admits profitable trade, boolean ``(M,)``."""
    mask: xp.ndarray
    """Valid-population mask, boolean shape ``(M, N_max)``."""
    counts: xp.ndarray
    """True population size per market, shape ``(M,)``."""
    unit_costs: xp.ndarray
    """Per-market unit cost ``C``, shape ``(M,)`` (for error reporting)."""
    _scalar_cache: dict[int, StackelbergEquilibrium] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    """Lazily built per-market scalar equilibria (accessor memo)."""

    def __len__(self) -> int:
        return self.num_markets

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return int(self.prices.shape[0])

    @property
    def total_bandwidths(self) -> xp.ndarray:
        """Σ b*_n per market in natural units, shape ``(M,)``.

        Always reduces each market over its own population — the same sum
        the scalar ``StackelbergEquilibrium.total_bandwidth`` evaluates.
        """
        return _per_market_totals(self.demands, self.counts, ragged=True)

    def equilibrium(self, market_index: int) -> StackelbergEquilibrium:
        """Market ``market_index``'s equilibrium as a scalar
        :class:`StackelbergEquilibrium` (padding stripped).

        Built once per market and cached — repeated access during sweep
        assembly is O(1). The cached object is shared between callers, so
        its arrays are read-only (the stacked backing arrays already are).

        Raises:
            InfeasibleMarketError: if the market admits no profitable
                trade — the identical semantics of the per-market
                :meth:`StackelbergMarket.equilibrium`.
        """
        if not bool(self.feasible[market_index]):
            raise InfeasibleMarketError(
                "every VMU's drop-out threshold is at or below the unit "
                f"cost C={float(self.unit_costs[market_index])}; no "
                "profitable trade exists"
            )
        index = int(market_index)
        cached = self._scalar_cache.get(index)
        if cached is not None:
            return cached
        n = int(self.counts[index])
        demands = self.demands[index, :n].copy()
        vmu_utilities = self.vmu_utilities[index, :n].copy()
        demands.setflags(write=False)
        vmu_utilities.setflags(write=False)
        result = StackelbergEquilibrium(
            price=float(self.prices[index]),
            demands=demands,
            msp_utility=float(self.msp_utilities[index]),
            vmu_utilities=vmu_utilities,
            capacity_binding=bool(self.capacity_binding[index]),
            price_cap_binding=bool(self.price_cap_binding[index]),
        )
        self._scalar_cache[index] = result
        return result

    def equilibria(self) -> list[StackelbergEquilibrium | None]:
        """Every market's scalar equilibrium (``None`` where infeasible)."""
        return [
            self.equilibrium(m) if bool(self.feasible[m]) else None
            for m in range(self.num_markets)
        ]


class MarketStack:
    """A stack of ``M`` (possibly heterogeneous) Stackelberg markets.

    Stacks per-market parameters into padded ``(M, N_max)`` matrices once
    at construction; :meth:`outcomes_stacked` then solves all ``M`` markets
    at ``M`` different prices (or ``M`` whole price grids) in one numpy
    pass. See the module docstring for the bitwise exactness contract and
    :meth:`equilibria_stacked_chunked` for the memory-bounded city-scale
    path.
    """

    def __init__(self, markets: Sequence[StackelbergMarket]) -> None:
        if len(markets) == 0:
            raise ConfigurationError("market stack needs at least one market")
        self._markets = tuple(markets)
        num_markets = len(self._markets)
        counts = xp.fromiter(
            (m.num_vmus for m in self._markets),
            dtype=xp.int64,
            count=num_markets,
        )
        n_max = int(counts.max())
        # Padding value 1.0 keeps the padded slots' elementwise math finite;
        # the mask zeroes their demand before anything downstream sees it.
        # The mask's True slots are each row's leading prefix, so boolean
        # assignment (row-major) scatters the concatenated per-market
        # vectors into exactly the slots the per-market fill loop wrote.
        alphas = xp.ones((num_markets, n_max), dtype=xp.float64)
        data = xp.ones((num_markets, n_max), dtype=xp.float64)
        mask = xp.arange(n_max) < counts[:, xp.newaxis]
        alphas[mask] = xp.concatenate([m._alphas for m in self._markets])
        data[mask] = xp.concatenate([m._data_units for m in self._markets])
        self._counts = counts
        self._mask = mask
        self._alphas = alphas
        self._data = data
        self._ragged = bool((counts != n_max).any())
        # An all-valid mask (every market at full width N_max) lets the
        # stacked round skip its two masking ``xp.where`` passes — with no
        # padded slots they return the input values bit for bit.
        self._fullmask = bool(mask.all())
        self._se = xp.fromiter(
            (m.spectral_efficiency for m in self._markets),
            dtype=xp.float64,
            count=num_markets,
        )
        self._unit_costs = xp.fromiter(
            (m.config.unit_cost for m in self._markets),
            dtype=xp.float64,
            count=num_markets,
        )
        self._max_prices = xp.fromiter(
            (m.config.max_price for m in self._markets),
            dtype=xp.float64,
            count=num_markets,
        )
        self._caps = xp.fromiter(
            (m.config.capacity_natural for m in self._markets),
            dtype=xp.float64,
            count=num_markets,
        )
        self._enforce = xp.fromiter(
            (m.config.enforce_capacity for m in self._markets),
            dtype=bool,
            count=num_markets,
        )
        # Non-enforcing markets ration against an infinite capacity, which
        # leaves their rows scaled by exactly 1.0 (bitwise unchanged).
        # Static, so built once — outcomes_stacked runs every env round.
        self._effective_caps = xp.where(self._enforce, self._caps, xp.inf)
        # Lazy equilibrium-solve caches: the candidate matrix depends only
        # on the (immutable) stacked parameters, and solved equilibria are
        # memoised per refine flag (markets and configs are frozen, so the
        # solve can never go stale). Chunked and unchunked solves are
        # bitwise-equal, so they share the memo.
        self._candidates: tuple[xp.ndarray, xp.ndarray] | None = None
        self._equilibria: dict[bool, StackedEquilibria] = {}
        # Per-row-range probe contexts for the golden-refinement loop
        # (price-independent invariants hoisted out of the ~50 sequential
        # probe evaluations every refined solve performs).
        self._probe_contexts: dict[tuple[int, int], _ProbeContext] = {}

    @classmethod
    def from_markets(
        cls, markets: Sequence[StackelbergMarket]
    ) -> "MarketStack":
        """Build a stack over ``markets`` (alias of the constructor, named
        for symmetry with ``VectorMigrationEnv.from_market``)."""
        return cls(markets)

    @classmethod
    def from_grid(
        cls,
        num_markets: int | None = None,
        *,
        rows: int | None = None,
        cols: int | None = None,
        block_m: float = 400.0,
        coverage_radius_m: float | None = None,
        speed_limit_mps: float = 13.9,
        vehicles_per_cell: float = 400.0,
        max_vmus: int = 6,
        target_aotm: float = 0.05,
        horizon_s: float = 3600.0,
        seed: int = 0,
    ) -> "MarketStack":
        """A city-scale stack: one migration market per RSU-grid junction.

        Builds a Manhattan grid (:func:`repro.mobility.road.grid_city`)
        with one :class:`~repro.entities.rsu.RoadsideUnit` per junction,
        derives each junction's migration-demand profile from the mobility
        models (handover rate of ``vehicles_per_cell`` vehicles crossing
        the cell at ``speed_limit_mps``), sizes the market's ``B_max`` via
        :func:`repro.mobility.demand.capacity_for_demand`, and samples the
        VMU population per cell. Each market is a pure function of the
        grid parameters and its junction index (per-index seeding), so a
        chunked/scheduled build of index range ``[lo, hi)`` produces the
        identical markets — see :mod:`repro.mobility.citygrid`.

        Pass either ``num_markets`` (grid shape derived, near-square) or an
        explicit ``rows × cols`` shape.
        """
        from repro.mobility.citygrid import CityGridSpec, city_markets

        spec = CityGridSpec.for_markets(
            num_markets,
            rows=rows,
            cols=cols,
            block_m=block_m,
            coverage_radius_m=coverage_radius_m,
            speed_limit_mps=speed_limit_mps,
            vehicles_per_cell=vehicles_per_cell,
            max_vmus=max_vmus,
            target_aotm=target_aotm,
            horizon_s=horizon_s,
            seed=seed,
        )
        return cls(city_markets(spec))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_markets

    @property
    def markets(self) -> tuple[StackelbergMarket, ...]:
        """The stacked member markets."""
        return self._markets

    def market(self, market_index: int) -> StackelbergMarket:
        """The ``market_index``-th member market."""
        return self._markets[market_index]

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return len(self._markets)

    @property
    def max_vmus(self) -> int:
        """Widest population ``N_max`` (the padded trailing axis)."""
        return int(self._mask.shape[1])

    @property
    def counts(self) -> xp.ndarray:
        """True population size per market, shape ``(M,)`` (copy)."""
        return self._counts.copy()

    @property
    def mask(self) -> xp.ndarray:
        """Valid-population mask ``(M, N_max)`` (copy)."""
        return self._mask.copy()

    @property
    def immersion_coefs(self) -> xp.ndarray:
        """Padded ``α`` matrix ``(M, N_max)`` (copy)."""
        return self._alphas.copy()

    @property
    def data_units(self) -> xp.ndarray:
        """Padded ``D`` matrix ``(M, N_max)`` in natural units (copy)."""
        return self._data.copy()

    @property
    def spectral_efficiencies(self) -> xp.ndarray:
        """Per-market link SE ``(M,)`` (copy)."""
        return self._se.copy()

    @property
    def unit_costs(self) -> xp.ndarray:
        """Per-market transmission cost ``C`` ``(M,)`` (copy)."""
        return self._unit_costs.copy()

    @property
    def max_prices(self) -> xp.ndarray:
        """Per-market price ceiling ``p_max`` ``(M,)`` (copy)."""
        return self._max_prices.copy()

    @property
    def capacities_natural(self) -> xp.ndarray:
        """Per-market ``B_max`` in natural units ``(M,)`` (copy)."""
        return self._caps.copy()

    # ------------------------------------------------------------------ #
    # the stacked solve
    # ------------------------------------------------------------------ #
    def _validate_prices(self, prices: xp.ndarray) -> xp.ndarray:
        p = xp.asarray(prices, dtype=float)
        if p.ndim not in (1, 2) or p.shape[0] != self.num_markets:
            raise ConfigurationError(
                f"expected prices of shape (M,) or (M, R) with M = "
                f"{self.num_markets}, got shape {p.shape}"
            )
        if p.size == 0:
            raise ConfigurationError("price array must not be empty")
        if xp.any(~xp.isfinite(p)) or xp.any(p <= 0.0):
            raise ConfigurationError(
                f"prices must be finite and > 0, got {p!r}"
            )
        return p

    def _row_totals(self, values: xp.ndarray) -> xp.ndarray:
        """Per-market row sums over the trailing population axis
        (see :func:`_per_market_totals` for the ragged-summation contract)."""
        return _per_market_totals(values, self._counts, ragged=self._ragged)

    def outcomes_stacked(self, prices: xp.ndarray) -> StackedOutcome:
        """Play one trading round in every market of the stack, vectorised.

        Args:
            prices: one posted price per market, shape ``(M,)``, or one
                price grid per market, shape ``(M, R)`` (market ``m``
                evaluated at each of its ``R`` prices).

        Returns:
            A :class:`StackedOutcome` equal — bitwise, padding stripped —
            to solving each market separately via
            ``markets[m].round_outcome(prices[m])`` (vector form) or
            ``markets[m].outcomes_batch(prices[m])`` (grid form).
        """
        p = self._validate_prices(prices)
        return self._outcomes_trusted(p)

    def _outcomes_trusted(self, p: xp.ndarray) -> StackedOutcome:
        """Body of :meth:`outcomes_stacked` for already-validated prices.

        The vector environment calls this directly each round: its prices
        come out of its own ``[C, p_max]`` clamp, so they are finite and
        positive by construction and re-validating them every step is pure
        overhead on the training hot path.
        """
        grid = p.ndim == 2
        mask = self._mask[:, xp.newaxis, :] if grid else self._mask
        # Trusted-input kernels: the stack's static parameters were
        # validated once at construction, and ``p`` by the caller —
        # re-running the public wrappers' input checks every round is pure
        # overhead on this path (the vector env steps through here each
        # round).
        raw = _follower_best_response_rows(
            self._alphas, self._data, p, self._se
        )
        demands = raw if self._fullmask else xp.where(mask, raw, 0.0)
        demand_totals = self._row_totals(demands)
        allocations = _rationing_rows(
            demands, self._effective_caps, demand_totals
        )
        caps_rows = self._caps[:, xp.newaxis] if grid else self._caps
        enforce_rows = self._enforce[:, xp.newaxis] if grid else self._enforce
        binding = enforce_rows & (demand_totals >= caps_rows * (1.0 - 1e-9))
        utilities = _msp_utilities_rows(
            p, self._unit_costs, self._row_totals(allocations)
        )
        vmu_raw = _vmu_utilities_rows(
            self._alphas, self._data, allocations, p, self._se
        )
        follower_utilities = (
            vmu_raw if self._fullmask else xp.where(mask, vmu_raw, 0.0)
        )
        return StackedOutcome(
            prices=p,
            demands=demands,
            allocations=allocations,
            msp_utilities=utilities,
            vmu_utilities=follower_utilities,
            capacity_binding=binding,
            mask=self._mask.copy(),
            counts=self._counts.copy(),
        )

    def leader_landscapes(self, grid_points: int = 256) -> StackedOutcome:
        """Every market's full leader landscape as one stacked solve.

        Each market gets its own uniform ``grid_points``-point grid over
        its feasible interval ``[C_m, p_max_m]`` — the whole Fig.-3-style
        market grid evaluated in a single ``(M, R, N)`` pass. The grid
        rows are the elementwise ``low + step·arange`` expression of
        :func:`repro.game.solvers.uniform_price_grid`, built for all
        markets in one broadcast (bitwise-identical rows, no per-market
        loop).
        """
        if grid_points < 2:
            raise ConfigurationError(
                f"grid_points must be >= 2, got {grid_points}"
            )
        steps = (self._max_prices - self._unit_costs) / (grid_points - 1)
        grids = (
            self._unit_costs[:, xp.newaxis]
            + steps[:, xp.newaxis] * xp.arange(grid_points)
        )
        return self.outcomes_stacked(grids)

    # ------------------------------------------------------------------ #
    # the stacked equilibrium solve
    # ------------------------------------------------------------------ #
    def _msp_objective(self, prices: xp.ndarray) -> xp.ndarray:
        """Leader utilities at per-market prices ``(M,)`` or grids ``(M, R)``.

        The 1-D case is the golden-refinement probe: it runs through
        :meth:`_vector_utilities`' cached probe context rather than
        materialising a full :class:`StackedOutcome` per probe (same
        utility chain, same bits — the chunked-vs-unchunked tests pin
        this equivalence).
        """
        p = xp.asarray(prices, dtype=xp.float64)
        if p.ndim == 1:
            return self._vector_utilities(slice(0, self.num_markets), p)
        return self.outcomes_stacked(p).msp_utilities

    def _candidate_rows(self, sl: slice) -> tuple[xp.ndarray, xp.ndarray]:
        """Theorem 2's closed-form candidate prices for rows ``sl``.

        Vectorises :meth:`StackelbergMarket._segment_candidates` across the
        stack. Per market the layout is: the ``N_max + 2`` segment
        boundaries (``C``, the drop-out thresholds inside ``(C, p_max)``
        sorted ascending, ``p_max``), then each of the ``N_max + 1``
        segments' clamped unconstrained optimum ``sqrt(C·SE·Σ_A α / Σ_A D)``
        and clamped capacity-saturating price ``Σ_A α / (B + Σ_A D/SE)`` —
        a ``(m, 3·N_max + 4)`` matrix. The per-segment active-set sums come
        from prefix sums of ``α`` and ``D`` sorted by descending threshold,
        so one cumulative pass replaces the per-probe ``O(N)`` re-reduction.
        Padded population slots sort to the end (threshold ``-inf``) and
        contribute zero to every prefix; segment slots with no active VMU
        (or with capacity enforcement off, for the ``p_cap`` entries)
        duplicate their segment's lower boundary, which is already a
        candidate — duplicates never change the argmax's *price*, so a row
        solved inside a wide ragged stack picks the identical equilibrium
        it picks alone. Every operation is row-local (sorts, prefix sums,
        and reductions run along axis 1), so the rows of a slice are
        bitwise the rows of the full matrix — the property the chunked
        solve streams on.

        Returns ``(candidates (m, K), feasible (m,))``.
        """
        row_mask = self._mask[sl]
        row_alphas = self._alphas[sl]
        row_data = self._data[sl]
        costs = self._unit_costs[sl][:, xp.newaxis]
        caps_price = self._max_prices[sl][:, xp.newaxis]
        se = self._se[sl][:, xp.newaxis]
        thresholds = row_alphas * se / row_data
        masked_t = xp.where(row_mask, thresholds, -xp.inf)
        feasible = masked_t.max(axis=1) > self._unit_costs[sl]

        # Prefix sums over (α, D) sorted by descending threshold: the
        # active set of any probe price is a prefix of this order.
        order = xp.argsort(-masked_t, axis=1, kind="stable")
        t_desc = xp.take_along_axis(masked_t, order, axis=1)
        alpha_prefix = xp.cumsum(
            xp.take_along_axis(
                xp.where(row_mask, row_alphas, 0.0), order, axis=1
            ),
            axis=1,
        )
        data_prefix = xp.cumsum(
            xp.take_along_axis(
                xp.where(row_mask, row_data, 0.0), order, axis=1
            ),
            axis=1,
        )

        inside = row_mask & (thresholds > costs) & (thresholds < caps_price)
        inner = xp.sort(xp.where(inside, thresholds, caps_price), axis=1)
        boundaries = xp.concatenate([costs, inner, caps_price], axis=1)
        low = boundaries[:, :-1]
        high = boundaries[:, 1:]
        probe = 0.5 * (low + high)
        active_counts = (t_desc[:, xp.newaxis, :] > probe[:, :, xp.newaxis]).sum(
            axis=2
        )
        has_active = active_counts > 0
        prefix_idx = xp.maximum(active_counts - 1, 0)
        alpha_sums = xp.take_along_axis(alpha_prefix, prefix_idx, axis=1)
        data_sums = xp.take_along_axis(data_prefix, prefix_idx, axis=1)
        p_unconstrained = xp.sqrt(costs * se * alpha_sums / data_sums)
        p_cap = alpha_sums / (self._caps[sl][:, xp.newaxis] + data_sums / se)
        unconstrained = xp.where(
            has_active, xp.clip(p_unconstrained, low, high), low
        )
        saturating = xp.where(
            has_active & self._enforce[sl][:, xp.newaxis],
            xp.clip(p_cap, low, high),
            low,
        )
        candidates = xp.concatenate(
            [boundaries, unconstrained, saturating], axis=1
        )
        return candidates, feasible

    def _candidate_matrix(self) -> tuple[xp.ndarray, xp.ndarray]:
        """The full-stack candidate matrix (cached; see
        :meth:`_candidate_rows` for the construction)."""
        if self._candidates is None:
            self._candidates = self._candidate_rows(slice(None))
        return self._candidates

    def equilibria_stacked(
        self,
        *,
        refine: bool = True,
        warm_lows: xp.ndarray | None = None,
        warm_highs: xp.ndarray | None = None,
    ) -> StackedEquilibria:
        """Solve every market's Stackelberg equilibrium in one stacked pass.

        The market-axis form of :meth:`StackelbergMarket.equilibrium`
        (which is itself the ``M = 1`` case of this solve, so the two
        cannot diverge): evaluate the exact leader utility at every
        market's closed-form candidate matrix in one
        :meth:`outcomes_stacked` call, argmax per market, then — with
        ``refine`` — cross-check with a lockstep batched golden-section
        search (:func:`repro.game.solvers.grid_then_golden_batch`, all
        ``M`` brackets per iteration in one stacked evaluation); the better
        price wins per market. Infeasible markets are masked in the result
        instead of aborting the solve (see :class:`StackedEquilibria`).

        Results are memoised per ``refine`` flag — markets are immutable,
        so repeated solves of one stack are free. For stacks too wide to
        materialise the full candidate evaluation, use
        :meth:`equilibria_stacked_chunked` (bitwise-equal).

        ``warm_lows``/``warm_highs`` (given together, shape ``(M,)``,
        ``refine`` only) warm-start the golden refinement per row — see
        :func:`repro.game.solvers.grid_then_golden_batch`. Warm results
        agree with the cold solve to refinement tolerance (not bitwise),
        so they are returned frozen but **never memoised**; rows with
        non-finite warm endpoints take the cold refinement path.
        """
        warm = warm_lows is not None or warm_highs is not None
        if warm and not refine:
            raise ConfigurationError(
                "warm brackets only apply to the refined solve "
                "(refine=True)"
            )
        if not warm:
            cached = self._equilibria.get(refine)
            if cached is not None:
                return cached
        candidates, feasible = self._candidate_matrix()
        candidate_values = self.outcomes_stacked(candidates).msp_utilities
        best_idx = xp.argmax(candidate_values, axis=1)[:, xp.newaxis]
        best_prices = xp.take_along_axis(candidates, best_idx, axis=1)[:, 0]
        best_values = xp.take_along_axis(candidate_values, best_idx, axis=1)[:, 0]
        if refine:
            refined_prices, refined_values = grid_then_golden_batch(
                self._msp_objective,
                self._unit_costs,
                self._max_prices,
                bracket_lows=warm_lows,
                bracket_highs=warm_highs,
            )
            best_prices = xp.where(
                refined_values > best_values, refined_prices, best_prices
            )
        outcome = self.outcomes_stacked(best_prices)
        price_cap_binding = xp.abs(best_prices - self._max_prices) < 1e-9
        rows = feasible[:, xp.newaxis]
        result = StackedEquilibria(
            prices=xp.where(feasible, best_prices, xp.nan),
            demands=xp.where(rows, outcome.allocations, xp.nan),
            msp_utilities=xp.where(feasible, outcome.msp_utilities, xp.nan),
            vmu_utilities=xp.where(rows, outcome.vmu_utilities, xp.nan),
            capacity_binding=outcome.capacity_binding & feasible,
            price_cap_binding=price_cap_binding & feasible,
            feasible=feasible,
            mask=self._mask.copy(),
            counts=self._counts.copy(),
            unit_costs=self._unit_costs.copy(),
        )
        if warm:
            return _freeze_result(result)
        return self._memoise(refine, result)

    # ------------------------------------------------------------------ #
    # the chunked (memory-bounded) equilibrium solve
    # ------------------------------------------------------------------ #
    def resolve_chunk_size(
        self,
        *,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> int:
        """Rows per chunk a chunked solve of this stack would use
        (see the module-level :func:`resolve_chunk_size`)."""
        return resolve_chunk_size(
            self.num_markets,
            self.max_vmus,
            chunk_size=chunk_size,
            chunk_bytes=chunk_bytes,
        )

    def _grid_utilities(
        self, sl: slice, prices: xp.ndarray, scratch: _ChunkScratch
    ) -> xp.ndarray:
        """Leader utilities of rows ``sl`` at per-market price grids,
        evaluated into the chunk's scratch buffers.

        The scratch-buffered replica of
        ``outcomes_stacked(prices).msp_utilities`` for a row range: best
        responses, mask zeroing, and rationing are the identical
        elementwise expressions, computed in place in ``scratch.band``
        instead of freshly allocated ``(M, R, N)`` arrays. Only the
        ``(m, R)``-shaped totals/scales remain ordinary allocations.
        """
        alphas = self._alphas[sl]
        data = self._data[sl]
        se = self._se[sl]
        counts = self._counts[sl]
        m, width = prices.shape
        band = scratch.band[:m, :width]
        # b*_n = max(0, α_n/p − D_n/SE), padded slots zeroed — identical
        # operands (and therefore bits) to follower_best_response_stacked
        # plus the xp.where(mask, ·, 0.0) of outcomes_stacked.
        xp.divide(alphas[:, xp.newaxis, :], prices[:, :, xp.newaxis], out=band)
        ratio = scratch.ratio[:m]
        xp.divide(data, se[:, xp.newaxis], out=ratio)
        xp.subtract(band, ratio[:, xp.newaxis, :], out=band)
        xp.maximum(band, 0.0, out=band)
        xp.copyto(band, 0.0, where=scratch.pad[:m, xp.newaxis, :])
        # Same flat-reduction shortcut as _ProbeContext: the band holds
        # non-negative values with +0.0 padding, so below numpy's width-8
        # pairwise regime the full-width sum returns the grouped bits.
        flat = not self._ragged or self._alphas.shape[1] < 8
        demand_totals = (
            band.sum(axis=-1)
            if flat
            else _per_market_totals(band, counts, ragged=self._ragged)
        )
        # Proportional rationing in place (demands are not needed after
        # their totals): the same where-guarded scale expression as
        # proportional_rationing_stacked, rows within capacity scaled by
        # exactly 1.0.
        caps_rows = xp.where(self._enforce[sl], self._caps[sl], xp.inf)[
            :, xp.newaxis
        ]
        with xp.errstate(divide="ignore", invalid="ignore", over="ignore"):
            scales = xp.where(
                demand_totals > caps_rows, caps_rows / demand_totals, 1.0
            )
        xp.multiply(band, scales[:, :, xp.newaxis], out=band)
        return msp_utilities_stacked(
            prices,
            self._unit_costs[sl],
            band.sum(axis=-1)
            if flat
            else _per_market_totals(band, counts, ragged=self._ragged),
        )

    def _vector_utilities(self, sl: slice, prices: xp.ndarray) -> xp.ndarray:
        """Leader utilities of rows ``sl`` at one price per market — the
        row-sliced replica of the ``(M,)``-priced ``outcomes_stacked``
        utility chain.

        This is the golden-refinement probe, called ~50 times sequentially
        per solve, so it runs on a cached :class:`_ProbeContext` instead of
        the validating kernels: every expression below is elementwise
        identical to the ``follower_best_response_stacked`` →
        ``proportional_rationing_stacked`` → ``msp_utilities_stacked``
        chain (the context pre-divides ``D/SE`` and pre-groups the ragged
        reduction; neither changes a bit), with the per-probe input
        re-validation dropped — the stack validated its parameters at
        construction and ``prices`` lie inside ``[C, p_max]`` by the
        solver's bracket contract.
        """
        key = (sl.start, sl.stop)
        ctx = self._probe_contexts.get(key)
        if ctx is None:
            ctx = self._probe_contexts[key] = _ProbeContext(self, sl)
        band = ctx.band
        xp.divide(ctx.alphas, prices[:, xp.newaxis], out=band)
        xp.subtract(band, ctx.ratio, out=band)
        xp.maximum(band, 0.0, out=band)
        xp.copyto(band, 0.0, where=ctx.pad)
        demand_totals = ctx.totals(band)
        # Guarded division replica of proportional_rationing_stacked's
        # xp.where(totals > caps, caps / totals, 1.0): the quotient is
        # evaluated only where the condition holds (same bits, no errstate
        # round-trip per probe). The ``1.0``-filled output buffer lives on
        # the context — it is fully consumed by the multiply below, so
        # reuse across probes is invisible.
        out = ctx.scales
        out.fill(1.0)
        scales = xp.divide(
            ctx.effective_caps,
            demand_totals,
            out=out,
            where=demand_totals > ctx.effective_caps,
        )
        xp.multiply(band, scales[:, xp.newaxis], out=band)
        return (prices - ctx.unit_costs) * ctx.totals(band)

    def _refine_rows_scalar(
        self, sl: slice, scratch: _ChunkScratch
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Golden refinement of a tiny row range, one scalar search per row.

        Bitwise replica of the cold ``grid_then_golden_batch`` call in
        :meth:`_solve_rows`, restructured for latency: the batched golden
        loop pays ~50 sequential rounds of numpy dispatch regardless of
        row count, which is the latency floor of a dirty-row re-solve.
        Here the coarse scan stays vectorised (same grid, argmax, and
        bracket expressions as ``scan_brackets``), then each row refines
        through the scalar :func:`golden_section_maximize` — the reference
        the batch is pinned against — with a pure-Python objective.

        Why the bits match: IEEE-754 arithmetic is identical between
        Python floats and numpy float64 scalars, the clamp ``d = 0.0 if
        d < 0.0`` matches ``xp.maximum(0.0, ·)`` (a ``-0.0`` demand is
        impossible: ``a - b`` with ``a, b >= 0`` never rounds to it), and
        the sequential Python sums match numpy's sequential reduction
        regime, which is why this path is gated on stack width < 8 —
        the same boundary :class:`_ProbeContext` documents. The caller
        gates on ``_SCALAR_REFINE_MAX_ROWS``;
        ``tests/test_core_equilibria_stacked.py`` pins chunked-vs-unchunked
        equality across this threshold.
        """
        low_v = self._unit_costs[sl]
        high_v = self._max_prices[sl]
        steps = (high_v - low_v) / (_REFINE_GRID_POINTS - 1)
        grids = (
            low_v[:, xp.newaxis]
            + steps[:, xp.newaxis] * xp.arange(_REFINE_GRID_POINTS)
        )
        values = self._grid_utilities(sl, grids, scratch)
        best_idx = xp.argmax(values, axis=1)
        bracket_lows = low_v + xp.maximum(0, best_idx - 1) * steps
        bracket_highs = (
            low_v + xp.minimum(_REFINE_GRID_POINTS - 1, best_idx + 1) * steps
        )

        key = (sl.start, sl.stop)
        ctx = self._probe_contexts.get(key)
        if ctx is None:
            ctx = self._probe_contexts[key] = _ProbeContext(self, sl)
        num_rows = bracket_lows.shape[0]
        prices = xp.empty(num_rows, dtype=xp.float64)
        utilities = xp.empty(num_rows, dtype=xp.float64)
        counts = self._counts[sl]
        for i in range(num_rows):
            n = int(counts[i])
            pairs = list(zip(ctx.alphas[i, :n].tolist(), ctx.ratio[i, :n].tolist()))
            cap = float(ctx.effective_caps[i])
            cost = float(ctx.unit_costs[i])

            def objective(
                p: float, pairs=pairs, cap=cap, cost=cost
            ) -> float:
                total = 0.0
                demands = []
                append = demands.append
                for alpha, ratio in pairs:
                    d = alpha / p - ratio
                    if d < 0.0:
                        d = 0.0
                    append(d)
                    total += d
                scale = cap / total if total > cap else 1.0
                served = 0.0
                for d in demands:
                    served += d * scale
                return (p - cost) * served

            prices[i], utilities[i] = golden_section_maximize(
                objective, float(bracket_lows[i]), float(bracket_highs[i])
            )
        return prices, utilities

    def _solve_rows(
        self, sl: slice, refine: bool, scratch: _ChunkScratch
    ) -> dict[str, xp.ndarray]:
        """Equilibrium arrays for rows ``sl`` — one chunk of the solve.

        Runs the identical candidate-argmax + golden-refinement sequence
        :meth:`equilibria_stacked` runs, restricted to a row range and
        evaluated through the chunk scratch buffers. Because every
        operation is row-local, the returned arrays are bitwise the
        corresponding rows of the unchunked result.
        """
        num_rows = len(range(*sl.indices(self.num_markets)))
        xp.logical_not(self._mask[sl], out=scratch.pad[:num_rows])
        candidates, feasible = self._candidate_rows(sl)
        candidate_values = self._grid_utilities(sl, candidates, scratch)
        best_idx = xp.argmax(candidate_values, axis=1)[:, xp.newaxis]
        best_prices = xp.take_along_axis(candidates, best_idx, axis=1)[:, 0]
        best_values = xp.take_along_axis(candidate_values, best_idx, axis=1)[
            :, 0
        ]
        if refine:
            if (
                num_rows <= _SCALAR_REFINE_MAX_ROWS
                and self._alphas.shape[1] < 8
            ):
                refined_prices, refined_values = self._refine_rows_scalar(
                    sl, scratch
                )
            else:

                def objective(prices: xp.ndarray) -> xp.ndarray:
                    p = xp.asarray(prices, dtype=xp.float64)
                    if p.ndim == 2:
                        return self._grid_utilities(sl, p, scratch)
                    return self._vector_utilities(sl, p)

                refined_prices, refined_values = grid_then_golden_batch(
                    objective, self._unit_costs[sl], self._max_prices[sl]
                )
            best_prices = xp.where(
                refined_values > best_values, refined_prices, best_prices
            )
        # Full outcome fields at the winning prices — the row-sliced
        # replica of the final outcomes_stacked(best_prices) evaluation
        # (small (m, N_max) arrays, so no scratch indirection).
        mask = self._mask[sl]
        counts = self._counts[sl]
        raw = follower_best_response_stacked(
            self._alphas[sl], self._data[sl], best_prices, self._se[sl]
        )
        demands = xp.where(mask, raw, 0.0)
        demand_totals = _per_market_totals(demands, counts, ragged=self._ragged)
        effective_caps = xp.where(self._enforce[sl], self._caps[sl], xp.inf)
        allocations = proportional_rationing_stacked(
            demands, effective_caps, totals=demand_totals
        )
        binding = self._enforce[sl] & (
            demand_totals >= self._caps[sl] * (1.0 - 1e-9)
        )
        utilities = msp_utilities_stacked(
            best_prices,
            self._unit_costs[sl],
            _per_market_totals(allocations, counts, ragged=self._ragged),
        )
        follower_utilities = xp.where(
            mask,
            vmu_utilities_stacked(
                self._alphas[sl],
                self._data[sl],
                allocations,
                best_prices,
                self._se[sl],
            ),
            0.0,
        )
        price_cap_binding = xp.abs(best_prices - self._max_prices[sl]) < 1e-9
        rows = feasible[:, xp.newaxis]
        return {
            "prices": xp.where(feasible, best_prices, xp.nan),
            "demands": xp.where(rows, allocations, xp.nan),
            "msp_utilities": xp.where(feasible, utilities, xp.nan),
            "vmu_utilities": xp.where(rows, follower_utilities, xp.nan),
            "capacity_binding": binding & feasible,
            "price_cap_binding": price_cap_binding & feasible,
            "feasible": feasible,
        }

    def equilibria_stacked_chunked(
        self,
        *,
        refine: bool = True,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> StackedEquilibria:
        """The memory-bounded streaming form of :meth:`equilibria_stacked`.

        Partitions the stack into chunks of :meth:`resolve_chunk_size`
        rows (explicit ``chunk_size`` wins over the ``chunk_bytes`` scratch
        budget; neither set uses :data:`DEFAULT_CHUNK_BYTES`), solves each
        chunk through the candidate-matrix + golden-refinement path into
        one set of preallocated scratch buffers reused across chunks, and
        streams the per-chunk rows into preallocated result arrays. Peak
        memory scales with the chunk, never with ``M`` — and the result is
        **bitwise-equal** to the unchunked solve for every chunk size (the
        solve is row-local end to end; see the module docstring).

        Shares the per-``refine`` memo with :meth:`equilibria_stacked`:
        solving a stack twice — chunked or not, any chunk size — returns
        the identical cached object.
        """
        cached = self._equilibria.get(refine)
        if cached is not None:
            return cached
        size = self.resolve_chunk_size(
            chunk_size=chunk_size, chunk_bytes=chunk_bytes
        )
        num_markets, n_max = self.num_markets, self.max_vmus
        out = {
            "prices": xp.empty(num_markets, dtype=xp.float64),
            "demands": xp.empty((num_markets, n_max), dtype=xp.float64),
            "msp_utilities": xp.empty(num_markets, dtype=xp.float64),
            "vmu_utilities": xp.empty((num_markets, n_max), dtype=xp.float64),
            "capacity_binding": xp.empty(num_markets, dtype=bool),
            "price_cap_binding": xp.empty(num_markets, dtype=bool),
            "feasible": xp.empty(num_markets, dtype=bool),
        }
        scratch = _ChunkScratch(size, n_max)
        for start in range(0, num_markets, size):
            sl = slice(start, min(start + size, num_markets))
            chunk = self._solve_rows(sl, refine, scratch)
            for key, values in chunk.items():
                out[key][sl] = values
        result = StackedEquilibria(
            mask=self._mask.copy(),
            counts=self._counts.copy(),
            unit_costs=self._unit_costs.copy(),
            **out,
        )
        return self._memoise(refine, result)

    def _memoise(self, refine: bool, result: StackedEquilibria) -> StackedEquilibria:
        """Freeze a solved result's arrays and store it in the per-refine
        memo.

        The result is memoised, so its backing arrays are frozen: a caller
        writing through them would silently poison every later
        equilibrium() solve of this stack. equilibrium(m) hands out
        read-only copies; whole-array consumers get read-only views.
        """
        self._equilibria[refine] = _freeze_result(result)
        return result


def _freeze_result(result: StackedEquilibria) -> StackedEquilibria:
    """Mark every backing array of a solved result read-only (in place).

    Shared by the immutable stack's memo and the live splice path — all
    handed-out :class:`StackedEquilibria` are frozen, so stale writes
    through a cached result are impossible anywhere.
    """
    for values in (
        result.prices,
        result.demands,
        result.msp_utilities,
        result.vmu_utilities,
        result.capacity_binding,
        result.price_cap_binding,
        result.feasible,
        result.mask,
        result.counts,
        result.unit_costs,
    ):
        values.setflags(write=False)
    return result


class MutableMarketStack:
    """A dirty-set wrapper over :class:`MarketStack` for *live* market state.

    The immutable stack memoises its equilibria forever — correct because
    its markets can never change. A live pricing service mutates markets
    continuously (a VMU joins, fading drifts, demand shifts), and paying a
    full ``M``-row re-solve for every point update is what makes the memo
    useless there. This wrapper turns the memo into an invalidation-aware
    cache: point updates mark exactly their row dirty, and
    :meth:`equilibria_live` re-solves *only* the dirty rows — as their own
    sub-stack through the existing chunked candidate-matrix path — then
    splices them into the cached :class:`StackedEquilibria`.

    Exactness: every operation of the stacked solve is row-local and
    padding-width invariant (the chunking contract in the module
    docstring), so a dirty row solved inside the small sub-stack gets
    bitwise the same numbers it would get inside a cold full solve of the
    mutated stack — :meth:`equilibria_live` is **bitwise-equal to a cold
    :meth:`MarketStack.equilibria_stacked` at every step**. The one
    exception is opt-in: ``warm_start=True`` restarts each dirty row's
    golden refinement from a one-grid-cell bracket around its previous
    equilibrium price (falling back to the cold scan when the old optimum
    is stale), which agrees to refinement tolerance instead of bitwise.

    Mutation contract (what dirties what):

    - :meth:`update_market` / :meth:`join` / :meth:`leave` /
      :meth:`set_fading_gain` dirty exactly the one row they touch, under
      *both* refine flags (a mutation invalidates every cached view of
      that row).
    - Clean rows are never re-solved, and their cached per-row scalar
      equilibria (:meth:`StackedEquilibria.equilibrium`) are carried over
      by object identity; a dirty row's entry is dropped and lazily
      rebuilt from the spliced arrays.
    - All handed-out results are frozen (read-only arrays), like the
      immutable stack's memo.
    """

    def __init__(
        self,
        markets: Sequence[StackelbergMarket],
        *,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> None:
        markets = list(markets)
        if len(markets) == 0:
            raise ConfigurationError("market stack needs at least one market")
        self._markets = markets
        self._counts = xp.fromiter(
            (m.num_vmus for m in markets), dtype=xp.int64, count=len(markets)
        )
        self._chunk_size = chunk_size
        self._chunk_bytes = chunk_bytes
        # Dirty rows per refine flag: a mutation invalidates the row under
        # both flags; each flag's solve clears only its own pending set.
        self._dirty: dict[bool, set[int]] = {True: set(), False: set()}
        self._solved: dict[bool, StackedEquilibria] = {}
        self._stack: MarketStack | None = None
        self._solve_count = 0
        self._rows_resolved = 0

    @classmethod
    def from_grid(cls, num_markets: int, **kwargs) -> "MutableMarketStack":
        """A live wrapper over a city-grid stack (see
        :meth:`MarketStack.from_grid` for the parameters)."""
        chunk_size = kwargs.pop("chunk_size", None)
        chunk_bytes = kwargs.pop("chunk_bytes", None)
        base = MarketStack.from_grid(num_markets, **kwargs)
        return cls(
            base.markets, chunk_size=chunk_size, chunk_bytes=chunk_bytes
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._markets)

    @property
    def num_markets(self) -> int:
        """Stack width ``M`` (fixed; rows mutate, the set of rows doesn't)."""
        return len(self._markets)

    @property
    def markets(self) -> tuple[StackelbergMarket, ...]:
        """The current member markets (snapshot tuple)."""
        return tuple(self._markets)

    def market(self, market_index: int) -> StackelbergMarket:
        """The current ``market_index``-th member market."""
        return self._markets[market_index]

    @property
    def stack(self) -> MarketStack:
        """An immutable :class:`MarketStack` over the *current* markets.

        Rebuilt lazily after any mutation — the cold-solve reference the
        live path is pinned against, and the full-stack backing of the
        first :meth:`equilibria_live` call.
        """
        if self._stack is None:
            self._stack = MarketStack(self._markets)
        return self._stack

    def dirty_indices(self, *, refine: bool = True) -> tuple[int, ...]:
        """Rows awaiting re-solve under ``refine`` (sorted)."""
        return tuple(sorted(self._dirty[refine]))

    @property
    def solve_count(self) -> int:
        """Stacked solves performed so far (full or sub-stack)."""
        return self._solve_count

    @property
    def rows_resolved(self) -> int:
        """Total market rows solved across all solves — the work an
        incremental path actually did (a cold path would pay
        ``solve_count · M``)."""
        return self._rows_resolved

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def _touch(self, index: int) -> None:
        for pending in self._dirty.values():
            pending.add(index)
        self._stack = None

    def _market_at(self, index: int) -> StackelbergMarket:
        index = int(index)
        if not 0 <= index < len(self._markets):
            raise ConfigurationError(
                f"market index {index} out of range for stack of "
                f"{len(self._markets)}"
            )
        return self._markets[index]

    def update_market(self, index: int, market: StackelbergMarket) -> None:
        """Replace row ``index`` with ``market`` (dirties exactly that row)."""
        index = int(index)
        self._market_at(index)
        if not isinstance(market, StackelbergMarket):
            raise ConfigurationError(
                f"expected a StackelbergMarket, got {type(market).__name__}"
            )
        self._markets[index] = market
        self._counts[index] = market.num_vmus
        self._touch(index)

    def join(self, index: int, vmu) -> None:
        """A VMU joins market ``index`` (dirties that row)."""
        market = self._market_at(index)
        self.update_market(index, market.with_vmus((*market.vmus, vmu)))

    def leave(self, index: int, vmu_id: str) -> None:
        """VMU ``vmu_id`` leaves market ``index`` (dirties that row).

        Raises:
            ConfigurationError: if no such VMU is in the market, or it is
                the market's last one (a market needs ≥ 1 VMU).
        """
        market = self._market_at(index)
        kept = tuple(v for v in market.vmus if v.vmu_id != vmu_id)
        if len(kept) == len(market.vmus):
            raise ConfigurationError(
                f"no VMU {vmu_id!r} in market {index}"
            )
        if len(kept) == 0:
            raise ConfigurationError(
                f"VMU {vmu_id!r} is the last member of market {index}; "
                "markets need at least one VMU"
            )
        self.update_market(index, market.with_vmus(kept))

    def set_fading_gain(self, index: int, fading_gain: float) -> None:
        """Channel-fading drift on market ``index``'s RSU link (dirties
        that row)."""
        market = self._market_at(index)
        self.update_market(
            index, market.with_link(market.link.with_fading_gain(fading_gain))
        )

    # ------------------------------------------------------------------ #
    # the incremental solve
    # ------------------------------------------------------------------ #
    def equilibria_live(
        self, *, refine: bool = True, warm_start: bool = False
    ) -> StackedEquilibria:
        """Current equilibria of the stack, re-solving only dirty rows.

        First call (or after every row was dirtied): a cold full solve
        through :meth:`MarketStack.equilibria_stacked_chunked` with the
        wrapper's chunk knobs. Later calls solve the dirty rows as their
        own sub-stack and splice the rows into the cached result —
        bitwise-equal to a cold solve of the mutated stack (see the class
        docstring; ``warm_start=True`` trades that for
        tolerance-level agreement and a scan-free refinement, and is
        ignored when ``refine=False`` — there is no refinement to warm).
        """
        dirty = self._dirty[refine]
        cached = self._solved.get(refine)
        if cached is not None and not dirty:
            return cached
        if cached is None or len(dirty) == len(self._markets):
            result = self.stack.equilibria_stacked_chunked(
                refine=refine,
                chunk_size=self._chunk_size,
                chunk_bytes=self._chunk_bytes,
            )
            self._rows_resolved += len(self._markets)
        else:
            indices = sorted(dirty)
            sub = MarketStack([self._markets[i] for i in indices])
            if warm_start and refine:
                warm_lows, warm_highs = self._warm_brackets(
                    cached, indices, sub
                )
                rows = sub.equilibria_stacked(
                    refine=True, warm_lows=warm_lows, warm_highs=warm_highs
                )
            else:
                rows = sub.equilibria_stacked_chunked(
                    refine=refine,
                    chunk_size=self._chunk_size,
                    chunk_bytes=self._chunk_bytes,
                )
            result = self._splice(cached, indices, rows)
            self._rows_resolved += len(indices)
        self._solve_count += 1
        dirty.clear()
        self._solved[refine] = result
        return result

    @staticmethod
    def _warm_brackets(
        cached: StackedEquilibria, indices: list[int], sub: MarketStack
    ) -> tuple[xp.ndarray, xp.ndarray]:
        """Warm refinement brackets for the dirty rows: ± one coarse-grid
        cell around each row's previous equilibrium price.

        One cell matches the width of the bracket a cold scan hands the
        golden refinement, so a warm row that stayed near its old optimum
        refines with the same resolution at none of the scan cost. Rows
        that were previously infeasible carry ``nan`` prices, which the
        solver treats as "no warm bracket" (cold path).
        """
        previous = cached.prices[xp.asarray(indices, dtype=xp.intp)]
        steps = (sub._max_prices - sub._unit_costs) / (
            _REFINE_GRID_POINTS - 1
        )
        return previous - steps, previous + steps

    def _splice(
        self,
        cached: StackedEquilibria,
        indices: list[int],
        rows: StackedEquilibria,
    ) -> StackedEquilibria:
        """A new frozen result: ``cached`` with ``indices`` replaced by the
        sub-stack solution ``rows``.

        Clean rows are copied bit for bit; if the stack's padded width
        ``N_max`` changed (a join/leave moved the widest population), clean
        rows are re-padded to the new width with exactly the values a cold
        solve writes there — ``0.0`` on feasible rows, ``nan`` on
        infeasible ones — so the splice stays bitwise-indistinguishable
        from the cold solve.
        """
        counts = self._counts.copy()
        num_markets = len(self._markets)
        n_max = int(counts.max())
        old_n_max = cached.demands.shape[1]
        prices = cached.prices.copy()
        msp_utilities = cached.msp_utilities.copy()
        capacity_binding = cached.capacity_binding.copy()
        price_cap_binding = cached.price_cap_binding.copy()
        feasible = cached.feasible.copy()
        unit_costs = cached.unit_costs.copy()
        if n_max == old_n_max:
            demands = cached.demands.copy()
            vmu_utilities = cached.vmu_utilities.copy()
        else:
            demands = xp.zeros((num_markets, n_max), dtype=xp.float64)
            vmu_utilities = xp.zeros((num_markets, n_max), dtype=xp.float64)
            keep = min(n_max, old_n_max)
            demands[:, :keep] = cached.demands[:, :keep]
            vmu_utilities[:, :keep] = cached.vmu_utilities[:, :keep]
            if n_max > old_n_max:
                # Widened columns of infeasible rows hold nan, not 0.0.
                demands[~feasible, old_n_max:] = xp.nan
                vmu_utilities[~feasible, old_n_max:] = xp.nan
        idx = xp.asarray(indices, dtype=xp.intp)
        sub_width = rows.demands.shape[1]
        prices[idx] = rows.prices
        msp_utilities[idx] = rows.msp_utilities
        capacity_binding[idx] = rows.capacity_binding
        price_cap_binding[idx] = rows.price_cap_binding
        feasible[idx] = rows.feasible
        unit_costs[idx] = rows.unit_costs
        demands[idx[:, xp.newaxis], xp.arange(sub_width)] = rows.demands
        vmu_utilities[idx[:, xp.newaxis], xp.arange(sub_width)] = (
            rows.vmu_utilities
        )
        if sub_width < n_max:
            tail = xp.where(rows.feasible[:, xp.newaxis], 0.0, xp.nan)
            demands[idx[:, xp.newaxis], xp.arange(sub_width, n_max)] = tail
            vmu_utilities[idx[:, xp.newaxis], xp.arange(sub_width, n_max)] = (
                tail
            )
        result = StackedEquilibria(
            prices=prices,
            demands=demands,
            msp_utilities=msp_utilities,
            vmu_utilities=vmu_utilities,
            capacity_binding=capacity_binding,
            price_cap_binding=price_cap_binding,
            feasible=feasible,
            mask=xp.arange(n_max) < counts[:, xp.newaxis],
            counts=counts,
            unit_costs=unit_costs,
        )
        # Clean rows keep their scalar-equilibrium cache entries by object
        # identity; dirty rows' entries are dropped (rebuilt lazily).
        dirty = set(indices)
        for m, equilibrium in cached._scalar_cache.items():
            if m not in dirty:
                result._scalar_cache[m] = equilibrium
        return _freeze_result(result)
