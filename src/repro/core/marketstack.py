"""Heterogeneous market stacking: M *different* Stackelberg markets, one pass.

:class:`StackelbergMarket.outcomes_batch` vectorises many prices against one
market. This module adds the orthogonal axis the paper's figures actually
sweep — many *markets*: a :class:`MarketStack` stacks the per-market
parameter arrays (``α`` and ``D`` as ``(M, N)`` matrices, capacities, unit
costs, and spectral efficiencies as ``(M,)`` vectors, ragged populations
padded and masked) and solves all ``M`` follower stages plus leader
utilities in a single numpy pass via :meth:`MarketStack.outcomes_stacked`.

Exactness contract
------------------
A stacked solve agrees **bitwise** with ``M`` separate per-market solves:

- every follower/leader quantity is the identical elementwise expression
  the per-market path evaluates (`core/utilities` grew the matching
  ``*_stacked`` forms);
- padded population slots carry zero demand, and zeros are exact under
  both multiplication and addition;
- ragged stacks reduce each market's totals over its *own* population
  (summing a zero-padded row can associate differently inside numpy's
  pairwise reduction and drift a ulp), so the summation order matches the
  per-market solve exactly.

``StackelbergMarket.outcomes_batch`` is the ``M = 1`` broadcast case of
this path — the single-market price batch delegates here, so the two
entry points cannot diverge.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.channel.ofdma import proportional_rationing_stacked
from repro.core.stackelberg import (
    MarketOutcome,
    PriceBatchOutcome,
    StackelbergEquilibrium,
    StackelbergMarket,
    uniform_price_grid,
)
from repro.core.utilities import (
    follower_best_response_stacked,
    msp_utilities_stacked,
    vmu_utilities_stacked,
)
from repro.errors import ConfigurationError, InfeasibleMarketError
from repro.game.solvers import grid_then_golden_batch

__all__ = ["MarketStack", "StackedOutcome", "StackedEquilibria"]


def _per_market_totals(
    values: np.ndarray, counts: np.ndarray, *, ragged: bool
) -> np.ndarray:
    """Row sums over the trailing population axis, one per market.

    Ragged stacks reduce each market over its *own* ``N`` so the summation
    order is identical to the per-market solve; zero-padded rows could
    associate differently inside numpy's pairwise reduction and drift a
    ulp. The single implementation behind ``MarketStack._row_totals`` and
    ``StackedOutcome.total_vmu_utilities``.
    """
    if not ragged:
        return values.sum(axis=-1)
    totals = np.empty(values.shape[:-1])
    for m, n in enumerate(counts):
        totals[m] = values[m, ..., :n].sum(axis=-1)
    return totals


@dataclass(frozen=True)
class StackedOutcome:
    """Outcomes of one stacked trading round across ``M`` different markets.

    Arrays are batched along axis 0 (one entry per market). With per-market
    price *grids* the arrays carry an extra round axis ``R`` after the
    market axis. Padded population slots (``mask == False``) hold zeros.
    """

    prices: np.ndarray
    """Posted prices, shape ``(M,)`` or ``(M, R)``."""
    demands: np.ndarray
    """Requested bandwidth, shape ``(M, N_max)`` or ``(M, R, N_max)``."""
    allocations: np.ndarray
    """Granted bandwidth after per-market rationing (same shape)."""
    msp_utilities: np.ndarray
    """Leader utility per market (and round), shape ``(M,)`` or ``(M, R)``."""
    vmu_utilities: np.ndarray
    """Follower utilities (same shape as ``demands``)."""
    capacity_binding: np.ndarray
    """Whether Σ demand hit the market's ``B_max`` (prices' shape, bool)."""
    mask: np.ndarray
    """Valid-population mask, boolean shape ``(M, N_max)``."""
    counts: np.ndarray
    """True population size per market, shape ``(M,)``."""

    def __len__(self) -> int:
        return self.num_markets

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return int(self.prices.shape[0])

    @property
    def has_price_grid(self) -> bool:
        """True when the stack was solved on per-market price grids."""
        return self.prices.ndim == 2

    @property
    def total_allocated(self) -> np.ndarray:
        """Σ granted bandwidth per market (and round), prices' shape."""
        return self.allocations.sum(axis=-1)

    def total_vmu_utilities(self) -> np.ndarray:
        """Σ U_n per market (and round), prices' shape.

        Reduces each market over its *own* population (not the padded row),
        so ragged stacks agree bitwise with per-market ``vmu_utilities.sum()``
        — padded zeros are exact but would associate differently inside
        numpy's pairwise reduction.
        """
        ragged = bool((self.counts != self.mask.shape[1]).any())
        return _per_market_totals(self.vmu_utilities, self.counts, ragged=ragged)

    def row(self, market_index: int) -> MarketOutcome:
        """Market ``market_index``'s outcome as a scalar
        :class:`MarketOutcome` (padding stripped).

        Only defined for vector-priced solves; grid solves expose
        :meth:`market_rows` instead.
        """
        if self.has_price_grid:
            raise ConfigurationError(
                "row() is for (M,)-priced solves; use market_rows() on a "
                "price-grid solve"
            )
        n = int(self.counts[market_index])
        return MarketOutcome(
            price=float(self.prices[market_index]),
            demands=self.demands[market_index, :n].copy(),
            allocations=self.allocations[market_index, :n].copy(),
            msp_utility=float(self.msp_utilities[market_index]),
            vmu_utilities=self.vmu_utilities[market_index, :n].copy(),
            capacity_binding=bool(self.capacity_binding[market_index]),
        )

    def market_rows(self, market_index: int) -> PriceBatchOutcome:
        """Market ``market_index``'s full price batch as a
        :class:`PriceBatchOutcome` (padding stripped).

        Only defined for grid solves — the per-market view that slots into
        everything already consuming single-market price batches.
        """
        if not self.has_price_grid:
            raise ConfigurationError(
                "market_rows() is for (M, R)-priced solves; use row() on a "
                "vector-priced solve"
            )
        n = int(self.counts[market_index])
        return PriceBatchOutcome(
            prices=self.prices[market_index],
            demands=self.demands[market_index, :, :n],
            allocations=self.allocations[market_index, :, :n],
            msp_utilities=self.msp_utilities[market_index],
            vmu_utilities=self.vmu_utilities[market_index, :, :n],
            capacity_binding=self.capacity_binding[market_index],
        )


@dataclass(frozen=True)
class StackedEquilibria:
    """Stackelberg equilibria of ``M`` different markets, one stacked solve.

    Arrays are batched along axis 0 (one entry per market); padded
    population slots hold zeros. Markets where no feasible price induces
    any demand are *masked*: their ``feasible`` entry is ``False``, their
    numeric fields hold ``nan`` (bindings ``False``), and
    :meth:`equilibrium` raises the same :class:`InfeasibleMarketError` the
    per-market :meth:`StackelbergMarket.equilibrium` raises — the stacked
    solve never aborts a whole grid for one degenerate member.
    """

    prices: np.ndarray
    """Equilibrium price per market, shape ``(M,)`` (``nan`` if infeasible)."""
    demands: np.ndarray
    """Equilibrium bandwidth per VMU (natural units), shape ``(M, N_max)``."""
    msp_utilities: np.ndarray
    """Leader utility at equilibrium, shape ``(M,)``."""
    vmu_utilities: np.ndarray
    """Follower utilities at equilibrium, shape ``(M, N_max)``."""
    capacity_binding: np.ndarray
    """Whether Σ demand hit the market's ``B_max``, boolean ``(M,)``."""
    price_cap_binding: np.ndarray
    """Whether the equilibrium sits at ``p_max``, boolean ``(M,)``."""
    feasible: np.ndarray
    """Whether the market admits profitable trade, boolean ``(M,)``."""
    mask: np.ndarray
    """Valid-population mask, boolean shape ``(M, N_max)``."""
    counts: np.ndarray
    """True population size per market, shape ``(M,)``."""
    unit_costs: np.ndarray
    """Per-market unit cost ``C``, shape ``(M,)`` (for error reporting)."""

    def __len__(self) -> int:
        return self.num_markets

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return int(self.prices.shape[0])

    @property
    def total_bandwidths(self) -> np.ndarray:
        """Σ b*_n per market in natural units, shape ``(M,)``.

        Always reduces each market over its own population — the same sum
        the scalar ``StackelbergEquilibrium.total_bandwidth`` evaluates.
        """
        return _per_market_totals(self.demands, self.counts, ragged=True)

    def equilibrium(self, market_index: int) -> StackelbergEquilibrium:
        """Market ``market_index``'s equilibrium as a scalar
        :class:`StackelbergEquilibrium` (padding stripped).

        Raises:
            InfeasibleMarketError: if the market admits no profitable
                trade — the identical semantics of the per-market
                :meth:`StackelbergMarket.equilibrium`.
        """
        if not bool(self.feasible[market_index]):
            raise InfeasibleMarketError(
                "every VMU's drop-out threshold is at or below the unit "
                f"cost C={float(self.unit_costs[market_index])}; no "
                "profitable trade exists"
            )
        n = int(self.counts[market_index])
        return StackelbergEquilibrium(
            price=float(self.prices[market_index]),
            demands=self.demands[market_index, :n].copy(),
            msp_utility=float(self.msp_utilities[market_index]),
            vmu_utilities=self.vmu_utilities[market_index, :n].copy(),
            capacity_binding=bool(self.capacity_binding[market_index]),
            price_cap_binding=bool(self.price_cap_binding[market_index]),
        )

    def equilibria(self) -> list[StackelbergEquilibrium | None]:
        """Every market's scalar equilibrium (``None`` where infeasible)."""
        return [
            self.equilibrium(m) if bool(self.feasible[m]) else None
            for m in range(self.num_markets)
        ]


class MarketStack:
    """A stack of ``M`` (possibly heterogeneous) Stackelberg markets.

    Stacks per-market parameters into padded ``(M, N_max)`` matrices once
    at construction; :meth:`outcomes_stacked` then solves all ``M`` markets
    at ``M`` different prices (or ``M`` whole price grids) in one numpy
    pass. See the module docstring for the bitwise exactness contract.
    """

    def __init__(self, markets: Sequence[StackelbergMarket]) -> None:
        if len(markets) == 0:
            raise ConfigurationError("market stack needs at least one market")
        self._markets = tuple(markets)
        counts = np.array([m.num_vmus for m in self._markets], dtype=int)
        num_markets, n_max = len(self._markets), int(counts.max())
        # Padding value 1.0 keeps the padded slots' elementwise math finite;
        # the mask zeroes their demand before anything downstream sees it.
        alphas = np.ones((num_markets, n_max))
        data = np.ones((num_markets, n_max))
        mask = np.zeros((num_markets, n_max), dtype=bool)
        for i, market in enumerate(self._markets):
            n = market.num_vmus
            alphas[i, :n] = market.immersion_coefs
            data[i, :n] = market.data_units
            mask[i, :n] = True
        self._counts = counts
        self._mask = mask
        self._alphas = alphas
        self._data = data
        self._ragged = bool((counts != n_max).any())
        self._se = np.array([m.spectral_efficiency for m in self._markets])
        self._unit_costs = np.array(
            [m.config.unit_cost for m in self._markets]
        )
        self._max_prices = np.array(
            [m.config.max_price for m in self._markets]
        )
        self._caps = np.array(
            [m.config.capacity_natural for m in self._markets]
        )
        self._enforce = np.array(
            [m.config.enforce_capacity for m in self._markets], dtype=bool
        )
        # Lazy equilibrium-solve caches: the candidate matrix depends only
        # on the (immutable) stacked parameters, and solved equilibria are
        # memoised per refine flag (markets and configs are frozen, so the
        # solve can never go stale).
        self._candidates: tuple[np.ndarray, np.ndarray] | None = None
        self._equilibria: dict[bool, StackedEquilibria] = {}

    @classmethod
    def from_markets(
        cls, markets: Sequence[StackelbergMarket]
    ) -> "MarketStack":
        """Build a stack over ``markets`` (alias of the constructor, named
        for symmetry with ``VectorMigrationEnv.from_market``)."""
        return cls(markets)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_markets

    @property
    def markets(self) -> tuple[StackelbergMarket, ...]:
        """The stacked member markets."""
        return self._markets

    def market(self, market_index: int) -> StackelbergMarket:
        """The ``market_index``-th member market."""
        return self._markets[market_index]

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return len(self._markets)

    @property
    def max_vmus(self) -> int:
        """Widest population ``N_max`` (the padded trailing axis)."""
        return int(self._mask.shape[1])

    @property
    def counts(self) -> np.ndarray:
        """True population size per market, shape ``(M,)`` (copy)."""
        return self._counts.copy()

    @property
    def mask(self) -> np.ndarray:
        """Valid-population mask ``(M, N_max)`` (copy)."""
        return self._mask.copy()

    @property
    def immersion_coefs(self) -> np.ndarray:
        """Padded ``α`` matrix ``(M, N_max)`` (copy)."""
        return self._alphas.copy()

    @property
    def data_units(self) -> np.ndarray:
        """Padded ``D`` matrix ``(M, N_max)`` in natural units (copy)."""
        return self._data.copy()

    @property
    def spectral_efficiencies(self) -> np.ndarray:
        """Per-market link SE ``(M,)`` (copy)."""
        return self._se.copy()

    @property
    def unit_costs(self) -> np.ndarray:
        """Per-market transmission cost ``C`` ``(M,)`` (copy)."""
        return self._unit_costs.copy()

    @property
    def max_prices(self) -> np.ndarray:
        """Per-market price ceiling ``p_max`` ``(M,)`` (copy)."""
        return self._max_prices.copy()

    @property
    def capacities_natural(self) -> np.ndarray:
        """Per-market ``B_max`` in natural units ``(M,)`` (copy)."""
        return self._caps.copy()

    # ------------------------------------------------------------------ #
    # the stacked solve
    # ------------------------------------------------------------------ #
    def _validate_prices(self, prices: np.ndarray) -> np.ndarray:
        p = np.asarray(prices, dtype=float)
        if p.ndim not in (1, 2) or p.shape[0] != self.num_markets:
            raise ConfigurationError(
                f"expected prices of shape (M,) or (M, R) with M = "
                f"{self.num_markets}, got shape {p.shape}"
            )
        if p.size == 0:
            raise ConfigurationError("price array must not be empty")
        if np.any(~np.isfinite(p)) or np.any(p <= 0.0):
            raise ConfigurationError(
                f"prices must be finite and > 0, got {p!r}"
            )
        return p

    def _row_totals(self, values: np.ndarray) -> np.ndarray:
        """Per-market row sums over the trailing population axis
        (see :func:`_per_market_totals` for the ragged-summation contract)."""
        return _per_market_totals(values, self._counts, ragged=self._ragged)

    def outcomes_stacked(self, prices: np.ndarray) -> StackedOutcome:
        """Play one trading round in every market of the stack, vectorised.

        Args:
            prices: one posted price per market, shape ``(M,)``, or one
                price grid per market, shape ``(M, R)`` (market ``m``
                evaluated at each of its ``R`` prices).

        Returns:
            A :class:`StackedOutcome` equal — bitwise, padding stripped —
            to solving each market separately via
            ``markets[m].round_outcome(prices[m])`` (vector form) or
            ``markets[m].outcomes_batch(prices[m])`` (grid form).
        """
        p = self._validate_prices(prices)
        grid = p.ndim == 2
        mask = self._mask[:, np.newaxis, :] if grid else self._mask
        raw = follower_best_response_stacked(
            self._alphas, self._data, p, self._se
        )
        demands = np.where(mask, raw, 0.0)
        demand_totals = self._row_totals(demands)
        # Non-enforcing markets ration against an infinite capacity, which
        # leaves their rows scaled by exactly 1.0 (bitwise unchanged).
        effective_caps = np.where(self._enforce, self._caps, np.inf)
        allocations = proportional_rationing_stacked(
            demands, effective_caps, totals=demand_totals
        )
        caps_rows = self._caps[:, np.newaxis] if grid else self._caps
        enforce_rows = self._enforce[:, np.newaxis] if grid else self._enforce
        binding = enforce_rows & (demand_totals >= caps_rows * (1.0 - 1e-9))
        utilities = msp_utilities_stacked(
            p, self._unit_costs, self._row_totals(allocations)
        )
        follower_utilities = np.where(
            mask,
            vmu_utilities_stacked(
                self._alphas, self._data, allocations, p, self._se
            ),
            0.0,
        )
        return StackedOutcome(
            prices=p,
            demands=demands,
            allocations=allocations,
            msp_utilities=utilities,
            vmu_utilities=follower_utilities,
            capacity_binding=binding,
            mask=self._mask.copy(),
            counts=self._counts.copy(),
        )

    def leader_landscapes(self, grid_points: int = 256) -> StackedOutcome:
        """Every market's full leader landscape as one stacked solve.

        Each market gets its own uniform ``grid_points``-point grid over
        its feasible interval ``[C_m, p_max_m]`` — the whole Fig.-3-style
        market grid evaluated in a single ``(M, R, N)`` pass.
        """
        grids = np.stack(
            [
                uniform_price_grid(
                    float(self._unit_costs[m]),
                    float(self._max_prices[m]),
                    grid_points,
                )
                for m in range(self.num_markets)
            ]
        )
        return self.outcomes_stacked(grids)

    # ------------------------------------------------------------------ #
    # the stacked equilibrium solve
    # ------------------------------------------------------------------ #
    def _msp_objective(self, prices: np.ndarray) -> np.ndarray:
        """Leader utilities at per-market prices ``(M,)`` or grids ``(M, R)``."""
        return self.outcomes_stacked(prices).msp_utilities

    def _candidate_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Theorem 2's closed-form candidate prices for every market.

        Vectorises :meth:`StackelbergMarket._segment_candidates` across the
        stack. Per market the layout is: the ``N_max + 2`` segment
        boundaries (``C``, the drop-out thresholds inside ``(C, p_max)``
        sorted ascending, ``p_max``), then each of the ``N_max + 1``
        segments' clamped unconstrained optimum ``sqrt(C·SE·Σ_A α / Σ_A D)``
        and clamped capacity-saturating price ``Σ_A α / (B + Σ_A D/SE)`` —
        a ``(M, 3·N_max + 4)`` matrix. The per-segment active-set sums come
        from prefix sums of ``α`` and ``D`` sorted by descending threshold,
        so one cumulative pass replaces the per-probe ``O(N)`` re-reduction.
        Padded population slots sort to the end (threshold ``-inf``) and
        contribute zero to every prefix; segment slots with no active VMU
        (or with capacity enforcement off, for the ``p_cap`` entries)
        duplicate their segment's lower boundary, which is already a
        candidate — duplicates never change the argmax's *price*, so a row
        solved inside a wide ragged stack picks the identical equilibrium
        it picks alone.

        Returns ``(candidates (M, K), feasible (M,))``.
        """
        if self._candidates is not None:
            return self._candidates
        costs = self._unit_costs[:, np.newaxis]
        caps_price = self._max_prices[:, np.newaxis]
        se = self._se[:, np.newaxis]
        thresholds = self._alphas * se / self._data
        masked_t = np.where(self._mask, thresholds, -np.inf)
        feasible = masked_t.max(axis=1) > self._unit_costs

        # Prefix sums over (α, D) sorted by descending threshold: the
        # active set of any probe price is a prefix of this order.
        order = np.argsort(-masked_t, axis=1, kind="stable")
        t_desc = np.take_along_axis(masked_t, order, axis=1)
        alpha_prefix = np.cumsum(
            np.take_along_axis(
                np.where(self._mask, self._alphas, 0.0), order, axis=1
            ),
            axis=1,
        )
        data_prefix = np.cumsum(
            np.take_along_axis(
                np.where(self._mask, self._data, 0.0), order, axis=1
            ),
            axis=1,
        )

        inside = self._mask & (thresholds > costs) & (thresholds < caps_price)
        inner = np.sort(np.where(inside, thresholds, caps_price), axis=1)
        boundaries = np.concatenate([costs, inner, caps_price], axis=1)
        low = boundaries[:, :-1]
        high = boundaries[:, 1:]
        probe = 0.5 * (low + high)
        active_counts = (t_desc[:, np.newaxis, :] > probe[:, :, np.newaxis]).sum(
            axis=2
        )
        has_active = active_counts > 0
        prefix_idx = np.maximum(active_counts - 1, 0)
        alpha_sums = np.take_along_axis(alpha_prefix, prefix_idx, axis=1)
        data_sums = np.take_along_axis(data_prefix, prefix_idx, axis=1)
        p_unconstrained = np.sqrt(costs * se * alpha_sums / data_sums)
        p_cap = alpha_sums / (self._caps[:, np.newaxis] + data_sums / se)
        unconstrained = np.where(
            has_active, np.clip(p_unconstrained, low, high), low
        )
        saturating = np.where(
            has_active & self._enforce[:, np.newaxis],
            np.clip(p_cap, low, high),
            low,
        )
        candidates = np.concatenate([boundaries, unconstrained, saturating], axis=1)
        self._candidates = (candidates, feasible)
        return self._candidates

    def equilibria_stacked(self, *, refine: bool = True) -> StackedEquilibria:
        """Solve every market's Stackelberg equilibrium in one stacked pass.

        The market-axis form of :meth:`StackelbergMarket.equilibrium`
        (which is itself the ``M = 1`` case of this solve, so the two
        cannot diverge): evaluate the exact leader utility at every
        market's closed-form candidate matrix in one
        :meth:`outcomes_stacked` call, argmax per market, then — with
        ``refine`` — cross-check with a lockstep batched golden-section
        search (:func:`repro.game.solvers.grid_then_golden_batch`, all
        ``M`` brackets per iteration in one stacked evaluation); the better
        price wins per market. Infeasible markets are masked in the result
        instead of aborting the solve (see :class:`StackedEquilibria`).

        Results are memoised per ``refine`` flag — markets are immutable,
        so repeated solves of one stack are free.
        """
        cached = self._equilibria.get(refine)
        if cached is not None:
            return cached
        candidates, feasible = self._candidate_matrix()
        candidate_values = self.outcomes_stacked(candidates).msp_utilities
        best_idx = np.argmax(candidate_values, axis=1)[:, np.newaxis]
        best_prices = np.take_along_axis(candidates, best_idx, axis=1)[:, 0]
        best_values = np.take_along_axis(candidate_values, best_idx, axis=1)[:, 0]
        if refine:
            refined_prices, refined_values = grid_then_golden_batch(
                self._msp_objective, self._unit_costs, self._max_prices
            )
            best_prices = np.where(
                refined_values > best_values, refined_prices, best_prices
            )
        outcome = self.outcomes_stacked(best_prices)
        price_cap_binding = np.abs(best_prices - self._max_prices) < 1e-9
        rows = feasible[:, np.newaxis]
        result = StackedEquilibria(
            prices=np.where(feasible, best_prices, np.nan),
            demands=np.where(rows, outcome.allocations, np.nan),
            msp_utilities=np.where(feasible, outcome.msp_utilities, np.nan),
            vmu_utilities=np.where(rows, outcome.vmu_utilities, np.nan),
            capacity_binding=outcome.capacity_binding & feasible,
            price_cap_binding=price_cap_binding & feasible,
            feasible=feasible,
            mask=self._mask.copy(),
            counts=self._counts.copy(),
            unit_costs=self._unit_costs.copy(),
        )
        # The result is memoised, so its backing arrays are frozen: a
        # caller writing through them would silently poison every later
        # equilibrium() solve of this stack. equilibrium(m) hands out
        # copies; whole-array consumers get read-only views.
        for field in (
            result.prices,
            result.demands,
            result.msp_utilities,
            result.vmu_utilities,
            result.capacity_binding,
            result.price_cap_binding,
            result.feasible,
            result.mask,
            result.counts,
            result.unit_costs,
        ):
            field.setflags(write=False)
        self._equilibria[refine] = result
        return result
