"""Heterogeneous market stacking: M *different* Stackelberg markets, one pass.

:class:`StackelbergMarket.outcomes_batch` vectorises many prices against one
market. This module adds the orthogonal axis the paper's figures actually
sweep — many *markets*: a :class:`MarketStack` stacks the per-market
parameter arrays (``α`` and ``D`` as ``(M, N)`` matrices, capacities, unit
costs, and spectral efficiencies as ``(M,)`` vectors, ragged populations
padded and masked) and solves all ``M`` follower stages plus leader
utilities in a single numpy pass via :meth:`MarketStack.outcomes_stacked`.

Exactness contract
------------------
A stacked solve agrees **bitwise** with ``M`` separate per-market solves:

- every follower/leader quantity is the identical elementwise expression
  the per-market path evaluates (`core/utilities` grew the matching
  ``*_stacked`` forms);
- padded population slots carry zero demand, and zeros are exact under
  both multiplication and addition;
- ragged stacks reduce each market's totals over its *own* population
  (summing a zero-padded row can associate differently inside numpy's
  pairwise reduction and drift a ulp), so the summation order matches the
  per-market solve exactly.

``StackelbergMarket.outcomes_batch`` is the ``M = 1`` broadcast case of
this path — the single-market price batch delegates here, so the two
entry points cannot diverge.

Chunking contract
-----------------
:meth:`MarketStack.equilibria_stacked_chunked` streams the equilibrium
solve over row ranges of the stack so peak memory is bounded by the chunk,
not by ``M``. Every operation of the solve — the Theorem-2 candidate
matrix, the candidate evaluation, and the lockstep golden refinement — is
row-local (reductions run along the population or candidate axis, never
across markets), so solving rows ``[lo, hi)`` alone produces bitwise the
same numbers those rows get inside the full stacked solve. The per-chunk
evaluation writes into one set of preallocated scratch buffers
(:class:`_ChunkScratch`) reused across all chunks, and results stream into
preallocated ``(M,)``/``(M, N_max)`` output arrays — memory scales with
``chunk_size``, results are bitwise-equal to :meth:`equilibria_stacked`
for *every* chunk size. See ``sim/README.md`` for the budget semantics.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.channel.ofdma import proportional_rationing_stacked
from repro.core.stackelberg import (
    MarketOutcome,
    PriceBatchOutcome,
    StackelbergEquilibrium,
    StackelbergMarket,
)
from repro.core.utilities import (
    follower_best_response_stacked,
    msp_utilities_stacked,
    vmu_utilities_stacked,
)
from repro.errors import ConfigurationError, InfeasibleMarketError
from repro.game.solvers import grid_then_golden_batch

__all__ = [
    "MarketStack",
    "StackedOutcome",
    "StackedEquilibria",
    "DEFAULT_CHUNK_BYTES",
    "resolve_chunk_size",
    "solve_scratch_bytes_per_market",
]

DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024
"""Default scratch-memory budget of a chunked solve (64 MiB)."""

_REFINE_GRID_POINTS = 256
"""Coarse-scan width of ``grid_then_golden_batch`` — the widest per-market
price batch the equilibrium solve evaluates (together with the
``3·N_max + 4``-wide candidate matrix)."""


def solve_scratch_bytes_per_market(n_max: int) -> int:
    """Estimated peak scratch bytes one market contributes to a chunk.

    Sized for the widest evaluation of the solve: a ``(width, N_max)``
    best-response/allocation band where ``width = max(256, 3·N_max + 4)``,
    the transient grouped-reduction copies of that band (ragged stacks),
    the ``(width,)``-shaped grid/total/scale temporaries, and the
    candidate-matrix intermediates. Deliberately conservative so a chunk
    sized from ``chunk_bytes`` stays inside the budget including numpy's
    untracked temporaries.
    """
    if n_max < 1:
        raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
    width = max(_REFINE_GRID_POINTS, 3 * n_max + 4)
    return 8 * (3 * width * n_max + 12 * width + 32 * n_max + 128)


def resolve_chunk_size(
    num_markets: int,
    n_max: int,
    *,
    chunk_size: int | None = None,
    chunk_bytes: int | None = None,
) -> int:
    """Rows per chunk for a chunked solve of an ``(M, N_max)`` stack.

    An explicit ``chunk_size`` wins over ``chunk_bytes``; with neither set
    the :data:`DEFAULT_CHUNK_BYTES` budget applies. The result is clamped
    to ``[1, num_markets]``, so any positive value is safe to pass.
    """
    if chunk_size is not None:
        size = int(chunk_size)
        if size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        return min(size, num_markets)
    budget = DEFAULT_CHUNK_BYTES if chunk_bytes is None else int(chunk_bytes)
    if budget < 1:
        raise ConfigurationError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    per_market = solve_scratch_bytes_per_market(n_max)
    return max(1, min(num_markets, budget // per_market))


def _per_market_totals(
    values: np.ndarray, counts: np.ndarray, *, ragged: bool
) -> np.ndarray:
    """Row sums over the trailing population axis, one per market.

    Ragged stacks reduce each market over its *own* ``N`` so the summation
    order is identical to the per-market solve; zero-padded rows could
    associate differently inside numpy's pairwise reduction and drift a
    ulp. Markets are grouped by population size — one numpy reduction per
    *distinct* ``N`` instead of one Python iteration per market; within a
    group each row reduces over the same contiguous ``[:n]`` slice the
    per-market loop reduced, so the grouping is bitwise-invisible. The
    single implementation behind ``MarketStack._row_totals`` and
    ``StackedOutcome.total_vmu_utilities``.
    """
    if not ragged:
        return values.sum(axis=-1)
    totals = np.empty(values.shape[:-1], dtype=np.float64)
    for n in np.unique(counts):
        members = np.flatnonzero(counts == n)
        totals[members] = values[members, ..., : int(n)].sum(axis=-1)
    return totals


class _ChunkScratch:
    """Preallocated per-chunk buffers, reused across every chunk.

    ``band`` holds the widest ``(chunk, width, N_max)`` evaluation of the
    solve (best responses overwritten in place by allocations); ``ratio``
    holds the per-chunk ``D/SE`` matrix; ``pad`` the inverted population
    mask. Chunks narrower than the buffers use leading-axis views, so no
    chunk allocates fresh band-sized arrays.
    """

    def __init__(self, chunk_size: int, n_max: int) -> None:
        width = max(_REFINE_GRID_POINTS, 3 * n_max + 4)
        self.band = np.empty((chunk_size, width, n_max), dtype=np.float64)
        self.ratio = np.empty((chunk_size, n_max), dtype=np.float64)
        self.pad = np.empty((chunk_size, n_max), dtype=bool)


@dataclass(frozen=True)
class StackedOutcome:
    """Outcomes of one stacked trading round across ``M`` different markets.

    Arrays are batched along axis 0 (one entry per market). With per-market
    price *grids* the arrays carry an extra round axis ``R`` after the
    market axis. Padded population slots (``mask == False``) hold zeros.
    """

    prices: np.ndarray
    """Posted prices, shape ``(M,)`` or ``(M, R)``."""
    demands: np.ndarray
    """Requested bandwidth, shape ``(M, N_max)`` or ``(M, R, N_max)``."""
    allocations: np.ndarray
    """Granted bandwidth after per-market rationing (same shape)."""
    msp_utilities: np.ndarray
    """Leader utility per market (and round), shape ``(M,)`` or ``(M, R)``."""
    vmu_utilities: np.ndarray
    """Follower utilities (same shape as ``demands``)."""
    capacity_binding: np.ndarray
    """Whether Σ demand hit the market's ``B_max`` (prices' shape, bool)."""
    mask: np.ndarray
    """Valid-population mask, boolean shape ``(M, N_max)``."""
    counts: np.ndarray
    """True population size per market, shape ``(M,)``."""

    def __len__(self) -> int:
        return self.num_markets

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return int(self.prices.shape[0])

    @property
    def has_price_grid(self) -> bool:
        """True when the stack was solved on per-market price grids."""
        return self.prices.ndim == 2

    @property
    def total_allocated(self) -> np.ndarray:
        """Σ granted bandwidth per market (and round), prices' shape."""
        return self.allocations.sum(axis=-1)

    def total_vmu_utilities(self) -> np.ndarray:
        """Σ U_n per market (and round), prices' shape.

        Reduces each market over its *own* population (not the padded row),
        so ragged stacks agree bitwise with per-market ``vmu_utilities.sum()``
        — padded zeros are exact but would associate differently inside
        numpy's pairwise reduction.
        """
        ragged = bool((self.counts != self.mask.shape[1]).any())
        return _per_market_totals(self.vmu_utilities, self.counts, ragged=ragged)

    def row(self, market_index: int) -> MarketOutcome:
        """Market ``market_index``'s outcome as a scalar
        :class:`MarketOutcome` (padding stripped).

        Only defined for vector-priced solves; grid solves expose
        :meth:`market_rows` instead.
        """
        if self.has_price_grid:
            raise ConfigurationError(
                "row() is for (M,)-priced solves; use market_rows() on a "
                "price-grid solve"
            )
        n = int(self.counts[market_index])
        return MarketOutcome(
            price=float(self.prices[market_index]),
            demands=self.demands[market_index, :n].copy(),
            allocations=self.allocations[market_index, :n].copy(),
            msp_utility=float(self.msp_utilities[market_index]),
            vmu_utilities=self.vmu_utilities[market_index, :n].copy(),
            capacity_binding=bool(self.capacity_binding[market_index]),
        )

    def market_rows(self, market_index: int) -> PriceBatchOutcome:
        """Market ``market_index``'s full price batch as a
        :class:`PriceBatchOutcome` (padding stripped).

        Only defined for grid solves — the per-market view that slots into
        everything already consuming single-market price batches.
        """
        if not self.has_price_grid:
            raise ConfigurationError(
                "market_rows() is for (M, R)-priced solves; use row() on a "
                "vector-priced solve"
            )
        n = int(self.counts[market_index])
        return PriceBatchOutcome(
            prices=self.prices[market_index],
            demands=self.demands[market_index, :, :n],
            allocations=self.allocations[market_index, :, :n],
            msp_utilities=self.msp_utilities[market_index],
            vmu_utilities=self.vmu_utilities[market_index, :, :n],
            capacity_binding=self.capacity_binding[market_index],
        )


@dataclass(frozen=True)
class StackedEquilibria:
    """Stackelberg equilibria of ``M`` different markets, one stacked solve.

    Arrays are batched along axis 0 (one entry per market); padded
    population slots hold zeros. Markets where no feasible price induces
    any demand are *masked*: their ``feasible`` entry is ``False``, their
    numeric fields hold ``nan`` (bindings ``False``), and
    :meth:`equilibrium` raises the same :class:`InfeasibleMarketError` the
    per-market :meth:`StackelbergMarket.equilibrium` raises — the stacked
    solve never aborts a whole grid for one degenerate member.
    """

    prices: np.ndarray
    """Equilibrium price per market, shape ``(M,)`` (``nan`` if infeasible)."""
    demands: np.ndarray
    """Equilibrium bandwidth per VMU (natural units), shape ``(M, N_max)``."""
    msp_utilities: np.ndarray
    """Leader utility at equilibrium, shape ``(M,)``."""
    vmu_utilities: np.ndarray
    """Follower utilities at equilibrium, shape ``(M, N_max)``."""
    capacity_binding: np.ndarray
    """Whether Σ demand hit the market's ``B_max``, boolean ``(M,)``."""
    price_cap_binding: np.ndarray
    """Whether the equilibrium sits at ``p_max``, boolean ``(M,)``."""
    feasible: np.ndarray
    """Whether the market admits profitable trade, boolean ``(M,)``."""
    mask: np.ndarray
    """Valid-population mask, boolean shape ``(M, N_max)``."""
    counts: np.ndarray
    """True population size per market, shape ``(M,)``."""
    unit_costs: np.ndarray
    """Per-market unit cost ``C``, shape ``(M,)`` (for error reporting)."""
    _scalar_cache: dict[int, StackelbergEquilibrium] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    """Lazily built per-market scalar equilibria (accessor memo)."""

    def __len__(self) -> int:
        return self.num_markets

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return int(self.prices.shape[0])

    @property
    def total_bandwidths(self) -> np.ndarray:
        """Σ b*_n per market in natural units, shape ``(M,)``.

        Always reduces each market over its own population — the same sum
        the scalar ``StackelbergEquilibrium.total_bandwidth`` evaluates.
        """
        return _per_market_totals(self.demands, self.counts, ragged=True)

    def equilibrium(self, market_index: int) -> StackelbergEquilibrium:
        """Market ``market_index``'s equilibrium as a scalar
        :class:`StackelbergEquilibrium` (padding stripped).

        Built once per market and cached — repeated access during sweep
        assembly is O(1). The cached object is shared between callers, so
        its arrays are read-only (the stacked backing arrays already are).

        Raises:
            InfeasibleMarketError: if the market admits no profitable
                trade — the identical semantics of the per-market
                :meth:`StackelbergMarket.equilibrium`.
        """
        if not bool(self.feasible[market_index]):
            raise InfeasibleMarketError(
                "every VMU's drop-out threshold is at or below the unit "
                f"cost C={float(self.unit_costs[market_index])}; no "
                "profitable trade exists"
            )
        index = int(market_index)
        cached = self._scalar_cache.get(index)
        if cached is not None:
            return cached
        n = int(self.counts[index])
        demands = self.demands[index, :n].copy()
        vmu_utilities = self.vmu_utilities[index, :n].copy()
        demands.setflags(write=False)
        vmu_utilities.setflags(write=False)
        result = StackelbergEquilibrium(
            price=float(self.prices[index]),
            demands=demands,
            msp_utility=float(self.msp_utilities[index]),
            vmu_utilities=vmu_utilities,
            capacity_binding=bool(self.capacity_binding[index]),
            price_cap_binding=bool(self.price_cap_binding[index]),
        )
        self._scalar_cache[index] = result
        return result

    def equilibria(self) -> list[StackelbergEquilibrium | None]:
        """Every market's scalar equilibrium (``None`` where infeasible)."""
        return [
            self.equilibrium(m) if bool(self.feasible[m]) else None
            for m in range(self.num_markets)
        ]


class MarketStack:
    """A stack of ``M`` (possibly heterogeneous) Stackelberg markets.

    Stacks per-market parameters into padded ``(M, N_max)`` matrices once
    at construction; :meth:`outcomes_stacked` then solves all ``M`` markets
    at ``M`` different prices (or ``M`` whole price grids) in one numpy
    pass. See the module docstring for the bitwise exactness contract and
    :meth:`equilibria_stacked_chunked` for the memory-bounded city-scale
    path.
    """

    def __init__(self, markets: Sequence[StackelbergMarket]) -> None:
        if len(markets) == 0:
            raise ConfigurationError("market stack needs at least one market")
        self._markets = tuple(markets)
        num_markets = len(self._markets)
        counts = np.fromiter(
            (m.num_vmus for m in self._markets),
            dtype=np.int64,
            count=num_markets,
        )
        n_max = int(counts.max())
        # Padding value 1.0 keeps the padded slots' elementwise math finite;
        # the mask zeroes their demand before anything downstream sees it.
        # The mask's True slots are each row's leading prefix, so boolean
        # assignment (row-major) scatters the concatenated per-market
        # vectors into exactly the slots the per-market fill loop wrote.
        alphas = np.ones((num_markets, n_max), dtype=np.float64)
        data = np.ones((num_markets, n_max), dtype=np.float64)
        mask = np.arange(n_max) < counts[:, np.newaxis]
        alphas[mask] = np.concatenate([m._alphas for m in self._markets])
        data[mask] = np.concatenate([m._data_units for m in self._markets])
        self._counts = counts
        self._mask = mask
        self._alphas = alphas
        self._data = data
        self._ragged = bool((counts != n_max).any())
        self._se = np.fromiter(
            (m.spectral_efficiency for m in self._markets),
            dtype=np.float64,
            count=num_markets,
        )
        self._unit_costs = np.fromiter(
            (m.config.unit_cost for m in self._markets),
            dtype=np.float64,
            count=num_markets,
        )
        self._max_prices = np.fromiter(
            (m.config.max_price for m in self._markets),
            dtype=np.float64,
            count=num_markets,
        )
        self._caps = np.fromiter(
            (m.config.capacity_natural for m in self._markets),
            dtype=np.float64,
            count=num_markets,
        )
        self._enforce = np.fromiter(
            (m.config.enforce_capacity for m in self._markets),
            dtype=bool,
            count=num_markets,
        )
        # Lazy equilibrium-solve caches: the candidate matrix depends only
        # on the (immutable) stacked parameters, and solved equilibria are
        # memoised per refine flag (markets and configs are frozen, so the
        # solve can never go stale). Chunked and unchunked solves are
        # bitwise-equal, so they share the memo.
        self._candidates: tuple[np.ndarray, np.ndarray] | None = None
        self._equilibria: dict[bool, StackedEquilibria] = {}

    @classmethod
    def from_markets(
        cls, markets: Sequence[StackelbergMarket]
    ) -> "MarketStack":
        """Build a stack over ``markets`` (alias of the constructor, named
        for symmetry with ``VectorMigrationEnv.from_market``)."""
        return cls(markets)

    @classmethod
    def from_grid(
        cls,
        num_markets: int | None = None,
        *,
        rows: int | None = None,
        cols: int | None = None,
        block_m: float = 400.0,
        coverage_radius_m: float | None = None,
        speed_limit_mps: float = 13.9,
        vehicles_per_cell: float = 400.0,
        max_vmus: int = 6,
        target_aotm: float = 0.05,
        horizon_s: float = 3600.0,
        seed: int = 0,
    ) -> "MarketStack":
        """A city-scale stack: one migration market per RSU-grid junction.

        Builds a Manhattan grid (:func:`repro.mobility.road.grid_city`)
        with one :class:`~repro.entities.rsu.RoadsideUnit` per junction,
        derives each junction's migration-demand profile from the mobility
        models (handover rate of ``vehicles_per_cell`` vehicles crossing
        the cell at ``speed_limit_mps``), sizes the market's ``B_max`` via
        :func:`repro.mobility.demand.capacity_for_demand`, and samples the
        VMU population per cell. Each market is a pure function of the
        grid parameters and its junction index (per-index seeding), so a
        chunked/scheduled build of index range ``[lo, hi)`` produces the
        identical markets — see :mod:`repro.mobility.citygrid`.

        Pass either ``num_markets`` (grid shape derived, near-square) or an
        explicit ``rows × cols`` shape.
        """
        from repro.mobility.citygrid import CityGridSpec, city_markets

        spec = CityGridSpec.for_markets(
            num_markets,
            rows=rows,
            cols=cols,
            block_m=block_m,
            coverage_radius_m=coverage_radius_m,
            speed_limit_mps=speed_limit_mps,
            vehicles_per_cell=vehicles_per_cell,
            max_vmus=max_vmus,
            target_aotm=target_aotm,
            horizon_s=horizon_s,
            seed=seed,
        )
        return cls(city_markets(spec))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_markets

    @property
    def markets(self) -> tuple[StackelbergMarket, ...]:
        """The stacked member markets."""
        return self._markets

    def market(self, market_index: int) -> StackelbergMarket:
        """The ``market_index``-th member market."""
        return self._markets[market_index]

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return len(self._markets)

    @property
    def max_vmus(self) -> int:
        """Widest population ``N_max`` (the padded trailing axis)."""
        return int(self._mask.shape[1])

    @property
    def counts(self) -> np.ndarray:
        """True population size per market, shape ``(M,)`` (copy)."""
        return self._counts.copy()

    @property
    def mask(self) -> np.ndarray:
        """Valid-population mask ``(M, N_max)`` (copy)."""
        return self._mask.copy()

    @property
    def immersion_coefs(self) -> np.ndarray:
        """Padded ``α`` matrix ``(M, N_max)`` (copy)."""
        return self._alphas.copy()

    @property
    def data_units(self) -> np.ndarray:
        """Padded ``D`` matrix ``(M, N_max)`` in natural units (copy)."""
        return self._data.copy()

    @property
    def spectral_efficiencies(self) -> np.ndarray:
        """Per-market link SE ``(M,)`` (copy)."""
        return self._se.copy()

    @property
    def unit_costs(self) -> np.ndarray:
        """Per-market transmission cost ``C`` ``(M,)`` (copy)."""
        return self._unit_costs.copy()

    @property
    def max_prices(self) -> np.ndarray:
        """Per-market price ceiling ``p_max`` ``(M,)`` (copy)."""
        return self._max_prices.copy()

    @property
    def capacities_natural(self) -> np.ndarray:
        """Per-market ``B_max`` in natural units ``(M,)`` (copy)."""
        return self._caps.copy()

    # ------------------------------------------------------------------ #
    # the stacked solve
    # ------------------------------------------------------------------ #
    def _validate_prices(self, prices: np.ndarray) -> np.ndarray:
        p = np.asarray(prices, dtype=float)
        if p.ndim not in (1, 2) or p.shape[0] != self.num_markets:
            raise ConfigurationError(
                f"expected prices of shape (M,) or (M, R) with M = "
                f"{self.num_markets}, got shape {p.shape}"
            )
        if p.size == 0:
            raise ConfigurationError("price array must not be empty")
        if np.any(~np.isfinite(p)) or np.any(p <= 0.0):
            raise ConfigurationError(
                f"prices must be finite and > 0, got {p!r}"
            )
        return p

    def _row_totals(self, values: np.ndarray) -> np.ndarray:
        """Per-market row sums over the trailing population axis
        (see :func:`_per_market_totals` for the ragged-summation contract)."""
        return _per_market_totals(values, self._counts, ragged=self._ragged)

    def outcomes_stacked(self, prices: np.ndarray) -> StackedOutcome:
        """Play one trading round in every market of the stack, vectorised.

        Args:
            prices: one posted price per market, shape ``(M,)``, or one
                price grid per market, shape ``(M, R)`` (market ``m``
                evaluated at each of its ``R`` prices).

        Returns:
            A :class:`StackedOutcome` equal — bitwise, padding stripped —
            to solving each market separately via
            ``markets[m].round_outcome(prices[m])`` (vector form) or
            ``markets[m].outcomes_batch(prices[m])`` (grid form).
        """
        p = self._validate_prices(prices)
        grid = p.ndim == 2
        mask = self._mask[:, np.newaxis, :] if grid else self._mask
        raw = follower_best_response_stacked(
            self._alphas, self._data, p, self._se
        )
        demands = np.where(mask, raw, 0.0)
        demand_totals = self._row_totals(demands)
        # Non-enforcing markets ration against an infinite capacity, which
        # leaves their rows scaled by exactly 1.0 (bitwise unchanged).
        effective_caps = np.where(self._enforce, self._caps, np.inf)
        allocations = proportional_rationing_stacked(
            demands, effective_caps, totals=demand_totals
        )
        caps_rows = self._caps[:, np.newaxis] if grid else self._caps
        enforce_rows = self._enforce[:, np.newaxis] if grid else self._enforce
        binding = enforce_rows & (demand_totals >= caps_rows * (1.0 - 1e-9))
        utilities = msp_utilities_stacked(
            p, self._unit_costs, self._row_totals(allocations)
        )
        follower_utilities = np.where(
            mask,
            vmu_utilities_stacked(
                self._alphas, self._data, allocations, p, self._se
            ),
            0.0,
        )
        return StackedOutcome(
            prices=p,
            demands=demands,
            allocations=allocations,
            msp_utilities=utilities,
            vmu_utilities=follower_utilities,
            capacity_binding=binding,
            mask=self._mask.copy(),
            counts=self._counts.copy(),
        )

    def leader_landscapes(self, grid_points: int = 256) -> StackedOutcome:
        """Every market's full leader landscape as one stacked solve.

        Each market gets its own uniform ``grid_points``-point grid over
        its feasible interval ``[C_m, p_max_m]`` — the whole Fig.-3-style
        market grid evaluated in a single ``(M, R, N)`` pass. The grid
        rows are the elementwise ``low + step·arange`` expression of
        :func:`repro.game.solvers.uniform_price_grid`, built for all
        markets in one broadcast (bitwise-identical rows, no per-market
        loop).
        """
        if grid_points < 2:
            raise ConfigurationError(
                f"grid_points must be >= 2, got {grid_points}"
            )
        steps = (self._max_prices - self._unit_costs) / (grid_points - 1)
        grids = (
            self._unit_costs[:, np.newaxis]
            + steps[:, np.newaxis] * np.arange(grid_points)
        )
        return self.outcomes_stacked(grids)

    # ------------------------------------------------------------------ #
    # the stacked equilibrium solve
    # ------------------------------------------------------------------ #
    def _msp_objective(self, prices: np.ndarray) -> np.ndarray:
        """Leader utilities at per-market prices ``(M,)`` or grids ``(M, R)``."""
        return self.outcomes_stacked(prices).msp_utilities

    def _candidate_rows(self, sl: slice) -> tuple[np.ndarray, np.ndarray]:
        """Theorem 2's closed-form candidate prices for rows ``sl``.

        Vectorises :meth:`StackelbergMarket._segment_candidates` across the
        stack. Per market the layout is: the ``N_max + 2`` segment
        boundaries (``C``, the drop-out thresholds inside ``(C, p_max)``
        sorted ascending, ``p_max``), then each of the ``N_max + 1``
        segments' clamped unconstrained optimum ``sqrt(C·SE·Σ_A α / Σ_A D)``
        and clamped capacity-saturating price ``Σ_A α / (B + Σ_A D/SE)`` —
        a ``(m, 3·N_max + 4)`` matrix. The per-segment active-set sums come
        from prefix sums of ``α`` and ``D`` sorted by descending threshold,
        so one cumulative pass replaces the per-probe ``O(N)`` re-reduction.
        Padded population slots sort to the end (threshold ``-inf``) and
        contribute zero to every prefix; segment slots with no active VMU
        (or with capacity enforcement off, for the ``p_cap`` entries)
        duplicate their segment's lower boundary, which is already a
        candidate — duplicates never change the argmax's *price*, so a row
        solved inside a wide ragged stack picks the identical equilibrium
        it picks alone. Every operation is row-local (sorts, prefix sums,
        and reductions run along axis 1), so the rows of a slice are
        bitwise the rows of the full matrix — the property the chunked
        solve streams on.

        Returns ``(candidates (m, K), feasible (m,))``.
        """
        row_mask = self._mask[sl]
        row_alphas = self._alphas[sl]
        row_data = self._data[sl]
        costs = self._unit_costs[sl][:, np.newaxis]
        caps_price = self._max_prices[sl][:, np.newaxis]
        se = self._se[sl][:, np.newaxis]
        thresholds = row_alphas * se / row_data
        masked_t = np.where(row_mask, thresholds, -np.inf)
        feasible = masked_t.max(axis=1) > self._unit_costs[sl]

        # Prefix sums over (α, D) sorted by descending threshold: the
        # active set of any probe price is a prefix of this order.
        order = np.argsort(-masked_t, axis=1, kind="stable")
        t_desc = np.take_along_axis(masked_t, order, axis=1)
        alpha_prefix = np.cumsum(
            np.take_along_axis(
                np.where(row_mask, row_alphas, 0.0), order, axis=1
            ),
            axis=1,
        )
        data_prefix = np.cumsum(
            np.take_along_axis(
                np.where(row_mask, row_data, 0.0), order, axis=1
            ),
            axis=1,
        )

        inside = row_mask & (thresholds > costs) & (thresholds < caps_price)
        inner = np.sort(np.where(inside, thresholds, caps_price), axis=1)
        boundaries = np.concatenate([costs, inner, caps_price], axis=1)
        low = boundaries[:, :-1]
        high = boundaries[:, 1:]
        probe = 0.5 * (low + high)
        active_counts = (t_desc[:, np.newaxis, :] > probe[:, :, np.newaxis]).sum(
            axis=2
        )
        has_active = active_counts > 0
        prefix_idx = np.maximum(active_counts - 1, 0)
        alpha_sums = np.take_along_axis(alpha_prefix, prefix_idx, axis=1)
        data_sums = np.take_along_axis(data_prefix, prefix_idx, axis=1)
        p_unconstrained = np.sqrt(costs * se * alpha_sums / data_sums)
        p_cap = alpha_sums / (self._caps[sl][:, np.newaxis] + data_sums / se)
        unconstrained = np.where(
            has_active, np.clip(p_unconstrained, low, high), low
        )
        saturating = np.where(
            has_active & self._enforce[sl][:, np.newaxis],
            np.clip(p_cap, low, high),
            low,
        )
        candidates = np.concatenate(
            [boundaries, unconstrained, saturating], axis=1
        )
        return candidates, feasible

    def _candidate_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """The full-stack candidate matrix (cached; see
        :meth:`_candidate_rows` for the construction)."""
        if self._candidates is None:
            self._candidates = self._candidate_rows(slice(None))
        return self._candidates

    def equilibria_stacked(self, *, refine: bool = True) -> StackedEquilibria:
        """Solve every market's Stackelberg equilibrium in one stacked pass.

        The market-axis form of :meth:`StackelbergMarket.equilibrium`
        (which is itself the ``M = 1`` case of this solve, so the two
        cannot diverge): evaluate the exact leader utility at every
        market's closed-form candidate matrix in one
        :meth:`outcomes_stacked` call, argmax per market, then — with
        ``refine`` — cross-check with a lockstep batched golden-section
        search (:func:`repro.game.solvers.grid_then_golden_batch`, all
        ``M`` brackets per iteration in one stacked evaluation); the better
        price wins per market. Infeasible markets are masked in the result
        instead of aborting the solve (see :class:`StackedEquilibria`).

        Results are memoised per ``refine`` flag — markets are immutable,
        so repeated solves of one stack are free. For stacks too wide to
        materialise the full candidate evaluation, use
        :meth:`equilibria_stacked_chunked` (bitwise-equal).
        """
        cached = self._equilibria.get(refine)
        if cached is not None:
            return cached
        candidates, feasible = self._candidate_matrix()
        candidate_values = self.outcomes_stacked(candidates).msp_utilities
        best_idx = np.argmax(candidate_values, axis=1)[:, np.newaxis]
        best_prices = np.take_along_axis(candidates, best_idx, axis=1)[:, 0]
        best_values = np.take_along_axis(candidate_values, best_idx, axis=1)[:, 0]
        if refine:
            refined_prices, refined_values = grid_then_golden_batch(
                self._msp_objective, self._unit_costs, self._max_prices
            )
            best_prices = np.where(
                refined_values > best_values, refined_prices, best_prices
            )
        outcome = self.outcomes_stacked(best_prices)
        price_cap_binding = np.abs(best_prices - self._max_prices) < 1e-9
        rows = feasible[:, np.newaxis]
        result = StackedEquilibria(
            prices=np.where(feasible, best_prices, np.nan),
            demands=np.where(rows, outcome.allocations, np.nan),
            msp_utilities=np.where(feasible, outcome.msp_utilities, np.nan),
            vmu_utilities=np.where(rows, outcome.vmu_utilities, np.nan),
            capacity_binding=outcome.capacity_binding & feasible,
            price_cap_binding=price_cap_binding & feasible,
            feasible=feasible,
            mask=self._mask.copy(),
            counts=self._counts.copy(),
            unit_costs=self._unit_costs.copy(),
        )
        return self._memoise(refine, result)

    # ------------------------------------------------------------------ #
    # the chunked (memory-bounded) equilibrium solve
    # ------------------------------------------------------------------ #
    def resolve_chunk_size(
        self,
        *,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> int:
        """Rows per chunk a chunked solve of this stack would use
        (see the module-level :func:`resolve_chunk_size`)."""
        return resolve_chunk_size(
            self.num_markets,
            self.max_vmus,
            chunk_size=chunk_size,
            chunk_bytes=chunk_bytes,
        )

    def _grid_utilities(
        self, sl: slice, prices: np.ndarray, scratch: _ChunkScratch
    ) -> np.ndarray:
        """Leader utilities of rows ``sl`` at per-market price grids,
        evaluated into the chunk's scratch buffers.

        The scratch-buffered replica of
        ``outcomes_stacked(prices).msp_utilities`` for a row range: best
        responses, mask zeroing, and rationing are the identical
        elementwise expressions, computed in place in ``scratch.band``
        instead of freshly allocated ``(M, R, N)`` arrays. Only the
        ``(m, R)``-shaped totals/scales remain ordinary allocations.
        """
        alphas = self._alphas[sl]
        data = self._data[sl]
        se = self._se[sl]
        counts = self._counts[sl]
        m, width = prices.shape
        band = scratch.band[:m, :width]
        # b*_n = max(0, α_n/p − D_n/SE), padded slots zeroed — identical
        # operands (and therefore bits) to follower_best_response_stacked
        # plus the np.where(mask, ·, 0.0) of outcomes_stacked.
        np.divide(alphas[:, np.newaxis, :], prices[:, :, np.newaxis], out=band)
        ratio = scratch.ratio[:m]
        np.divide(data, se[:, np.newaxis], out=ratio)
        np.subtract(band, ratio[:, np.newaxis, :], out=band)
        np.maximum(band, 0.0, out=band)
        np.copyto(band, 0.0, where=scratch.pad[:m, np.newaxis, :])
        demand_totals = _per_market_totals(band, counts, ragged=self._ragged)
        # Proportional rationing in place (demands are not needed after
        # their totals): the same where-guarded scale expression as
        # proportional_rationing_stacked, rows within capacity scaled by
        # exactly 1.0.
        caps_rows = np.where(self._enforce[sl], self._caps[sl], np.inf)[
            :, np.newaxis
        ]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            scales = np.where(
                demand_totals > caps_rows, caps_rows / demand_totals, 1.0
            )
        np.multiply(band, scales[:, :, np.newaxis], out=band)
        return msp_utilities_stacked(
            prices,
            self._unit_costs[sl],
            _per_market_totals(band, counts, ragged=self._ragged),
        )

    def _vector_utilities(self, sl: slice, prices: np.ndarray) -> np.ndarray:
        """Leader utilities of rows ``sl`` at one price per market — the
        row-sliced replica of the ``(M,)``-priced ``outcomes_stacked``
        utility chain (small arrays; no scratch needed)."""
        mask = self._mask[sl]
        counts = self._counts[sl]
        raw = follower_best_response_stacked(
            self._alphas[sl], self._data[sl], prices, self._se[sl]
        )
        demands = np.where(mask, raw, 0.0)
        demand_totals = _per_market_totals(demands, counts, ragged=self._ragged)
        effective_caps = np.where(self._enforce[sl], self._caps[sl], np.inf)
        allocations = proportional_rationing_stacked(
            demands, effective_caps, totals=demand_totals
        )
        return msp_utilities_stacked(
            prices,
            self._unit_costs[sl],
            _per_market_totals(allocations, counts, ragged=self._ragged),
        )

    def _solve_rows(
        self, sl: slice, refine: bool, scratch: _ChunkScratch
    ) -> dict[str, np.ndarray]:
        """Equilibrium arrays for rows ``sl`` — one chunk of the solve.

        Runs the identical candidate-argmax + golden-refinement sequence
        :meth:`equilibria_stacked` runs, restricted to a row range and
        evaluated through the chunk scratch buffers. Because every
        operation is row-local, the returned arrays are bitwise the
        corresponding rows of the unchunked result.
        """
        num_rows = len(range(*sl.indices(self.num_markets)))
        np.logical_not(self._mask[sl], out=scratch.pad[:num_rows])
        candidates, feasible = self._candidate_rows(sl)
        candidate_values = self._grid_utilities(sl, candidates, scratch)
        best_idx = np.argmax(candidate_values, axis=1)[:, np.newaxis]
        best_prices = np.take_along_axis(candidates, best_idx, axis=1)[:, 0]
        best_values = np.take_along_axis(candidate_values, best_idx, axis=1)[
            :, 0
        ]
        if refine:

            def objective(prices: np.ndarray) -> np.ndarray:
                p = np.asarray(prices, dtype=np.float64)
                if p.ndim == 2:
                    return self._grid_utilities(sl, p, scratch)
                return self._vector_utilities(sl, p)

            refined_prices, refined_values = grid_then_golden_batch(
                objective, self._unit_costs[sl], self._max_prices[sl]
            )
            best_prices = np.where(
                refined_values > best_values, refined_prices, best_prices
            )
        # Full outcome fields at the winning prices — the row-sliced
        # replica of the final outcomes_stacked(best_prices) evaluation
        # (small (m, N_max) arrays, so no scratch indirection).
        mask = self._mask[sl]
        counts = self._counts[sl]
        raw = follower_best_response_stacked(
            self._alphas[sl], self._data[sl], best_prices, self._se[sl]
        )
        demands = np.where(mask, raw, 0.0)
        demand_totals = _per_market_totals(demands, counts, ragged=self._ragged)
        effective_caps = np.where(self._enforce[sl], self._caps[sl], np.inf)
        allocations = proportional_rationing_stacked(
            demands, effective_caps, totals=demand_totals
        )
        binding = self._enforce[sl] & (
            demand_totals >= self._caps[sl] * (1.0 - 1e-9)
        )
        utilities = msp_utilities_stacked(
            best_prices,
            self._unit_costs[sl],
            _per_market_totals(allocations, counts, ragged=self._ragged),
        )
        follower_utilities = np.where(
            mask,
            vmu_utilities_stacked(
                self._alphas[sl],
                self._data[sl],
                allocations,
                best_prices,
                self._se[sl],
            ),
            0.0,
        )
        price_cap_binding = np.abs(best_prices - self._max_prices[sl]) < 1e-9
        rows = feasible[:, np.newaxis]
        return {
            "prices": np.where(feasible, best_prices, np.nan),
            "demands": np.where(rows, allocations, np.nan),
            "msp_utilities": np.where(feasible, utilities, np.nan),
            "vmu_utilities": np.where(rows, follower_utilities, np.nan),
            "capacity_binding": binding & feasible,
            "price_cap_binding": price_cap_binding & feasible,
            "feasible": feasible,
        }

    def equilibria_stacked_chunked(
        self,
        *,
        refine: bool = True,
        chunk_size: int | None = None,
        chunk_bytes: int | None = None,
    ) -> StackedEquilibria:
        """The memory-bounded streaming form of :meth:`equilibria_stacked`.

        Partitions the stack into chunks of :meth:`resolve_chunk_size`
        rows (explicit ``chunk_size`` wins over the ``chunk_bytes`` scratch
        budget; neither set uses :data:`DEFAULT_CHUNK_BYTES`), solves each
        chunk through the candidate-matrix + golden-refinement path into
        one set of preallocated scratch buffers reused across chunks, and
        streams the per-chunk rows into preallocated result arrays. Peak
        memory scales with the chunk, never with ``M`` — and the result is
        **bitwise-equal** to the unchunked solve for every chunk size (the
        solve is row-local end to end; see the module docstring).

        Shares the per-``refine`` memo with :meth:`equilibria_stacked`:
        solving a stack twice — chunked or not, any chunk size — returns
        the identical cached object.
        """
        cached = self._equilibria.get(refine)
        if cached is not None:
            return cached
        size = self.resolve_chunk_size(
            chunk_size=chunk_size, chunk_bytes=chunk_bytes
        )
        num_markets, n_max = self.num_markets, self.max_vmus
        out = {
            "prices": np.empty(num_markets, dtype=np.float64),
            "demands": np.empty((num_markets, n_max), dtype=np.float64),
            "msp_utilities": np.empty(num_markets, dtype=np.float64),
            "vmu_utilities": np.empty((num_markets, n_max), dtype=np.float64),
            "capacity_binding": np.empty(num_markets, dtype=bool),
            "price_cap_binding": np.empty(num_markets, dtype=bool),
            "feasible": np.empty(num_markets, dtype=bool),
        }
        scratch = _ChunkScratch(size, n_max)
        for start in range(0, num_markets, size):
            sl = slice(start, min(start + size, num_markets))
            chunk = self._solve_rows(sl, refine, scratch)
            for key, values in chunk.items():
                out[key][sl] = values
        result = StackedEquilibria(
            mask=self._mask.copy(),
            counts=self._counts.copy(),
            unit_costs=self._unit_costs.copy(),
            **out,
        )
        return self._memoise(refine, result)

    def _memoise(self, refine: bool, result: StackedEquilibria) -> StackedEquilibria:
        """Freeze a solved result's arrays and store it in the per-refine
        memo.

        The result is memoised, so its backing arrays are frozen: a caller
        writing through them would silently poison every later
        equilibrium() solve of this stack. equilibrium(m) hands out
        read-only copies; whole-array consumers get read-only views.
        """
        for values in (
            result.prices,
            result.demands,
            result.msp_utilities,
            result.vmu_utilities,
            result.capacity_binding,
            result.price_cap_binding,
            result.feasible,
            result.mask,
            result.counts,
            result.unit_costs,
        ):
            values.setflags(write=False)
        self._equilibria[refine] = result
        return result
