"""Heterogeneous market stacking: M *different* Stackelberg markets, one pass.

:class:`StackelbergMarket.outcomes_batch` vectorises many prices against one
market. This module adds the orthogonal axis the paper's figures actually
sweep — many *markets*: a :class:`MarketStack` stacks the per-market
parameter arrays (``α`` and ``D`` as ``(M, N)`` matrices, capacities, unit
costs, and spectral efficiencies as ``(M,)`` vectors, ragged populations
padded and masked) and solves all ``M`` follower stages plus leader
utilities in a single numpy pass via :meth:`MarketStack.outcomes_stacked`.

Exactness contract
------------------
A stacked solve agrees **bitwise** with ``M`` separate per-market solves:

- every follower/leader quantity is the identical elementwise expression
  the per-market path evaluates (`core/utilities` grew the matching
  ``*_stacked`` forms);
- padded population slots carry zero demand, and zeros are exact under
  both multiplication and addition;
- ragged stacks reduce each market's totals over its *own* population
  (summing a zero-padded row can associate differently inside numpy's
  pairwise reduction and drift a ulp), so the summation order matches the
  per-market solve exactly.

``StackelbergMarket.outcomes_batch`` is the ``M = 1`` broadcast case of
this path — the single-market price batch delegates here, so the two
entry points cannot diverge.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.channel.ofdma import proportional_rationing_stacked
from repro.core.stackelberg import (
    MarketOutcome,
    PriceBatchOutcome,
    StackelbergMarket,
    uniform_price_grid,
)
from repro.core.utilities import (
    follower_best_response_stacked,
    msp_utilities_stacked,
    vmu_utilities_stacked,
)
from repro.errors import ConfigurationError

__all__ = ["MarketStack", "StackedOutcome"]


@dataclass(frozen=True)
class StackedOutcome:
    """Outcomes of one stacked trading round across ``M`` different markets.

    Arrays are batched along axis 0 (one entry per market). With per-market
    price *grids* the arrays carry an extra round axis ``R`` after the
    market axis. Padded population slots (``mask == False``) hold zeros.
    """

    prices: np.ndarray
    """Posted prices, shape ``(M,)`` or ``(M, R)``."""
    demands: np.ndarray
    """Requested bandwidth, shape ``(M, N_max)`` or ``(M, R, N_max)``."""
    allocations: np.ndarray
    """Granted bandwidth after per-market rationing (same shape)."""
    msp_utilities: np.ndarray
    """Leader utility per market (and round), shape ``(M,)`` or ``(M, R)``."""
    vmu_utilities: np.ndarray
    """Follower utilities (same shape as ``demands``)."""
    capacity_binding: np.ndarray
    """Whether Σ demand hit the market's ``B_max`` (prices' shape, bool)."""
    mask: np.ndarray
    """Valid-population mask, boolean shape ``(M, N_max)``."""
    counts: np.ndarray
    """True population size per market, shape ``(M,)``."""

    def __len__(self) -> int:
        return self.num_markets

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return int(self.prices.shape[0])

    @property
    def has_price_grid(self) -> bool:
        """True when the stack was solved on per-market price grids."""
        return self.prices.ndim == 2

    @property
    def total_allocated(self) -> np.ndarray:
        """Σ granted bandwidth per market (and round), prices' shape."""
        return self.allocations.sum(axis=-1)

    def row(self, market_index: int) -> MarketOutcome:
        """Market ``market_index``'s outcome as a scalar
        :class:`MarketOutcome` (padding stripped).

        Only defined for vector-priced solves; grid solves expose
        :meth:`market_rows` instead.
        """
        if self.has_price_grid:
            raise ConfigurationError(
                "row() is for (M,)-priced solves; use market_rows() on a "
                "price-grid solve"
            )
        n = int(self.counts[market_index])
        return MarketOutcome(
            price=float(self.prices[market_index]),
            demands=self.demands[market_index, :n].copy(),
            allocations=self.allocations[market_index, :n].copy(),
            msp_utility=float(self.msp_utilities[market_index]),
            vmu_utilities=self.vmu_utilities[market_index, :n].copy(),
            capacity_binding=bool(self.capacity_binding[market_index]),
        )

    def market_rows(self, market_index: int) -> PriceBatchOutcome:
        """Market ``market_index``'s full price batch as a
        :class:`PriceBatchOutcome` (padding stripped).

        Only defined for grid solves — the per-market view that slots into
        everything already consuming single-market price batches.
        """
        if not self.has_price_grid:
            raise ConfigurationError(
                "market_rows() is for (M, R)-priced solves; use row() on a "
                "vector-priced solve"
            )
        n = int(self.counts[market_index])
        return PriceBatchOutcome(
            prices=self.prices[market_index],
            demands=self.demands[market_index, :, :n],
            allocations=self.allocations[market_index, :, :n],
            msp_utilities=self.msp_utilities[market_index],
            vmu_utilities=self.vmu_utilities[market_index, :, :n],
            capacity_binding=self.capacity_binding[market_index],
        )


class MarketStack:
    """A stack of ``M`` (possibly heterogeneous) Stackelberg markets.

    Stacks per-market parameters into padded ``(M, N_max)`` matrices once
    at construction; :meth:`outcomes_stacked` then solves all ``M`` markets
    at ``M`` different prices (or ``M`` whole price grids) in one numpy
    pass. See the module docstring for the bitwise exactness contract.
    """

    def __init__(self, markets: Sequence[StackelbergMarket]) -> None:
        if len(markets) == 0:
            raise ConfigurationError("market stack needs at least one market")
        self._markets = tuple(markets)
        counts = np.array([m.num_vmus for m in self._markets], dtype=int)
        num_markets, n_max = len(self._markets), int(counts.max())
        # Padding value 1.0 keeps the padded slots' elementwise math finite;
        # the mask zeroes their demand before anything downstream sees it.
        alphas = np.ones((num_markets, n_max))
        data = np.ones((num_markets, n_max))
        mask = np.zeros((num_markets, n_max), dtype=bool)
        for i, market in enumerate(self._markets):
            n = market.num_vmus
            alphas[i, :n] = market.immersion_coefs
            data[i, :n] = market.data_units
            mask[i, :n] = True
        self._counts = counts
        self._mask = mask
        self._alphas = alphas
        self._data = data
        self._ragged = bool((counts != n_max).any())
        self._se = np.array([m.spectral_efficiency for m in self._markets])
        self._unit_costs = np.array(
            [m.config.unit_cost for m in self._markets]
        )
        self._max_prices = np.array(
            [m.config.max_price for m in self._markets]
        )
        self._caps = np.array(
            [m.config.capacity_natural for m in self._markets]
        )
        self._enforce = np.array(
            [m.config.enforce_capacity for m in self._markets], dtype=bool
        )

    @classmethod
    def from_markets(
        cls, markets: Sequence[StackelbergMarket]
    ) -> "MarketStack":
        """Build a stack over ``markets`` (alias of the constructor, named
        for symmetry with ``VectorMigrationEnv.from_market``)."""
        return cls(markets)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_markets

    @property
    def markets(self) -> tuple[StackelbergMarket, ...]:
        """The stacked member markets."""
        return self._markets

    def market(self, market_index: int) -> StackelbergMarket:
        """The ``market_index``-th member market."""
        return self._markets[market_index]

    @property
    def num_markets(self) -> int:
        """Stack width ``M``."""
        return len(self._markets)

    @property
    def max_vmus(self) -> int:
        """Widest population ``N_max`` (the padded trailing axis)."""
        return int(self._mask.shape[1])

    @property
    def counts(self) -> np.ndarray:
        """True population size per market, shape ``(M,)`` (copy)."""
        return self._counts.copy()

    @property
    def mask(self) -> np.ndarray:
        """Valid-population mask ``(M, N_max)`` (copy)."""
        return self._mask.copy()

    @property
    def immersion_coefs(self) -> np.ndarray:
        """Padded ``α`` matrix ``(M, N_max)`` (copy)."""
        return self._alphas.copy()

    @property
    def data_units(self) -> np.ndarray:
        """Padded ``D`` matrix ``(M, N_max)`` in natural units (copy)."""
        return self._data.copy()

    @property
    def spectral_efficiencies(self) -> np.ndarray:
        """Per-market link SE ``(M,)`` (copy)."""
        return self._se.copy()

    @property
    def unit_costs(self) -> np.ndarray:
        """Per-market transmission cost ``C`` ``(M,)`` (copy)."""
        return self._unit_costs.copy()

    @property
    def max_prices(self) -> np.ndarray:
        """Per-market price ceiling ``p_max`` ``(M,)`` (copy)."""
        return self._max_prices.copy()

    @property
    def capacities_natural(self) -> np.ndarray:
        """Per-market ``B_max`` in natural units ``(M,)`` (copy)."""
        return self._caps.copy()

    # ------------------------------------------------------------------ #
    # the stacked solve
    # ------------------------------------------------------------------ #
    def _validate_prices(self, prices: np.ndarray) -> np.ndarray:
        p = np.asarray(prices, dtype=float)
        if p.ndim not in (1, 2) or p.shape[0] != self.num_markets:
            raise ConfigurationError(
                f"expected prices of shape (M,) or (M, R) with M = "
                f"{self.num_markets}, got shape {p.shape}"
            )
        if p.size == 0:
            raise ConfigurationError("price array must not be empty")
        if np.any(~np.isfinite(p)) or np.any(p <= 0.0):
            raise ConfigurationError(
                f"prices must be finite and > 0, got {p!r}"
            )
        return p

    def _row_totals(self, values: np.ndarray) -> np.ndarray:
        """Per-market row sums over the trailing population axis.

        Ragged stacks reduce each market over its own ``N`` so the
        summation order is identical to the per-market solve; zero-padded
        rows could associate differently inside numpy's pairwise reduction
        and drift a ulp.
        """
        if not self._ragged:
            return values.sum(axis=-1)
        totals = np.empty(values.shape[:-1])
        for m, n in enumerate(self._counts):
            totals[m] = values[m, ..., :n].sum(axis=-1)
        return totals

    def outcomes_stacked(self, prices: np.ndarray) -> StackedOutcome:
        """Play one trading round in every market of the stack, vectorised.

        Args:
            prices: one posted price per market, shape ``(M,)``, or one
                price grid per market, shape ``(M, R)`` (market ``m``
                evaluated at each of its ``R`` prices).

        Returns:
            A :class:`StackedOutcome` equal — bitwise, padding stripped —
            to solving each market separately via
            ``markets[m].round_outcome(prices[m])`` (vector form) or
            ``markets[m].outcomes_batch(prices[m])`` (grid form).
        """
        p = self._validate_prices(prices)
        grid = p.ndim == 2
        mask = self._mask[:, np.newaxis, :] if grid else self._mask
        raw = follower_best_response_stacked(
            self._alphas, self._data, p, self._se
        )
        demands = np.where(mask, raw, 0.0)
        demand_totals = self._row_totals(demands)
        # Non-enforcing markets ration against an infinite capacity, which
        # leaves their rows scaled by exactly 1.0 (bitwise unchanged).
        effective_caps = np.where(self._enforce, self._caps, np.inf)
        allocations = proportional_rationing_stacked(
            demands, effective_caps, totals=demand_totals
        )
        caps_rows = self._caps[:, np.newaxis] if grid else self._caps
        enforce_rows = self._enforce[:, np.newaxis] if grid else self._enforce
        binding = enforce_rows & (demand_totals >= caps_rows * (1.0 - 1e-9))
        utilities = msp_utilities_stacked(
            p, self._unit_costs, self._row_totals(allocations)
        )
        follower_utilities = np.where(
            mask,
            vmu_utilities_stacked(
                self._alphas, self._data, allocations, p, self._se
            ),
            0.0,
        )
        return StackedOutcome(
            prices=p,
            demands=demands,
            allocations=allocations,
            msp_utilities=utilities,
            vmu_utilities=follower_utilities,
            capacity_binding=binding,
            mask=self._mask.copy(),
            counts=self._counts.copy(),
        )

    def leader_landscapes(self, grid_points: int = 256) -> StackedOutcome:
        """Every market's full leader landscape as one stacked solve.

        Each market gets its own uniform ``grid_points``-point grid over
        its feasible interval ``[C_m, p_max_m]`` — the whole Fig.-3-style
        market grid evaluated in a single ``(M, R, N)`` pass.
        """
        grids = np.stack(
            [
                uniform_price_grid(
                    float(self._unit_costs[m]),
                    float(self._max_prices[m]),
                    grid_points,
                )
                for m in range(self.num_markets)
            ]
        )
        return self.outcomes_stacked(grids)
