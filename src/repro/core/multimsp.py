"""Multi-MSP price competition (the paper's second stated future work).

The paper's market is a monopoly. Its conclusion proposes extending to
"scenarios with multiple MSPs". This module implements the natural
oligopoly extension:

- Each MSP ``m`` posts a unit price ``p_m`` over its own capacity.
- Each VMU buys from the *cheapest* MSP (ties split evenly) and
  best-responds with Eq. (8) at that price; capacity is rationed per MSP.
- MSPs compete à la Bertrand with capacity limits: given rivals' prices,
  each MSP best-responds over ``[C_m, p_max]``; we iterate simultaneous
  best responses to a (pure-strategy) equilibrium when one exists.

Classic results to expect (and which the tests assert): with two identical
unconstrained MSPs, undercutting drives prices down to cost (Bertrand);
with tight capacities, prices stay above cost (Edgeworth interval can
cycle — the dynamics then report non-convergence rather than looping
forever).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.channel.link import RsuLink, paper_link
from repro.channel.ofdma import proportional_rationing
from repro.core.utilities import follower_best_response
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError, GameError
from repro.utils.validation import require_positive

__all__ = ["MspSpec", "OligopolyOutcome", "MultiMspMarket"]


@dataclass(frozen=True)
class MspSpec:
    """One competing provider.

    Attributes:
        msp_id: identifier.
        unit_cost: its transmission cost ``C_m`` (price floor).
        capacity: sellable bandwidth in natural units.
    """

    msp_id: str
    unit_cost: float
    capacity: float

    def __post_init__(self) -> None:
        require_positive("unit_cost", self.unit_cost)
        require_positive("capacity", self.capacity)


@dataclass(frozen=True)
class OligopolyOutcome:
    """Market outcome at a posted price vector."""

    prices: np.ndarray
    msp_utilities: np.ndarray
    msp_sales: np.ndarray
    """Bandwidth sold per MSP (natural units)."""
    vmu_allocations: np.ndarray
    """Bandwidth received per VMU (natural units)."""


@dataclass(frozen=True)
class OligopolyEquilibrium:
    """Fixed point of simultaneous price best responses."""

    prices: np.ndarray
    msp_utilities: np.ndarray
    converged: bool
    iterations: int


class MultiMspMarket:
    """Price competition between several MSPs over one VMU population."""

    def __init__(
        self,
        vmus: Sequence[VmuProfile],
        msps: Sequence[MspSpec],
        *,
        max_price: float = 50.0,
        price_tick: float = 0.05,
        link: RsuLink | None = None,
    ) -> None:
        if len(vmus) == 0:
            raise ConfigurationError("market needs at least one VMU")
        if len(msps) < 1:
            raise ConfigurationError("market needs at least one MSP")
        ids = [m.msp_id for m in msps]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate MSP ids")
        require_positive("max_price", max_price)
        require_positive("price_tick", price_tick)
        self._vmus = tuple(vmus)
        self._msps = tuple(msps)
        self._max_price = float(max_price)
        self._price_tick = float(price_tick)
        self._link = link if link is not None else paper_link()
        self._alphas = np.array([v.immersion_coef for v in vmus])
        self._data = np.array([v.data_units for v in vmus])

    @property
    def msps(self) -> tuple[MspSpec, ...]:
        """The competing providers."""
        return self._msps

    @property
    def num_msps(self) -> int:
        """Number of providers."""
        return len(self._msps)

    @property
    def spectral_efficiency(self) -> float:
        """Link spectral efficiency (shared by all providers)."""
        return self._link.spectral_efficiency

    def outcome(self, prices: Sequence[float]) -> OligopolyOutcome:
        """Clear the market at a posted price vector.

        VMUs buy from the cheapest provider (ties split demand evenly);
        each provider rations its own capacity proportionally.
        """
        prices = np.asarray(prices, dtype=float)
        if prices.shape != (self.num_msps,):
            raise ConfigurationError(
                f"expected {self.num_msps} prices, got shape {prices.shape}"
            )
        if np.any(prices <= 0.0):
            raise ConfigurationError("prices must be > 0")
        best_price = prices.min()
        winners = np.flatnonzero(np.isclose(prices, best_price, rtol=1e-12))
        demands = follower_best_response(
            self._alphas, self._data, float(best_price), self.spectral_efficiency
        )
        sales = np.zeros(self.num_msps)
        allocations = np.zeros(len(self._vmus))
        share = demands / len(winners)
        for msp_index in winners:
            granted = proportional_rationing(
                share, self._msps[msp_index].capacity
            )
            sales[msp_index] = granted.sum()
            allocations += granted
        utilities = (prices - np.array([m.unit_cost for m in self._msps])) * sales
        return OligopolyOutcome(
            prices=prices,
            msp_utilities=utilities,
            msp_sales=sales,
            vmu_allocations=allocations,
        )

    def msp_utility(self, msp_index: int, price: float, rival_prices: Sequence[float]) -> float:
        """Utility of one MSP at ``price`` given the rivals' prices."""
        rivals = list(rival_prices)
        if len(rivals) != self.num_msps - 1:
            raise ConfigurationError(
                f"expected {self.num_msps - 1} rival prices, got {len(rivals)}"
            )
        full = rivals[:msp_index] + [price] + rivals[msp_index:]
        return float(self.outcome(full).msp_utilities[msp_index])

    def _price_lattice(self, unit_cost: float) -> np.ndarray:
        count = int((self._max_price - unit_cost) / self._price_tick) + 1
        lattice = unit_cost + self._price_tick * np.arange(count + 1)
        return lattice[lattice <= self._max_price + 1e-12]

    def _best_response_price(self, msp_index: int, prices: np.ndarray) -> float:
        """Best response over the discrete price lattice.

        Prices live on a tick lattice (``price_tick``), which is the
        standard discretisation that gives capacity-less Bertrand a pure
        equilibrium at cost + one tick: continuous undercutting has no
        smallest profitable deviation, so a continuous argmax would sit
        "just below" the rival forever. The current price is kept unless
        a lattice point is *strictly* better — inertia on ties is what
        makes the dynamics terminate instead of drifting around
        zero-utility plateaus.
        """
        spec = self._msps[msp_index]
        rivals = [p for i, p in enumerate(prices) if i != msp_index]
        best_price = float(prices[msp_index])
        best_value = self.msp_utility(msp_index, best_price, rivals)
        for price in self._price_lattice(spec.unit_cost):
            value = self.msp_utility(msp_index, float(price), rivals)
            if value > best_value + 1e-12:
                best_price, best_value = float(price), value
        return best_price

    def equilibrium(
        self,
        *,
        initial_prices: Sequence[float] | None = None,
        max_iterations: int = 1000,
        tolerance: float = 1e-3,
    ) -> OligopolyEquilibrium:
        """Iterate simultaneous price best responses to a fixed point.

        Undercutting descends one grid/tick step per iteration (Bertrand
        dynamics are genuinely gradual), hence the generous default
        iteration budget. Returns ``converged=False`` (with the last
        iterate) when the dynamics cycle — the Edgeworth-cycle regime of
        capacity-constrained Bertrand competition, a real feature of the
        game rather than a numerical failure.
        """
        if max_iterations < 1:
            raise GameError("max_iterations must be >= 1")
        if initial_prices is None:
            prices = np.array(
                [min(self._max_price, 2.0 * m.unit_cost) for m in self._msps]
            )
        else:
            prices = np.asarray(initial_prices, dtype=float).copy()
            if prices.shape != (self.num_msps,):
                raise ConfigurationError(
                    f"expected {self.num_msps} initial prices"
                )
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            # Gauss-Seidel sweep: each MSP responds to the *freshest*
            # prices. Simultaneous updates make undercutting duopolies
            # oscillate (both jump below each other's stale price).
            previous = prices.copy()
            for index in range(self.num_msps):
                prices[index] = self._best_response_price(index, prices)
            if np.max(np.abs(prices - previous)) <= tolerance:
                outcome = self.outcome(prices)
                return OligopolyEquilibrium(
                    prices=prices,
                    msp_utilities=outcome.msp_utilities,
                    converged=True,
                    iterations=iterations,
                )
        outcome = self.outcome(prices)
        return OligopolyEquilibrium(
            prices=prices,
            msp_utilities=outcome.msp_utilities,
            converged=False,
            iterations=iterations,
        )
