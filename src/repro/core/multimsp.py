"""Multi-MSP price competition (the paper's second stated future work).

The paper's market is a monopoly. Its conclusion proposes extending to
"scenarios with multiple MSPs". This module implements the natural
oligopoly extension:

- Each MSP ``m`` posts a unit price ``p_m`` over its own capacity.
- Each VMU buys from the *cheapest* MSP (ties split evenly) and
  best-responds with Eq. (8) at that price; capacity is rationed per MSP.
- MSPs compete à la Bertrand with capacity limits: given rivals' prices,
  each MSP best-responds over ``[C_m, p_max]``; we iterate Gauss-Seidel
  best responses to a (pure-strategy) equilibrium when one exists.

Classic results to expect (and which the tests assert): with two identical
unconstrained MSPs, undercutting drives prices down to cost (Bertrand);
with tight capacities, prices stay above cost and the dynamics can enter
an Edgeworth cycle — detected exactly (profiles on the tick lattice
repeat bitwise) and reported as a diagnosis (cycle length and price
interval) rather than a bare ``converged=False``.

Each MSP's lattice best response is evaluated as **one batched pass**
(the whole candidate lattice against fixed rivals in a single set of
vectorised array ops), bitwise-equal to the scalar one-``outcome()``-call-
per-lattice-point reference, which is kept as ``batched=False`` for the
property tests and the speedup bench.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.channel.link import RsuLink, paper_link
from repro.channel.ofdma import proportional_rationing
from repro.core.utilities import follower_best_response, vmu_utilities
from repro.entities.vmu import VmuProfile
from repro.errors import ConfigurationError, GameError
from repro.game.best_response import iterate_best_response_batch
from repro.utils.validation import require_in_range, require_positive

if TYPE_CHECKING:
    from repro.core.stackelberg import StackelbergMarket

__all__ = [
    "MspSpec",
    "OligopolyOutcome",
    "OligopolyEquilibrium",
    "BestResponseTrace",
    "MultiMspMarket",
    "oligopoly_equilibria_batch",
    "oligopoly_from_market",
]

# Strict-improvement margin for the lattice sweep: the current price is
# kept unless a candidate beats it by more than this, which is what gives
# the dynamics inertia on zero-utility plateaus.
_IMPROVEMENT_MARGIN = 1e-12


@dataclass(frozen=True)
class MspSpec:
    """One competing provider.

    Attributes:
        msp_id: identifier.
        unit_cost: its transmission cost ``C_m`` (price floor).
        capacity: sellable bandwidth in natural units.
    """

    msp_id: str
    unit_cost: float
    capacity: float

    def __post_init__(self) -> None:
        require_positive("unit_cost", self.unit_cost)
        require_positive("capacity", self.capacity)


@dataclass(frozen=True)
class OligopolyOutcome:
    """Market outcome at a posted price vector."""

    prices: np.ndarray
    msp_utilities: np.ndarray
    msp_sales: np.ndarray
    """Bandwidth sold per MSP (natural units)."""
    vmu_allocations: np.ndarray
    """Bandwidth received per VMU (natural units)."""
    vmu_utilities: np.ndarray
    """Eq. (7) utility per VMU at the cheapest posted price — the
    consumer-surplus side of the oligopoly welfare comparison."""

    @property
    def social_welfare(self) -> float:
        """Total MSP profit plus total VMU surplus."""
        return float(self.msp_utilities.sum() + self.vmu_utilities.sum())


@dataclass(frozen=True)
class BestResponseTrace:
    """Full Gauss-Seidel trajectory of an oligopoly solve.

    Attributes:
        profiles: ``(T + 1, N)`` price profiles — the initial profile
            followed by the profile after each sweep.
        residuals: ``(T,)`` sup-norm change of each sweep.
    """

    profiles: np.ndarray
    residuals: np.ndarray


@dataclass(frozen=True)
class OligopolyEquilibrium:
    """Fixed point (or cycle diagnosis) of Gauss-Seidel price dynamics.

    ``cycle_length > 0`` means the dynamics revisited an earlier price
    profile exactly (profiles live on the tick lattice, so recurrence is
    bitwise) — the Edgeworth-cycle regime of capacity-constrained
    Bertrand competition. ``cycle_low``/``cycle_high`` bound the prices
    visited along the cycle (the Edgeworth price interval); both are 0.0
    when no cycle was detected.
    """

    prices: np.ndarray
    msp_utilities: np.ndarray
    converged: bool
    iterations: int
    residual: float = 0.0
    cycle_length: int = 0
    cycle_low: float = 0.0
    cycle_high: float = 0.0
    trace: BestResponseTrace | None = field(default=None, compare=False)


class MultiMspMarket:
    """Price competition between several MSPs over one VMU population."""

    def __init__(
        self,
        vmus: Sequence[VmuProfile],
        msps: Sequence[MspSpec],
        *,
        max_price: float = 50.0,
        price_tick: float = 0.05,
        link: RsuLink | None = None,
    ) -> None:
        if len(vmus) == 0:
            raise ConfigurationError("market needs at least one VMU")
        if len(msps) < 1:
            raise ConfigurationError("market needs at least one MSP")
        ids = [m.msp_id for m in msps]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate MSP ids")
        require_positive("max_price", max_price)
        require_positive("price_tick", price_tick)
        self._vmus = tuple(vmus)
        self._msps = tuple(msps)
        self._max_price = float(max_price)
        self._price_tick = float(price_tick)
        self._link = link if link is not None else paper_link()
        self._alphas = np.array([v.immersion_coef for v in vmus])
        self._data = np.array([v.data_units for v in vmus])
        self._unit_costs = np.array([m.unit_cost for m in msps])

    @property
    def msps(self) -> tuple[MspSpec, ...]:
        """The competing providers."""
        return self._msps

    @property
    def num_msps(self) -> int:
        """Number of providers."""
        return len(self._msps)

    @property
    def vmus(self) -> tuple[VmuProfile, ...]:
        """The buyer population."""
        return self._vmus

    @property
    def max_price(self) -> float:
        """Price cap shared by all providers."""
        return self._max_price

    @property
    def price_tick(self) -> float:
        """Lattice tick prices are quoted on."""
        return self._price_tick

    @property
    def spectral_efficiency(self) -> float:
        """Link spectral efficiency (shared by all providers)."""
        return self._link.spectral_efficiency

    def outcome(self, prices: Sequence[float]) -> OligopolyOutcome:
        """Clear the market at a posted price vector.

        VMUs buy from the cheapest provider (ties split demand evenly);
        each provider rations its own capacity proportionally.
        """
        prices = np.asarray(prices, dtype=float)
        if prices.shape != (self.num_msps,):
            raise ConfigurationError(
                f"expected {self.num_msps} prices, got shape {prices.shape}"
            )
        if np.any(prices <= 0.0):
            raise ConfigurationError("prices must be > 0")
        best_price = prices.min()
        winners = np.flatnonzero(np.isclose(prices, best_price, rtol=1e-12))
        demands = follower_best_response(
            self._alphas, self._data, float(best_price), self.spectral_efficiency
        )
        sales = np.zeros(self.num_msps)
        allocations = np.zeros(len(self._vmus))
        share = demands / len(winners)
        for msp_index in winners:
            granted = proportional_rationing(
                share, self._msps[msp_index].capacity
            )
            sales[msp_index] = granted.sum()
            allocations += granted
        utilities = (prices - self._unit_costs) * sales
        return OligopolyOutcome(
            prices=prices,
            msp_utilities=utilities,
            msp_sales=sales,
            vmu_allocations=allocations,
            vmu_utilities=vmu_utilities(
                self._alphas,
                self._data,
                allocations,
                float(best_price),
                self.spectral_efficiency,
            ),
        )

    def msp_utility(self, msp_index: int, price: float, rival_prices: Sequence[float]) -> float:
        """Utility of one MSP at ``price`` given the rivals' prices."""
        rivals = list(rival_prices)
        if len(rivals) != self.num_msps - 1:
            raise ConfigurationError(
                f"expected {self.num_msps - 1} rival prices, got {len(rivals)}"
            )
        full = rivals[:msp_index] + [price] + rivals[msp_index:]
        return float(self.outcome(full).msp_utilities[msp_index])

    def _price_lattice(self, unit_cost: float) -> np.ndarray:
        """The candidate lattice ``{C + k·tick : k ≥ 0} ∩ [C, p_max]``.

        Built exactly: a point belongs to the lattice iff
        ``unit_cost + k * price_tick <= max_price`` holds in float
        arithmetic — inclusive endpoint, no slop. (The previous
        construction over-generated with ``arange(count + 1)`` and
        filtered with a ``1e-12`` tolerance, which could admit a point
        strictly above ``max_price``.)
        """
        if unit_cost > self._max_price:
            return np.empty(0)
        count = int((self._max_price - unit_cost) / self._price_tick)
        # Float division can land one step off either way; correct with
        # the exact membership predicate.
        while unit_cost + (count + 1) * self._price_tick <= self._max_price:
            count += 1
        while count > 0 and unit_cost + count * self._price_tick > self._max_price:
            count -= 1
        return unit_cost + self._price_tick * np.arange(count + 1)

    def _lattice_utilities(
        self, msp_index: int, prices: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Utility of ``msp_index`` at each candidate own-price, batched.

        One vectorised pass over the whole candidate vector with rivals
        fixed at ``prices`` — bitwise-equal to calling
        :meth:`msp_utility` once per candidate (every array op below is
        the elementwise replica of the scalar ``outcome()`` chain,
        including the ``np.isclose`` winner test and the per-row
        contiguous-sum rationing).
        """
        spec = self._msps[msp_index]
        candidates = np.asarray(candidates, dtype=float)
        rivals = np.delete(np.asarray(prices, dtype=float), msp_index)
        if rivals.size:
            best = np.minimum(candidates, rivals.min())
        else:
            best = candidates
        self_wins = np.isclose(candidates, best, rtol=1e-12)
        if rivals.size:
            rival_wins = np.isclose(
                rivals[np.newaxis, :], best[:, np.newaxis], rtol=1e-12
            ).sum(axis=1)
        else:
            rival_wins = np.zeros(candidates.shape, dtype=int)
        num_winners = self_wins.astype(int) + rival_wins
        demands = follower_best_response(
            self._alphas, self._data, best, self.spectral_efficiency
        )
        share = demands / num_winners[:, np.newaxis]
        granted = proportional_rationing(share, spec.capacity)
        sales = np.where(self_wins, granted.sum(axis=-1), 0.0)
        return (candidates - spec.unit_cost) * sales

    def _best_response_price(self, msp_index: int, prices: np.ndarray) -> float:
        """Best response over the discrete price lattice (batched).

        Prices live on a tick lattice (``price_tick``), which is the
        standard discretisation that gives capacity-less Bertrand a pure
        equilibrium at cost + one tick: continuous undercutting has no
        smallest profitable deviation, so a continuous argmax would sit
        "just below" the rival forever. The current price is kept unless
        a lattice point is *strictly* better — inertia on ties is what
        makes the dynamics terminate instead of drifting around
        zero-utility plateaus.

        The whole lattice is evaluated in one batched call; the
        first-strict-improvement sweep over the resulting values is
        bitwise-identical to the scalar reference
        (:meth:`_best_response_price_scalar`).
        """
        spec = self._msps[msp_index]
        lattice = self._price_lattice(spec.unit_cost)
        candidates = np.concatenate(([float(prices[msp_index])], lattice))
        values = self._lattice_utilities(msp_index, prices, candidates)
        best_price = float(candidates[0])
        best_value = float(values[0])
        for price, value in zip(lattice.tolist(), values[1:].tolist()):
            if value > best_value + _IMPROVEMENT_MARGIN:
                best_price, best_value = price, value
        return best_price

    def _best_response_price_scalar(self, msp_index: int, prices: np.ndarray) -> float:
        """Scalar reference best response: one ``outcome()`` per lattice
        point. Kept as the bitwise ground truth for the batched path
        (property tests) and the speedup baseline (bench)."""
        spec = self._msps[msp_index]
        rivals = [p for i, p in enumerate(prices) if i != msp_index]
        best_price = float(prices[msp_index])
        best_value = self.msp_utility(msp_index, best_price, rivals)
        for price in self._price_lattice(spec.unit_cost):
            value = self.msp_utility(msp_index, float(price), rivals)
            if value > best_value + _IMPROVEMENT_MARGIN:
                best_price, best_value = float(price), value
        return best_price

    def _sweep(
        self, prices: np.ndarray, *, damping: float = 1.0, batched: bool = True
    ) -> np.ndarray:
        """One in-place Gauss-Seidel sweep: each MSP responds to the
        *freshest* prices (simultaneous updates make undercutting
        duopolies oscillate — both jump below each other's stale price).
        ``damping < 1`` relaxes each update toward the best response,
        which moves prices off the lattice but can stabilise cycling
        instances."""
        respond = (
            self._best_response_price if batched else self._best_response_price_scalar
        )
        for index in range(self.num_msps):
            response = respond(index, prices)
            if damping == 1.0:
                prices[index] = response
            else:
                prices[index] = (1.0 - damping) * prices[index] + damping * response
        return prices

    def _initial_prices(
        self, initial_prices: Sequence[float] | None
    ) -> np.ndarray:
        if initial_prices is None:
            return np.array(
                [min(self._max_price, 2.0 * m.unit_cost) for m in self._msps]
            )
        prices = np.asarray(initial_prices, dtype=float).copy()
        if prices.shape != (self.num_msps,):
            raise ConfigurationError(
                f"expected {self.num_msps} initial prices"
            )
        return prices

    def equilibrium(
        self,
        *,
        initial_prices: Sequence[float] | None = None,
        max_iterations: int = 1000,
        tolerance: float = 1e-3,
        damping: float = 1.0,
        batched: bool = True,
        record_trace: bool = True,
    ) -> OligopolyEquilibrium:
        """Iterate Gauss-Seidel price best responses to a fixed point.

        Undercutting descends one grid/tick step per iteration (Bertrand
        dynamics are genuinely gradual), hence the generous default
        iteration budget. When the dynamics revisit an earlier profile
        exactly — the Edgeworth-cycle regime of capacity-constrained
        Bertrand competition, a real feature of the game rather than a
        numerical failure — the solve stops immediately and reports the
        cycle's length and price interval (``cycle_length``,
        ``cycle_low``/``cycle_high``) alongside ``converged=False``.
        """
        if max_iterations < 1:
            raise GameError("max_iterations must be >= 1")
        require_in_range("damping", damping, 0.0, 1.0, inclusive=True)
        if damping == 0.0:
            raise GameError("damping must be > 0 (0 never moves)")
        prices = self._initial_prices(initial_prices)
        profiles = [prices.copy()]
        residuals: list[float] = []
        seen = {tuple(prices.tolist()): 0}
        converged = False
        residual = float("inf")
        cycle_length = 0
        cycle_low = cycle_high = 0.0
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            previous = prices.copy()
            self._sweep(prices, damping=damping, batched=batched)
            residual = float(np.max(np.abs(prices - previous)))
            profiles.append(prices.copy())
            residuals.append(residual)
            if residual <= tolerance:
                converged = True
                break
            key = tuple(prices.tolist())
            if key in seen:
                start = seen[key]
                cycle_length = iterations - start
                cycle_states = np.asarray(profiles[start:iterations])
                cycle_low = float(cycle_states.min())
                cycle_high = float(cycle_states.max())
                break
            seen[key] = iterations
        outcome = self.outcome(prices)
        trace = (
            BestResponseTrace(
                profiles=np.asarray(profiles), residuals=np.asarray(residuals)
            )
            if record_trace
            else None
        )
        return OligopolyEquilibrium(
            prices=prices,
            msp_utilities=outcome.msp_utilities,
            converged=converged,
            iterations=iterations,
            residual=residual,
            cycle_length=cycle_length,
            cycle_low=cycle_low,
            cycle_high=cycle_high,
            trace=trace,
        )


def oligopoly_equilibria_batch(
    markets: Sequence[MultiMspMarket],
    *,
    initial_prices: Sequence[Sequence[float] | None] | None = None,
    max_iterations: int = 1000,
    tolerance: float = 1e-3,
    damping: float = 1.0,
    record_trace: bool = False,
) -> list[OligopolyEquilibrium]:
    """Solve ``M`` independent oligopolies in lockstep on the stack.

    Drives :func:`repro.game.best_response.iterate_best_response_batch`
    with one Gauss-Seidel sweep per game per round (profiles padded to
    the widest game; padded columns masked out). Each game's trajectory
    — sweeps, convergence round, cycle detection, final profile — is
    bitwise-equal to calling :meth:`MultiMspMarket.equilibrium` on it
    alone; games that converge or cycle early freeze while the rest keep
    iterating.
    """
    if max_iterations < 1:
        raise GameError("max_iterations must be >= 1")
    require_in_range("damping", damping, 0.0, 1.0, inclusive=True)
    if damping == 0.0:
        raise GameError("damping must be > 0 (0 never moves)")
    games = list(markets)
    if not games:
        return []
    if initial_prices is None:
        starts = [game._initial_prices(None) for game in games]
    else:
        if len(initial_prices) != len(games):
            raise ConfigurationError(
                f"expected {len(games)} initial price vectors, got {len(initial_prices)}"
            )
        starts = [
            game._initial_prices(start)
            for game, start in zip(games, initial_prices)
        ]
    width = max(game.num_msps for game in games)
    stacked = np.zeros((len(games), width))
    mask = np.zeros((len(games), width), dtype=bool)
    for row, (game, start) in enumerate(zip(games, starts)):
        stacked[row, : game.num_msps] = start
        mask[row, : game.num_msps] = True

    # Per-game bookkeeping mirroring the scalar `equilibrium()` loop:
    # cycle detection runs inside the sweep map (after the convergence
    # check, exactly as in the scalar loop), and a cycled game freezes so
    # the lockstep iterator retires its row.
    rounds = 0
    done = [False] * len(games)
    seen = [{tuple(start.tolist()): 0} for start in starts]
    profiles = [[start.copy()] for start in starts]
    residual_logs: list[list[float]] = [[] for _ in games]
    converged_flags = [False] * len(games)
    iteration_counts = [max_iterations] * len(games)
    cycle_info: list[tuple[int, float, float] | None] = [None] * len(games)

    def sweep_stack(current: np.ndarray) -> np.ndarray:
        nonlocal rounds
        rounds += 1
        if rounds > max_iterations:
            # Budget exhausted: freeze every remaining game exactly where
            # the scalar loop would have stopped. The zero residual this
            # produces retires the rows in the lockstep iterator.
            for row in range(len(games)):
                done[row] = True
            return current
        swept = current.copy()
        for row, game in enumerate(games):
            if done[row]:
                continue
            width_row = game.num_msps
            prices = swept[row, :width_row].copy()
            previous = prices.copy()
            game._sweep(prices, damping=damping)
            swept[row, :width_row] = prices
            residual = float(np.max(np.abs(prices - previous)))
            profiles[row].append(prices.copy())
            residual_logs[row].append(residual)
            if residual <= tolerance:
                done[row] = True
                converged_flags[row] = True
                iteration_counts[row] = rounds
                continue
            key = tuple(prices.tolist())
            if key in seen[row]:
                start = seen[row][key]
                states = np.asarray(profiles[row][start:rounds])
                cycle_info[row] = (
                    rounds - start,
                    float(states.min()),
                    float(states.max()),
                )
                done[row] = True
                iteration_counts[row] = rounds
                continue
            seen[row][key] = rounds
        return swept

    # Game damping is applied inside each sweep (per component, exactly
    # as in the scalar loop); the iterator itself runs undamped. Cycled
    # rows freeze and need one extra round to register residual 0, hence
    # the +1 budget; their fields are overridden below.
    result = iterate_best_response_batch(
        sweep_stack,
        stacked,
        damping=1.0,
        tolerance=tolerance,
        max_iterations=max_iterations + 1,
        mask=mask,
    )

    equilibria: list[OligopolyEquilibrium] = []
    for row, game in enumerate(games):
        prices = result.strategies[row, : game.num_msps].copy()
        outcome = game.outcome(prices)
        iterations = iteration_counts[row]
        converged = converged_flags[row]
        residual = residual_logs[row][-1] if residual_logs[row] else 0.0
        info = cycle_info[row]
        if info is not None:
            cycle_length, cycle_low, cycle_high = info
        else:
            cycle_length = 0
            cycle_low = cycle_high = 0.0
        trace = (
            BestResponseTrace(
                profiles=np.asarray(profiles[row]),
                residuals=np.asarray(residual_logs[row]),
            )
            if record_trace
            else None
        )
        equilibria.append(
            OligopolyEquilibrium(
                prices=prices,
                msp_utilities=outcome.msp_utilities,
                converged=converged,
                iterations=iterations,
                residual=residual,
                cycle_length=cycle_length,
                cycle_low=cycle_low,
                cycle_high=cycle_high,
                trace=trace,
            )
        )
    return equilibria


def oligopoly_from_market(
    market: "StackelbergMarket",
    num_msps: int,
    *,
    split_capacity: bool = True,
    price_tick: float = 0.05,
) -> MultiMspMarket:
    """Build an ``N``-MSP oligopoly from a monopoly Stackelberg market.

    Every provider inherits the monopolist's unit cost and price cap;
    ``split_capacity=True`` divides the monopolist's capacity evenly
    (fixed industry capacity, the standard comparison for
    price-of-anarchy sweeps), ``False`` replicates it per provider
    (entry adds capacity).
    """
    if num_msps < 1:
        raise ConfigurationError("num_msps must be >= 1")
    config = market.config
    capacity = config.capacity_natural
    if split_capacity:
        capacity = capacity / num_msps
    msps = [
        MspSpec(f"msp-{index}", unit_cost=config.unit_cost, capacity=capacity)
        for index in range(num_msps)
    ]
    return MultiMspMarket(
        market.vmus,
        msps,
        max_price=config.max_price,
        price_tick=price_tick,
        link=market.link,
    )
