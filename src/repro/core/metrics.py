"""Extended freshness/immersion metrics (the paper's stated future work).

The conclusion of the paper announces "more effective immersive metrics in
conjunction with AoTM". This module provides the standard AoI-family
metrics adapted to twin migration, plus alternative immersion shapes, so
the incentive mechanism can be studied under different experience models:

- :func:`average_aoi` — long-run average age of a periodically updated
  twin whose updates are interrupted by migrations;
- :func:`peak_aoi` — worst-case age right before an update lands;
- :func:`deadline_violation_probability` — chance a migration misses an
  AoTM deadline under a stochastic (faded) channel;
- :class:`SigmoidImmersion` / :class:`LogImmersion` — immersion shapes
  with the same interface, so markets can swap experience models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.fading import FadingModel, NoFading
from repro.channel.link import RsuLink, paper_link
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "average_aoi",
    "peak_aoi",
    "deadline_violation_probability",
    "ImmersionModel",
    "LogImmersion",
    "SigmoidImmersion",
]


def average_aoi(update_period: float, migration_aotm: float) -> float:
    """Long-run average age of a twin updated every ``update_period``.

    Between migrations the sawtooth age averages ``period/2 + delay``;
    a migration of duration ``A`` (the AoTM) freezes updates, adding an
    age excursion. For one migration per update cycle the time-average age
    is ``period/2 + A + A²/(2·period)`` (area of the sawtooth plus the
    migration triangle); with ``A = 0`` this is the classic ``period/2``.
    """
    require_positive("update_period", update_period)
    require_non_negative("migration_aotm", migration_aotm)
    return (
        update_period / 2.0
        + migration_aotm
        + migration_aotm**2 / (2.0 * update_period)
    )


def peak_aoi(update_period: float, migration_aotm: float) -> float:
    """Peak age just before the first post-migration update lands:
    one full period of staleness plus the migration outage."""
    require_positive("update_period", update_period)
    require_non_negative("migration_aotm", migration_aotm)
    return update_period + migration_aotm


def deadline_violation_probability(
    data_units: float,
    bandwidth: float,
    deadline: float,
    *,
    link: RsuLink | None = None,
    fading: FadingModel | None = None,
    samples: int = 10_000,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo probability that a migration misses an AoTM ``deadline``.

    Draws fading realisations, recomputes the spectral efficiency per draw,
    and checks ``D / (b · SE) > deadline``. With :class:`NoFading` the
    result is exactly 0 or 1.
    """
    require_positive("data_units", data_units)
    require_positive("bandwidth", bandwidth)
    require_positive("deadline", deadline)
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    link = link if link is not None else paper_link()
    fading = fading if fading is not None else NoFading()
    rng = as_generator(seed)
    gains = fading.sample(rng, size=samples)
    snr = link.budget.snr * gains
    spectral_efficiency = np.log2(1.0 + snr)
    aotm_values = data_units / (bandwidth * spectral_efficiency)
    return float(np.mean(aotm_values > deadline))


class ImmersionModel:
    """Interface: monetised immersion as a function of AoTM."""

    def immersion(self, immersion_coef: float, aotm_value: float) -> float:
        """Immersion value at a given AoTM."""
        raise NotImplementedError

    def from_bandwidth(
        self,
        immersion_coef: float,
        data_units: float,
        bandwidth: float,
        spectral_efficiency: float,
    ) -> float:
        """Immersion as a function of purchased bandwidth."""
        require_non_negative("bandwidth", bandwidth)
        if bandwidth == 0.0:
            return 0.0
        aotm_value = data_units / (bandwidth * spectral_efficiency)
        return self.immersion(immersion_coef, aotm_value)


@dataclass(frozen=True)
class LogImmersion(ImmersionModel):
    """The paper's model: ``G = α ln(1 + 1/A)`` (strictly concave in b)."""

    def immersion(self, immersion_coef: float, aotm_value: float) -> float:
        require_positive("immersion_coef", immersion_coef)
        require_positive("aotm_value", aotm_value)
        return immersion_coef * math.log1p(1.0 / aotm_value)


@dataclass(frozen=True)
class SigmoidImmersion(ImmersionModel):
    """Threshold-like experience: near-binary quality around a target age.

    ``G = α / (1 + exp((A − midpoint)/steepness))`` — immersion collapses
    once AoTM exceeds the midpoint. Models hard-real-time applications
    (e.g. AR overlays) better than the log shape; note it is *not*
    concave in bandwidth everywhere, so the closed-form best response of
    Eq. (8) does not apply — use numeric best response instead.
    """

    midpoint: float = 0.5
    steepness: float = 0.1

    def __post_init__(self) -> None:
        require_positive("midpoint", self.midpoint)
        require_positive("steepness", self.steepness)

    def immersion(self, immersion_coef: float, aotm_value: float) -> float:
        require_positive("immersion_coef", immersion_coef)
        require_positive("aotm_value", aotm_value)
        return immersion_coef / (
            1.0 + math.exp((aotm_value - self.midpoint) / self.steepness)
        )
