"""Age of Twin Migration (AoTM) — the paper's freshness metric (Eq. 1).

AoTM is the time elapsed between the generation of the first VT block and
the last successfully received block of a migration:

    A_n = D_n / γ_n,     γ_n = b_n · log2(1 + SNR)

Smaller AoTM = fresher migration = higher VMU immersion. The analytic
formula below assumes one-shot transfer; the pre-copy simulator in
:mod:`repro.migration` measures AoTM from an actual block trace and is
lower-bounded by this value.
"""

from __future__ import annotations

import math

from repro import constants
from repro.channel.link import RsuLink, paper_link
from repro.utils.units import megabytes_to_data_units
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "aotm",
    "aotm_mb",
    "bandwidth_for_target_aotm",
    "freshness_gain",
]


def aotm(data_units: float, bandwidth: float, spectral_efficiency: float) -> float:
    """AoTM of a one-shot migration (Eq. 1), in natural time units.

    Args:
        data_units: VT size ``D_n`` in natural data units (100 MB each).
        bandwidth: purchased bandwidth ``b_n`` in natural units.
        spectral_efficiency: ``log2(1 + SNR)`` of the RSU-to-RSU link.

    Returns:
        ``D_n / (b_n · SE)``; ``inf`` when bandwidth is zero.
    """
    require_non_negative("data_units", data_units)
    require_non_negative("bandwidth", bandwidth)
    require_positive("spectral_efficiency", spectral_efficiency)
    if bandwidth == 0.0:
        return math.inf
    return data_units / (bandwidth * spectral_efficiency)


def aotm_mb(
    data_size_mb: float,
    bandwidth: float,
    *,
    link: RsuLink | None = None,
) -> float:
    """AoTM from a data size in megabytes over a concrete link.

    Converts MB to natural data units (DESIGN.md §3) and uses the link's
    spectral efficiency; defaults to the paper's link parameters.
    """
    link = link if link is not None else paper_link()
    units = megabytes_to_data_units(data_size_mb, constants.DATA_UNIT_MB)
    return aotm(units, bandwidth, link.spectral_efficiency)


def bandwidth_for_target_aotm(
    data_units: float, target_aotm: float, spectral_efficiency: float
) -> float:
    """Invert Eq. (1): bandwidth needed to finish migration within
    ``target_aotm``.

    Useful for deadline-style provisioning: ``b = D / (A_target · SE)``.
    """
    require_positive("data_units", data_units)
    require_positive("target_aotm", target_aotm)
    require_positive("spectral_efficiency", spectral_efficiency)
    return data_units / (target_aotm * spectral_efficiency)


def freshness_gain(aotm_value: float) -> float:
    """The freshness term ``ln(1 + 1/A)`` entering the immersion function.

    Monotone decreasing in AoTM; ``A -> 0`` gives unbounded freshness,
    ``A -> inf`` gives 0.
    """
    if math.isinf(aotm_value) and aotm_value > 0.0:
        return 0.0
    require_positive("aotm_value", aotm_value)
    return math.log(1.0 + 1.0 / aotm_value)
