"""Social-welfare analysis of the migration market.

The paper maximises the MSP's utility; this module asks the economist's
follow-up questions:

- what is the **social welfare** (MSP profit + Σ VMU utility) at a price?
- which price would a welfare-maximising planner post, and how much
  welfare does monopoly pricing burn (the *deadweight loss*)?
- how is the surplus split between the provider and the users?

With slack capacity the planner's optimum is marginal-cost pricing
(``p = C``): the leader's margin is a pure transfer, so welfare
``W(p) = Σ G_n(b_n(p)) − C Σ b_n(p)`` is maximised where each VMU's
marginal immersion equals the true resource cost (``b^W_n = α_n/C −
D_n/SE`` — Eq. (8) at ``p = C``). Note that with the paper's default
``B_max`` the capacity *binds* at cost (demand at ``p = C`` is ~4x the
cap), so the planner's price sits above ``C`` where it rations the scarce
spectrum; both regimes are exercised in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stackelberg import StackelbergMarket
from repro.game.solvers import grid_then_golden

__all__ = ["WelfareReport", "social_welfare", "welfare_report"]


def social_welfare(market: StackelbergMarket, price: float) -> float:
    """Total surplus at a posted ``price``: MSP profit + Σ VMU utility.

    Payments cancel between the two sides, so this equals
    ``Σ immersion − C · Σ bandwidth`` evaluated at the induced allocation.
    """
    outcome = market.round_outcome(price)
    return float(outcome.msp_utility + outcome.vmu_utilities.sum())


@dataclass(frozen=True)
class WelfareReport:
    """Welfare decomposition of a market."""

    monopoly_price: float
    monopoly_welfare: float
    monopoly_msp_share: float
    """Fraction of monopoly welfare captured by the MSP."""
    planner_price: float
    planner_welfare: float
    deadweight_loss: float
    """Welfare destroyed by monopoly pricing (planner − monopoly)."""

    @property
    def efficiency(self) -> float:
        """Monopoly welfare as a fraction of the planner's."""
        if self.planner_welfare == 0.0:
            return 1.0
        return self.monopoly_welfare / self.planner_welfare


def welfare_report(market: StackelbergMarket) -> WelfareReport:
    """Compare the monopoly equilibrium against the welfare planner.

    The planner can post any price in ``(0, p_max]`` (in particular,
    below the monopolist's floor ``C`` would sell at a loss, so the
    welfare optimum is at ``p = C`` whenever the capacity is slack; with a
    binding ``B_max`` the optimum can sit higher, which the numeric search
    handles).
    """
    equilibrium = market.equilibrium()
    monopoly_welfare = float(
        equilibrium.msp_utility + equilibrium.vmu_utilities.sum()
    )
    config = market.config

    def welfare(price: float) -> float:
        return social_welfare(market, price)

    planner_price, planner_welfare = grid_then_golden(
        welfare, config.unit_cost, config.max_price, grid_points=1024
    )
    msp_share = (
        equilibrium.msp_utility / monopoly_welfare
        if monopoly_welfare > 0.0
        else float("nan")
    )
    return WelfareReport(
        monopoly_price=equilibrium.price,
        monopoly_welfare=monopoly_welfare,
        monopoly_msp_share=float(msp_share),
        planner_price=planner_price,
        planner_welfare=planner_welfare,
        deadweight_loss=max(0.0, planner_welfare - monopoly_welfare),
    )
