"""Social-welfare analysis of the migration market.

The paper maximises the MSP's utility; this module asks the economist's
follow-up questions:

- what is the **social welfare** (MSP profit + Σ VMU utility) at a price?
- which price would a welfare-maximising planner post, and how much
  welfare does monopoly pricing burn (the *deadweight loss*)?
- how is the surplus split between the provider and the users?

With slack capacity the planner's optimum is marginal-cost pricing
(``p = C``): the leader's margin is a pure transfer, so welfare
``W(p) = Σ G_n(b_n(p)) − C Σ b_n(p)`` is maximised where each VMU's
marginal immersion equals the true resource cost (``b^W_n = α_n/C −
D_n/SE`` — Eq. (8) at ``p = C``). Note that with the paper's default
``B_max`` the capacity *binds* at cost (demand at ``p = C`` is ~4x the
cap), so the planner's price sits above ``C`` where it rations the scarce
spectrum; both regimes are exercised in the tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.stackelberg import StackelbergMarket
from repro.game.solvers import grid_then_golden, grid_then_golden_batch

__all__ = [
    "WelfareReport",
    "social_welfare",
    "social_welfare_batch",
    "welfare_report",
    "welfare_reports_stacked",
]


def social_welfare(market: StackelbergMarket, price: float) -> float:
    """Total surplus at a posted ``price``: MSP profit + Σ VMU utility.

    Payments cancel between the two sides, so this equals
    ``Σ immersion − C · Σ bandwidth`` evaluated at the induced allocation.
    """
    outcome = market.round_outcome(price)
    return float(outcome.msp_utility + outcome.vmu_utilities.sum())


def social_welfare_batch(
    market: StackelbergMarket, prices: np.ndarray
) -> np.ndarray:
    """Total surplus per entry of a price vector ``(P,)``, one batched solve.

    Row for row this is the identical arithmetic :func:`social_welfare`
    evaluates, so the planner search can hand it to
    :func:`repro.game.solvers.grid_then_golden` as the ``vector_objective``
    and scan its whole grid in a single market evaluation.
    """
    played = market.outcomes_batch(prices)
    return played.msp_utilities + played.vmu_utilities.sum(axis=-1)


@dataclass(frozen=True)
class WelfareReport:
    """Welfare decomposition of a market."""

    monopoly_price: float
    monopoly_welfare: float
    monopoly_msp_share: float
    """Fraction of monopoly welfare captured by the MSP."""
    planner_price: float
    planner_welfare: float
    deadweight_loss: float
    """Welfare destroyed by monopoly pricing (planner − monopoly)."""

    @property
    def efficiency(self) -> float:
        """Monopoly welfare as a fraction of the planner's."""
        if self.planner_welfare == 0.0:
            return 1.0
        return self.monopoly_welfare / self.planner_welfare


def welfare_report(market: StackelbergMarket) -> WelfareReport:
    """Compare the monopoly equilibrium against the welfare planner.

    The planner can post any price in ``(0, p_max]`` (in particular,
    below the monopolist's floor ``C`` would sell at a loss, so the
    welfare optimum is at ``p = C`` whenever the capacity is slack; with a
    binding ``B_max`` the optimum can sit higher, which the numeric search
    handles).
    """
    equilibrium = market.equilibrium()
    config = market.config

    def welfare(price: float) -> float:
        return social_welfare(market, price)

    planner_price, planner_welfare = grid_then_golden(
        welfare,
        config.unit_cost,
        config.max_price,
        grid_points=1024,
        vector_objective=lambda prices: social_welfare_batch(market, prices),
    )
    return _assemble_report(equilibrium, planner_price, planner_welfare)


def _assemble_report(
    equilibrium, planner_price: float, planner_welfare: float
) -> WelfareReport:
    """Fold one market's solved monopoly equilibrium and planner optimum
    into a report (shared by the scalar and stacked paths, so the two
    stay arithmetically identical)."""
    monopoly_welfare = float(
        equilibrium.msp_utility + equilibrium.vmu_utilities.sum()
    )
    msp_share = (
        equilibrium.msp_utility / monopoly_welfare
        if monopoly_welfare > 0.0
        else float("nan")
    )
    return WelfareReport(
        monopoly_price=equilibrium.price,
        monopoly_welfare=monopoly_welfare,
        monopoly_msp_share=float(msp_share),
        planner_price=float(planner_price),
        planner_welfare=float(planner_welfare),
        deadweight_loss=max(0.0, float(planner_welfare) - monopoly_welfare),
    )


def welfare_reports_stacked(
    markets: Sequence[StackelbergMarket],
) -> list[WelfareReport]:
    """Welfare-decompose a whole market grid in stacked passes.

    The market-axis form of :func:`welfare_report`: all ``M`` monopoly
    equilibria come from one
    :meth:`repro.core.marketstack.MarketStack.equilibria_stacked` call and
    all ``M`` planner searches run as one lockstep
    :func:`repro.game.solvers.grid_then_golden_batch` over the stacked
    welfare objective. Per market the report equals an independent
    :func:`welfare_report` call — the objective rows, the grid scan, and
    the golden-section iterations are elementwise replicas of the scalar
    path.
    """
    from repro.core.marketstack import MarketStack

    stack = MarketStack(markets)
    equilibria = stack.equilibria_stacked()

    def stacked_welfare(prices: np.ndarray) -> np.ndarray:
        outcome = stack.outcomes_stacked(prices)
        return outcome.msp_utilities + outcome.total_vmu_utilities()

    planner_prices, planner_welfares = grid_then_golden_batch(
        stacked_welfare,
        stack.unit_costs,
        stack.max_prices,
        grid_points=1024,
    )
    return [
        _assemble_report(
            equilibria.equilibrium(m), planner_prices[m], planner_welfares[m]
        )
        for m in range(stack.num_markets)
    ]
