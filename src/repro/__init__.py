"""repro — reproduction of "Learning-based Incentive Mechanism for Task
Freshness-aware Vehicular Twin Migration" (ICDCS 2023, arXiv:2309.04929).

Public API map:

- :mod:`repro.core` — AoTM metric, immersion, the Stackelberg market and
  its equilibrium (the paper's contribution);
- :mod:`repro.channel` / :mod:`repro.entities` / :mod:`repro.mobility` /
  :mod:`repro.migration` — the vehicular-metaverse substrates;
- :mod:`repro.nn` / :mod:`repro.drl` / :mod:`repro.env` — the from-scratch
  DRL stack (PPO over the pricing POMDP);
- :mod:`repro.baselines` — random/greedy/fixed/oracle pricing;
- :mod:`repro.sim` — the batched simulation engine (price-batch market
  evaluation, vector envs, batched policy evaluation);
- :mod:`repro.experiments` — per-figure reproduction runners.

Quickstart::

    from repro.core import StackelbergMarket
    from repro.entities import paper_fig2_population

    market = StackelbergMarket(paper_fig2_population())
    eq = market.equilibrium()
    print(eq.price, eq.msp_utility)
"""

from repro import constants
from repro.core.stackelberg import (
    MarketConfig,
    MarketOutcome,
    StackelbergEquilibrium,
    StackelbergMarket,
)
from repro.entities.vmu import (
    VmuProfile,
    paper_fig2_population,
    sample_population,
    uniform_population,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "constants",
    "MarketConfig",
    "MarketOutcome",
    "StackelbergEquilibrium",
    "StackelbergMarket",
    "VmuProfile",
    "paper_fig2_population",
    "sample_population",
    "uniform_population",
    "ReproError",
    "__version__",
]
