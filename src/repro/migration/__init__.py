"""VT live-migration substrate: pre-copy simulation, sessions, pipeline."""

from repro.migration.pipeline import PipelineResult, PipelineStep, run_migration_pipeline
from repro.migration.planner import (
    ProvisioningPlan,
    plan_bandwidth_for_aotm,
    plan_bandwidth_for_downtime,
)
from repro.migration.precopy import (
    CopyRound,
    MigrationTrace,
    PrecopyConfig,
    simulate_precopy,
    simulate_stop_and_copy,
)
from repro.migration.session import MigrationReport, MigrationSession

__all__ = [
    "ProvisioningPlan",
    "plan_bandwidth_for_aotm",
    "plan_bandwidth_for_downtime",
    "PipelineResult",
    "PipelineStep",
    "run_migration_pipeline",
    "CopyRound",
    "MigrationTrace",
    "PrecopyConfig",
    "simulate_precopy",
    "simulate_stop_and_copy",
    "MigrationReport",
    "MigrationSession",
]
