"""End-to-end pipeline: mobility events -> priced bandwidth -> migrations.

``run_migration_pipeline`` stitches every substrate together: handover
events from a mobility simulation become migration tasks; the incentive
mechanism prices bandwidth (any :class:`~repro.core.mechanism.PricingPolicy`);
each affected VMU best-responds; and the migration substrate executes the
transfer, yielding measured AoTM per event. This is the scenario the
paper's Fig. 1 narrates, and what ``examples/highway_migration.py`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mechanism import GameHistory, PricingPolicy, RoundRecord
from repro.core.stackelberg import StackelbergMarket
from repro.entities.registry import World
from repro.errors import MigrationError
from repro.migration.session import MigrationReport, MigrationSession
from repro.mobility.coverage import HandoverEvent

__all__ = ["PipelineStep", "PipelineResult", "run_migration_pipeline"]


@dataclass(frozen=True)
class PipelineStep:
    """One handover event serviced by the mechanism."""

    event: HandoverEvent
    price: float
    bandwidth: float
    report: MigrationReport | None
    """None when the VMU declined to buy (zero best response)."""


@dataclass
class PipelineResult:
    """All serviced events plus market aggregates."""

    steps: list[PipelineStep] = field(default_factory=list)
    history: GameHistory = field(default_factory=GameHistory)

    @property
    def completed(self) -> list[PipelineStep]:
        """Steps whose migration actually ran."""
        return [s for s in self.steps if s.report is not None]

    @property
    def mean_measured_aotm(self) -> float:
        """Average measured AoTM across completed migrations."""
        reports = [s.report for s in self.completed]
        if not reports:
            return float("nan")
        return float(np.mean([r.measured_aotm_s for r in reports]))

    @property
    def total_msp_profit(self) -> float:
        """Σ (p − C) · b over all serviced events."""
        return float(sum(r.msp_utility for r in self.history.records))


def run_migration_pipeline(
    world: World,
    market: StackelbergMarket,
    policy: PricingPolicy,
    events: list[HandoverEvent],
    *,
    session: MigrationSession | None = None,
    apply_to_world: bool = True,
) -> PipelineResult:
    """Service a stream of handover events with the incentive mechanism.

    For each migration event: the policy posts a price from public history,
    the affected VMU buys its best-response bandwidth, the migration runs
    over the RSU link, and (optionally) the world registry is updated so
    hosting invariants stay checkable.
    """
    session = session if session is not None else MigrationSession(market.link)
    vmu_index = {vmu.vmu_id: i for i, vmu in enumerate(market.vmus)}
    result = PipelineResult()
    config = market.config

    for round_index, event in enumerate(e for e in events if e.is_migration):
        if event.vehicle_id not in vmu_index:
            raise MigrationError(
                f"event for unknown VMU {event.vehicle_id!r}; the market "
                "population and the mobility scenario must use the same ids"
            )
        price = float(
            np.clip(
                policy.propose_price(result.history),
                config.unit_cost,
                config.max_price,
            )
        )
        allocations = market.allocate(price)
        bandwidth = float(allocations[vmu_index[event.vehicle_id]])
        report: MigrationReport | None = None
        if bandwidth > 0.0:
            twin = world.twin_of(event.vehicle_id)
            report = session.migrate(twin, bandwidth)
            if apply_to_world and twin.host_rsu_id != event.destination_rsu_id:
                world.migrate_twin(twin.vt_id, event.destination_rsu_id)
        result.steps.append(
            PipelineStep(
                event=event, price=price, bandwidth=bandwidth, report=report
            )
        )
        result.history.append(
            RoundRecord(
                round_index=round_index,
                price=price,
                demands=(bandwidth,),
                msp_utility=(price - config.unit_cost) * bandwidth,
            )
        )
    return result
