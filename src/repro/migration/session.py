"""Migration sessions: binding purchased bandwidth to an actual transfer.

A :class:`MigrationSession` is the integration point of the whole library:
it takes a handover event (mobility substrate), the VMU's purchased
bandwidth (incentive mechanism), converts it to a physical MB/s rate over
the RSU link (channel substrate), runs pre-copy (migration substrate), and
reports both the analytic AoTM of Eq. (1) and the measured AoTM from the
block trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.channel.link import RsuLink, paper_link
from repro.entities.vt import VehicularTwin
from repro.errors import MigrationError
from repro.migration.precopy import (
    MigrationTrace,
    PrecopyConfig,
    simulate_precopy,
    simulate_stop_and_copy,
)
from repro.utils.validation import require_positive

__all__ = ["MigrationReport", "MigrationSession"]


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one executed migration session."""

    vt_id: str
    bandwidth: float
    """Purchased bandwidth (natural game units)."""
    rate_mb_s: float
    """Physical transfer rate implied by the bandwidth."""
    analytic_aotm_s: float
    """The one-shot Eq. (1) AoTM (lower bound)."""
    measured_aotm_s: float
    """Elapsed first-to-last-block time from the pre-copy trace."""
    downtime_s: float
    trace: MigrationTrace

    @property
    def liveness_ratio(self) -> float:
        """Fraction of migration time during which the twin kept serving."""
        if self.measured_aotm_s == 0.0:
            return 1.0
        return 1.0 - self.downtime_s / self.measured_aotm_s


class MigrationSession:
    """Executes VT migrations over an RSU link at purchased bandwidths.

    The natural-units convention (DESIGN.md §3): a bandwidth ``b`` gives a
    data-unit rate of ``b · SE`` per natural time unit, i.e. a physical
    rate of ``b · SE · DATA_UNIT_MB`` MB per time unit. The session only
    needs consistency between the analytic and simulated paths, which a
    property test asserts (zero dirty rate ⇒ measured == analytic).
    """

    def __init__(
        self,
        link: RsuLink | None = None,
        *,
        precopy_config: PrecopyConfig | None = None,
    ) -> None:
        self._link = link if link is not None else paper_link()
        self._precopy_config = precopy_config

    @property
    def link(self) -> RsuLink:
        """The RSU-to-RSU link used for transfers."""
        return self._link

    def rate_mb_s(self, bandwidth: float) -> float:
        """Physical MB/s rate purchased by ``bandwidth`` natural units."""
        require_positive("bandwidth", bandwidth)
        return (
            self._link.transmission_rate(bandwidth) * constants.DATA_UNIT_MB
        )

    def migrate(
        self,
        twin: VehicularTwin,
        bandwidth: float,
        *,
        live: bool = True,
    ) -> MigrationReport:
        """Run one migration and report analytic vs measured AoTM.

        Args:
            twin: the VT to move (its ``dirty_rate_mb_s`` drives pre-copy).
            bandwidth: purchased bandwidth in natural game units.
            live: pre-copy when True, stop-and-copy when False.

        Raises:
            MigrationError: if the dirty rate reaches the transfer rate
                (pre-copy can never converge; the caller should buy more
                bandwidth or fall back to stop-and-copy).
        """
        rate = self.rate_mb_s(bandwidth)
        if live and twin.dirty_rate_mb_s >= rate:
            raise MigrationError(
                f"dirty rate {twin.dirty_rate_mb_s} MB/s >= transfer rate "
                f"{rate:.3f} MB/s: pre-copy cannot converge"
            )
        if live:
            trace = simulate_precopy(twin, rate, config=self._precopy_config)
        else:
            trace = simulate_stop_and_copy(twin, rate)
        # Eq. (1) on the simulator's physical clock: D_mb / rate_mb_s equals
        # D_units / (b · SE) up to the unit conversion, i.e. the paper's
        # AoTM in seconds (the identity with core.aotm.aotm is asserted in
        # tests/test_migration_session.py).
        analytic = twin.data_size_mb / rate
        return MigrationReport(
            vt_id=twin.vt_id,
            bandwidth=bandwidth,
            rate_mb_s=rate,
            analytic_aotm_s=analytic,
            measured_aotm_s=trace.total_time_s,
            downtime_s=trace.downtime_s,
            trace=trace,
        )
