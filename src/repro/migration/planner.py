"""Deadline-aware bandwidth provisioning for live migrations.

Inverts the pre-copy simulator: given a twin (size + dirty rate) and an
AoTM or downtime target, find the minimum bandwidth purchase that meets
it. Useful both as a library feature (SLA-driven provisioning) and as a
cross-check that the simulator is monotone in bandwidth (the planner
bisects on that property; a property test asserts it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.entities.vt import VehicularTwin
from repro.errors import MigrationError
from repro.migration.precopy import PrecopyConfig
from repro.migration.session import MigrationSession
from repro.utils.validation import require_positive

__all__ = ["ProvisioningPlan", "plan_bandwidth_for_aotm", "plan_bandwidth_for_downtime"]


@dataclass(frozen=True)
class ProvisioningPlan:
    """Result of a provisioning query."""

    bandwidth: float
    """Minimum bandwidth (natural units) meeting the target."""
    predicted_aotm_s: float
    predicted_downtime_s: float
    cost_at_price: float
    """Payment ``p · b`` at the price supplied to the planner."""


def _bisect_min_bandwidth(
    predicate,
    low: float,
    high: float,
    *,
    iterations: int = 80,
) -> float:
    """Smallest bandwidth in [low, high] satisfying a monotone predicate."""
    if not predicate(high):
        raise MigrationError(
            f"target unreachable even at bandwidth {high}: relax the "
            "deadline or raise the bandwidth ceiling"
        )
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if predicate(mid):
            high = mid
        else:
            low = mid
    return high


def plan_bandwidth_for_aotm(
    twin: VehicularTwin,
    target_aotm_s: float,
    *,
    session: MigrationSession | None = None,
    unit_price: float = 0.0,
    max_bandwidth: float = 10.0,
    precopy_config: PrecopyConfig | None = None,
) -> ProvisioningPlan:
    """Minimum bandwidth so the *measured* (pre-copy) AoTM meets a target.

    Unlike inverting Eq. (1) analytically, this accounts for the re-sent
    dirty memory, so the answer is >= the analytic
    :func:`repro.core.aotm.bandwidth_for_target_aotm` value, with equality
    at zero dirty rate.
    """
    require_positive("target_aotm_s", target_aotm_s)
    require_positive("max_bandwidth", max_bandwidth)
    session = session if session is not None else MigrationSession(
        precopy_config=precopy_config
    )

    def meets(bandwidth: float) -> bool:
        if twin.dirty_rate_mb_s >= session.rate_mb_s(bandwidth):
            return False  # pre-copy cannot converge at this bandwidth
        report = session.migrate(twin, bandwidth)
        return report.measured_aotm_s <= target_aotm_s

    bandwidth = _bisect_min_bandwidth(meets, 1e-9, max_bandwidth)
    report = session.migrate(twin, bandwidth)
    return ProvisioningPlan(
        bandwidth=bandwidth,
        predicted_aotm_s=report.measured_aotm_s,
        predicted_downtime_s=report.downtime_s,
        cost_at_price=unit_price * bandwidth,
    )


def plan_bandwidth_for_downtime(
    twin: VehicularTwin,
    target_downtime_s: float,
    *,
    session: MigrationSession | None = None,
    unit_price: float = 0.0,
    max_bandwidth: float = 10.0,
    precopy_config: PrecopyConfig | None = None,
) -> ProvisioningPlan:
    """Minimum bandwidth so the stop-and-copy *downtime* meets a target.

    Downtime is the user-visible freeze; AR-like applications care about
    it more than total AoTM.
    """
    require_positive("target_downtime_s", target_downtime_s)
    require_positive("max_bandwidth", max_bandwidth)
    session = session if session is not None else MigrationSession(
        precopy_config=precopy_config
    )

    def meets(bandwidth: float) -> bool:
        if twin.dirty_rate_mb_s >= session.rate_mb_s(bandwidth):
            return False
        report = session.migrate(twin, bandwidth)
        return report.downtime_s <= target_downtime_s

    bandwidth = _bisect_min_bandwidth(meets, 1e-9, max_bandwidth)
    report = session.migrate(twin, bandwidth)
    return ProvisioningPlan(
        bandwidth=bandwidth,
        predicted_aotm_s=report.measured_aotm_s,
        predicted_downtime_s=report.downtime_s,
        cost_at_price=unit_price * bandwidth,
    )
