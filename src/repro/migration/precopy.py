"""Pre-copy live migration simulator (the strategy cited by the paper [11]).

Pre-copy live migration transfers a running VT without stopping it:

1. *Iterative copy*: the full memory image is pushed while the twin keeps
   serving; pages dirtied during a round are re-sent in the next round.
2. *Convergence check*: rounds continue until the remaining dirty set is
   small enough for a short stop-and-copy, or a round cap is hit.
3. *Stop-and-copy*: the twin pauses, the final dirty set plus the
   real-time state is pushed, and the destination takes over.

The measured AoTM of a migration is the elapsed time from the first block
to the last — by construction it is lower-bounded by the paper's one-shot
Eq. (1) value (equality when the dirty rate is zero), which is verified by
a property test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.entities.vt import VehicularTwin
from repro.errors import MigrationError
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["PrecopyConfig", "CopyRound", "MigrationTrace", "simulate_precopy", "simulate_stop_and_copy"]


@dataclass(frozen=True)
class PrecopyConfig:
    """Tuning of the pre-copy loop.

    Attributes:
        max_rounds: cap on iterative copy rounds before forcing
            stop-and-copy.
        stop_threshold_mb: dirty-set size below which stop-and-copy starts.
        min_round_mb: treat dirty sets below this as zero (avoids
            infinitesimal rounds from float residue).
    """

    max_rounds: int = 8
    stop_threshold_mb: float = 8.0
    min_round_mb: float = 1e-6

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise MigrationError(f"max_rounds must be >= 1, got {self.max_rounds}")
        require_positive("stop_threshold_mb", self.stop_threshold_mb)
        require_non_negative("min_round_mb", self.min_round_mb)


@dataclass(frozen=True)
class CopyRound:
    """One iterative copy round of a pre-copy migration."""

    index: int
    sent_mb: float
    duration_s: float
    dirtied_mb: float
    """Memory dirtied while this round was transferring."""


@dataclass
class MigrationTrace:
    """Complete record of one migration."""

    vt_id: str
    rate_mb_s: float
    rounds: list[CopyRound] = field(default_factory=list)
    downtime_s: float = 0.0
    """Stop-and-copy duration (twin paused)."""
    stop_copy_mb: float = 0.0
    converged: bool = True
    """False when the round cap forced stop-and-copy."""

    @property
    def total_transferred_mb(self) -> float:
        """All bytes pushed, including re-sent dirty memory."""
        return sum(r.sent_mb for r in self.rounds) + self.stop_copy_mb

    @property
    def total_time_s(self) -> float:
        """Measured AoTM: first block to last block, inclusive of downtime."""
        return sum(r.duration_s for r in self.rounds) + self.downtime_s

    @property
    def overhead_ratio(self) -> float:
        """Transferred bytes relative to the one-shot payload size."""
        base = sum(r.sent_mb for r in self.rounds[:1]) + self.stop_copy_mb
        if base == 0.0:
            return 1.0
        return self.total_transferred_mb / base


def simulate_precopy(
    twin: VehicularTwin,
    rate_mb_s: float,
    *,
    config: PrecopyConfig | None = None,
) -> MigrationTrace:
    """Simulate a pre-copy live migration of ``twin`` at ``rate_mb_s``.

    The dirty-rate model is fluid: while a round of size ``S`` transfers
    (taking ``S/rate``), the twin dirties ``dirty_rate · S/rate`` MB, which
    becomes the next round's payload. The loop converges iff
    ``dirty_rate < rate``; otherwise the round cap forces stop-and-copy
    (recorded via ``converged=False``).

    Raises:
        MigrationError: if the transfer rate is not positive.
    """
    require_positive("rate_mb_s", rate_mb_s)
    config = config if config is not None else PrecopyConfig()
    dirty_rate = twin.dirty_rate_mb_s
    trace = MigrationTrace(vt_id=twin.vt_id, rate_mb_s=rate_mb_s)

    # Round 0 pushes config + the full memory image.
    payload = twin.payload.config_mb + twin.payload.memory_mb
    for index in range(config.max_rounds):
        if payload <= config.min_round_mb:
            payload = 0.0
            break
        duration = payload / rate_mb_s
        dirtied = dirty_rate * duration
        trace.rounds.append(
            CopyRound(
                index=index,
                sent_mb=payload,
                duration_s=duration,
                dirtied_mb=dirtied,
            )
        )
        payload = dirtied
        if payload <= config.stop_threshold_mb:
            break
    else:
        trace.converged = False

    # Stop-and-copy: remaining dirty memory + real-time state.
    trace.stop_copy_mb = payload + twin.payload.realtime_mb
    trace.downtime_s = trace.stop_copy_mb / rate_mb_s
    return trace


def simulate_stop_and_copy(twin: VehicularTwin, rate_mb_s: float) -> MigrationTrace:
    """Baseline non-live migration: pause, push everything, resume.

    The whole payload is downtime; AoTM equals Eq. (1) exactly.
    """
    require_positive("rate_mb_s", rate_mb_s)
    trace = MigrationTrace(vt_id=twin.vt_id, rate_mb_s=rate_mb_s)
    trace.stop_copy_mb = twin.payload.total_mb
    trace.downtime_s = trace.stop_copy_mb / rate_mb_s
    return trace
