"""Path-loss models for the RSU-to-RSU backhaul link.

The paper uses a log-distance model implicitly through the SNR expression
``ρ h0 d^-ε / N0``. We expose that model explicitly plus a free-space
reference model so the channel substrate is reusable beyond the single
point evaluated in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = ["PathLossModel", "LogDistancePathLoss", "FreeSpacePathLoss"]


class PathLossModel:
    """Interface: linear channel power gain as a function of distance."""

    def gain(self, distance_m: float) -> float:
        """Linear power gain (<= reference gain) at ``distance_m`` metres."""
        raise NotImplementedError

    def gain_db(self, distance_m: float) -> float:
        """Power gain in dB at ``distance_m`` metres."""
        return 10.0 * math.log10(self.gain(distance_m))


@dataclass(frozen=True)
class LogDistancePathLoss(PathLossModel):
    """``gain(d) = h0 · d^-ε`` — the paper's channel model.

    Attributes:
        reference_gain: unit channel power gain ``h0`` (linear, not dB).
        exponent: path-loss coefficient ``ε``.
    """

    reference_gain: float
    exponent: float

    def __post_init__(self) -> None:
        require_positive("reference_gain", self.reference_gain)
        require_positive("exponent", self.exponent)

    def gain(self, distance_m: float) -> float:
        require_positive("distance_m", distance_m)
        return self.reference_gain * distance_m ** (-self.exponent)


@dataclass(frozen=True)
class FreeSpacePathLoss(PathLossModel):
    """Friis free-space path loss at a given carrier frequency.

    ``gain(d) = (c / (4 π f d))^2``. Provided as a physically grounded
    alternative for sensitivity studies; the paper's experiments use
    :class:`LogDistancePathLoss`.
    """

    frequency_hz: float

    _SPEED_OF_LIGHT = 299_792_458.0

    def __post_init__(self) -> None:
        require_positive("frequency_hz", self.frequency_hz)

    def gain(self, distance_m: float) -> float:
        require_positive("distance_m", distance_m)
        wavelength = self._SPEED_OF_LIGHT / self.frequency_hz
        return (wavelength / (4.0 * math.pi * distance_m)) ** 2
