"""Small-scale fading and shadowing models.

The paper's game uses a deterministic channel (fixed ``h0``); these models
extend the substrate for the stochastic-channel experiments in
``benchmarks/test_bench_substrates.py`` and for failure-injection tests.
All models produce multiplicative *linear power* gains with unit mean, so a
faded link fluctuates around the deterministic one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["FadingModel", "NoFading", "RayleighFading", "RicianFading", "LogNormalShadowing"]


class FadingModel:
    """Interface: draw multiplicative linear power gains with unit mean."""

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` i.i.d. power-gain samples (mean 1)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoFading(FadingModel):
    """Deterministic channel: always gain 1 (the paper's setting)."""

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return np.ones(size)


@dataclass(frozen=True)
class RayleighFading(FadingModel):
    """Rayleigh fading: power gain ~ Exp(1) (unit mean)."""

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.exponential(scale=1.0, size=size)


@dataclass(frozen=True)
class RicianFading(FadingModel):
    """Rician fading with K-factor ``k`` (ratio of LOS to scattered power).

    Power gain is |X|^2 with X complex Gaussian around a LOS component,
    normalised to unit mean. ``k = 0`` reduces to Rayleigh.
    """

    k_factor: float

    def __post_init__(self) -> None:
        require_non_negative("k_factor", self.k_factor)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        k = self.k_factor
        los = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        real = rng.normal(loc=los, scale=sigma, size=size)
        imag = rng.normal(loc=0.0, scale=sigma, size=size)
        return real**2 + imag**2


@dataclass(frozen=True)
class LogNormalShadowing(FadingModel):
    """Log-normal shadowing with standard deviation ``sigma_db`` (dB).

    Normalised so the *linear* mean is 1 (the median is below 1).
    """

    sigma_db: float

    def __post_init__(self) -> None:
        require_positive("sigma_db", self.sigma_db)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        sigma_ln = self.sigma_db * math.log(10.0) / 10.0
        # E[exp(N(mu, s^2))] = exp(mu + s^2/2) == 1  =>  mu = -s^2/2.
        mu = -0.5 * sigma_ln**2
        return rng.lognormal(mean=mu, sigma=sigma_ln, size=size)


def sample_gain(model: FadingModel, seed: SeedLike = None, size: int = 1) -> np.ndarray:
    """Convenience wrapper: sample from ``model`` with a seed-like value."""
    return model.sample(as_generator(seed), size=size)
