"""OFDMA subchannel pool with orthogonal allocation.

The paper assumes OFDMA so that the channels occupied by source and
destination RSUs are orthogonal. This module models the MSP's managed
spectrum as a pool of equal-width subcarriers and enforces orthogonality:
a subcarrier belongs to at most one VMU's migration flow at a time.

The Stackelberg game abstracts bandwidth as a continuous quantity; this
substrate shows how continuous demands map onto a discrete subcarrier grid
(floor quantisation) and supports proportional rationing when total demand
exceeds the pool — the same rationing rule the environment applies when
``Σ b_n > B_max``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend import xp

from repro.errors import AllocationError
from repro.utils.validation import require_positive, require_positive_int

__all__ = [
    "Subchannel",
    "OfdmaPool",
    "proportional_rationing",
    "proportional_rationing_stacked",
]


@dataclass(frozen=True)
class Subchannel:
    """One orthogonal OFDMA subcarrier.

    Attributes:
        index: position in the pool's grid.
        width: bandwidth of the subcarrier (natural bandwidth units).
    """

    index: int
    width: float


class OfdmaPool:
    """A fixed grid of orthogonal subcarriers managed by the MSP.

    Args:
        total_bandwidth: total pool width (natural bandwidth units).
        num_subchannels: number of equal-width subcarriers in the grid.
    """

    def __init__(self, total_bandwidth: float, num_subchannels: int) -> None:
        require_positive("total_bandwidth", total_bandwidth)
        require_positive_int("num_subchannels", num_subchannels)
        self._width = total_bandwidth / num_subchannels
        self._total = float(total_bandwidth)
        self._free: list[int] = list(range(num_subchannels))
        self._owners: dict[int, str] = {}

    @property
    def subchannel_width(self) -> float:
        """Width of one subcarrier."""
        return self._width

    @property
    def total_bandwidth(self) -> float:
        """Total pool bandwidth."""
        return self._total

    @property
    def free_bandwidth(self) -> float:
        """Bandwidth not currently allocated."""
        return self._width * len(self._free)

    def allocation_of(self, owner: str) -> list[Subchannel]:
        """Subcarriers currently held by ``owner``."""
        return [
            Subchannel(index=i, width=self._width)
            for i, o in sorted(self._owners.items())
            if o == owner
        ]

    def allocated_bandwidth(self, owner: str) -> float:
        """Total bandwidth currently held by ``owner``."""
        return self._width * sum(1 for o in self._owners.values() if o == owner)

    def allocate(self, owner: str, bandwidth: float) -> list[Subchannel]:
        """Grant ``owner`` at least ``bandwidth`` worth of subcarriers.

        Grants ``ceil(bandwidth / width)`` subcarriers so the owner's rate is
        never below the continuous-game rate it paid for.

        Raises:
            AllocationError: if the pool cannot satisfy the request.
        """
        require_positive("bandwidth", bandwidth)
        needed = -(-bandwidth // self._width)  # ceil division
        needed = int(needed)
        if needed > len(self._free):
            raise AllocationError(
                f"requested {bandwidth} ({needed} subcarriers) but only "
                f"{self.free_bandwidth} ({len(self._free)} subcarriers) free"
            )
        granted = [self._free.pop(0) for _ in range(needed)]
        for idx in granted:
            self._owners[idx] = owner
        return [Subchannel(index=i, width=self._width) for i in granted]

    def release(self, owner: str) -> float:
        """Release every subcarrier held by ``owner``; returns freed width."""
        held = [i for i, o in self._owners.items() if o == owner]
        for idx in held:
            del self._owners[idx]
        self._free.extend(held)
        self._free.sort()
        return self._width * len(held)

    def is_orthogonal(self) -> bool:
        """Invariant check: no subcarrier has two owners and the free list
        never overlaps the owned set."""
        owned = set(self._owners)
        free = set(self._free)
        return not (owned & free) and len(self._free) == len(free)


def proportional_rationing(
    demands: list[float] | xp.ndarray, capacity: float
) -> list[float] | xp.ndarray:
    """Scale ``demands`` down proportionally so their sum fits ``capacity``.

    This is the rule the environment applies when total VMU demand exceeds
    ``B_max``: every VMU receives the same fraction of its request, which
    keeps the allocation envy-free for identical per-unit prices. Demands
    within capacity are returned unchanged.

    Accepts either a plain list (returns a list — the historical API), a
    1-D array of per-VMU demands (returns an array), or a batched array of
    shape ``(P, N)`` — one demand row per posted price — where each row is
    rationed independently against the same ``capacity`` in a single numpy
    pass. The batched form is what the vectorised leader landscape and the
    vector environment drive on every grid scan.
    """
    require_positive("capacity", capacity)
    array_in = isinstance(demands, xp.ndarray)
    rows = xp.asarray(demands, dtype=float)
    if rows.ndim not in (1, 2):
        raise AllocationError(
            f"demands must be 1-D (N,) or batched (P, N), got shape {rows.shape}"
        )
    if xp.any(rows < 0.0):
        raise AllocationError(f"demands must be >= 0, got {demands!r}")
    totals = rows.sum(axis=-1)
    # xp.where evaluates both branches, so guard the division against the
    # rows it will discard (zero or subnormal totals divide to inf/nan).
    with xp.errstate(divide="ignore", invalid="ignore", over="ignore"):
        scales = xp.where(totals > capacity, capacity / totals, 1.0)
    granted = rows * (scales if rows.ndim == 1 else scales[:, xp.newaxis])
    if array_in:
        return granted
    return [float(g) for g in granted]


def proportional_rationing_stacked(
    demands: xp.ndarray,
    capacities: xp.ndarray,
    *,
    totals: xp.ndarray | None = None,
) -> xp.ndarray:
    """Proportional rationing across a stack of markets with *different*
    capacities.

    Args:
        demands: per-market demand rows, shape ``(M, N)`` or ``(M, R, N)``
            (one ``B_max`` per leading market index, each row rationed
            independently).
        capacities: per-market capacity ``B_max``, shape ``(M,)``.
        totals: optional precomputed row totals (``demands`` summed over the
            trailing ``N`` axis). Ragged stacks pass these in so each
            market's total is reduced over its *own* population — summing a
            zero-padded row can associate differently and drift a ulp from
            the per-market path.

    Returns:
        Granted bandwidth with ``demands``' shape. Rows within capacity come
        back scaled by exactly 1.0 (bitwise identical to the input), so a
        stacked call agrees bitwise with ``M`` separate
        :func:`proportional_rationing` calls.
    """
    rows = xp.asarray(demands, dtype=float)
    caps = xp.asarray(capacities, dtype=float)
    if rows.ndim not in (2, 3):
        raise AllocationError(
            f"stacked demands must be (M, N) or (M, R, N), got {rows.shape}"
        )
    if caps.shape != (rows.shape[0],):
        raise AllocationError(
            f"capacities must have shape (M,), got {caps.shape}"
        )
    if xp.any(caps <= 0.0):
        raise AllocationError(f"capacities must be > 0, got {capacities!r}")
    if xp.any(rows < 0.0):
        raise AllocationError("demands must be >= 0")
    if totals is None:
        totals = rows.sum(axis=-1)
    totals = xp.asarray(totals, dtype=float)
    if totals.shape != rows.shape[:-1]:
        raise AllocationError(
            f"totals must have shape {rows.shape[:-1]}, got {totals.shape}"
        )
    return _rationing_rows(rows, caps, totals)


def _rationing_rows(
    rows: xp.ndarray, caps: xp.ndarray, totals: xp.ndarray
) -> xp.ndarray:
    """Trusted-input kernel of :func:`proportional_rationing_stacked`.

    Callers guarantee validated float arrays (``rows`` ``(M, N)`` or
    ``(M, R, N)``, ``caps`` ``(M,)``, ``totals`` matching ``rows`` minus
    the trailing axis); :class:`repro.core.marketstack.MarketStack`
    validates once at construction and drives this every environment
    round. Same expressions as the public function, bitwise-identical.
    """
    caps_rows = caps if totals.ndim == 1 else caps[:, xp.newaxis]
    # xp.where evaluates both branches; guard the division like the
    # single-market path does.
    with xp.errstate(divide="ignore", invalid="ignore", over="ignore"):
        scales = xp.where(totals > caps_rows, caps_rows / totals, 1.0)
    return rows * scales[..., xp.newaxis]
