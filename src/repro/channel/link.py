"""The RSU-to-RSU migration link: SNR, spectral efficiency, and rate.

This is the radio model behind Eq. (1) of the paper:

    γ_n = b_n · log2(1 + ρ h0 d^-ε / N0)

with ρ the source-RSU transmit power, h0 the unit channel gain, d the
RSU-to-RSU distance, ε the path-loss exponent, and N0 the noise power.
With the paper's defaults the spectral efficiency is ≈ 38.54 bit/s/Hz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import constants
from repro.channel.pathloss import LogDistancePathLoss, PathLossModel
from repro.utils.units import db_to_linear, dbm_to_watts
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["LinkBudget", "RsuLink", "paper_link"]


@dataclass(frozen=True)
class LinkBudget:
    """The physical-layer parameters of a point-to-point link.

    Attributes:
        transmit_power_w: transmit power ρ in watts (linear).
        noise_power_w: average noise power N0 in watts (linear).
        path_loss: model mapping distance to linear channel gain.
        distance_m: transmitter-receiver distance in metres.
        fading_gain: optional extra multiplicative linear power gain
            (e.g. a draw from :mod:`repro.channel.fading`); 1.0 = none.
    """

    transmit_power_w: float
    noise_power_w: float
    path_loss: PathLossModel
    distance_m: float
    fading_gain: float = 1.0

    def __post_init__(self) -> None:
        require_positive("transmit_power_w", self.transmit_power_w)
        require_positive("noise_power_w", self.noise_power_w)
        require_positive("distance_m", self.distance_m)
        require_positive("fading_gain", self.fading_gain)

    @property
    def received_power_w(self) -> float:
        """Received signal power in watts."""
        return (
            self.transmit_power_w
            * self.path_loss.gain(self.distance_m)
            * self.fading_gain
        )

    @property
    def snr(self) -> float:
        """Linear signal-to-noise ratio at the receiver."""
        return self.received_power_w / self.noise_power_w

    @property
    def snr_db(self) -> float:
        """SNR in decibels."""
        return 10.0 * math.log10(self.snr)

    @property
    def spectral_efficiency(self) -> float:
        """Shannon spectral efficiency ``log2(1 + SNR)`` in bit/s/Hz."""
        return math.log2(1.0 + self.snr)


@dataclass(frozen=True)
class RsuLink:
    """A source-RSU → destination-RSU migration link.

    Wraps a :class:`LinkBudget` and exposes the rate/AoTM primitives the
    game consumes. Bandwidth and data size are in the *natural* game units
    (see DESIGN.md §3); physically, rate(b) = b · log2(1 + SNR).
    """

    budget: LinkBudget

    @property
    def spectral_efficiency(self) -> float:
        """``log2(1 + SNR)`` — the factor multiplying bandwidth in Eq. (1)."""
        return self.budget.spectral_efficiency

    def transmission_rate(self, bandwidth: float) -> float:
        """Achievable task transmission rate ``γ = b · log2(1 + SNR)``."""
        require_non_negative("bandwidth", bandwidth)
        return bandwidth * self.spectral_efficiency

    def transfer_time(self, data_size: float, bandwidth: float) -> float:
        """Time to push ``data_size`` through the link at ``bandwidth``.

        This is exactly the AoTM of a one-shot migration (Eq. 1). Returns
        ``inf`` for zero bandwidth rather than raising, mirroring the
        game's convention that no purchase means no (finite) migration.
        """
        require_non_negative("data_size", data_size)
        rate = self.transmission_rate(bandwidth)
        if rate == 0.0:
            return math.inf
        return data_size / rate

    def with_distance(self, distance_m: float) -> "RsuLink":
        """A copy of this link at a different RSU separation."""
        new_budget = LinkBudget(
            transmit_power_w=self.budget.transmit_power_w,
            noise_power_w=self.budget.noise_power_w,
            path_loss=self.budget.path_loss,
            distance_m=distance_m,
            fading_gain=self.budget.fading_gain,
        )
        return RsuLink(new_budget)

    def with_fading_gain(self, fading_gain: float) -> "RsuLink":
        """A copy of this link with a different fading realisation."""
        new_budget = LinkBudget(
            transmit_power_w=self.budget.transmit_power_w,
            noise_power_w=self.budget.noise_power_w,
            path_loss=self.budget.path_loss,
            distance_m=self.budget.distance_m,
            fading_gain=fading_gain,
        )
        return RsuLink(new_budget)


def paper_link(
    *,
    transmit_power_dbm: float = constants.TRANSMIT_POWER_DBM,
    channel_gain_db: float = constants.CHANNEL_GAIN_DB,
    distance_m: float = constants.RSU_DISTANCE_M,
    path_loss_exponent: float = constants.PATH_LOSS_EXPONENT,
    noise_power_dbm: float = constants.NOISE_POWER_DBM,
) -> RsuLink:
    """Build the RSU link with the paper's Sec. V-A radio parameters.

    >>> round(paper_link().spectral_efficiency, 2)
    38.54
    """
    budget = LinkBudget(
        transmit_power_w=dbm_to_watts(transmit_power_dbm),
        noise_power_w=dbm_to_watts(noise_power_dbm),
        path_loss=LogDistancePathLoss(
            reference_gain=db_to_linear(channel_gain_db),
            exponent=path_loss_exponent,
        ),
        distance_m=distance_m,
    )
    return RsuLink(budget)
