"""Wireless channel substrate: path loss, fading, link budget, OFDMA."""

from repro.channel.fading import (
    FadingModel,
    LogNormalShadowing,
    NoFading,
    RayleighFading,
    RicianFading,
)
from repro.channel.link import LinkBudget, RsuLink, paper_link
from repro.channel.ofdma import OfdmaPool, Subchannel, proportional_rationing
from repro.channel.pathloss import FreeSpacePathLoss, LogDistancePathLoss, PathLossModel

__all__ = [
    "FadingModel",
    "NoFading",
    "RayleighFading",
    "RicianFading",
    "LogNormalShadowing",
    "LinkBudget",
    "RsuLink",
    "paper_link",
    "OfdmaPool",
    "Subchannel",
    "proportional_rationing",
    "PathLossModel",
    "LogDistancePathLoss",
    "FreeSpacePathLoss",
]
