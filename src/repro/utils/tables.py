"""ASCII table rendering for experiment and benchmark reports.

The benchmark harness prints the same rows/series the paper's figures show;
this module renders them as aligned monospace tables so the output of
``pytest benchmarks/ --benchmark-only`` is directly comparable to the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ExperimentError

__all__ = ["format_table", "Table"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are rounded to ``precision`` decimals; all other values use
    ``str``. Raises :class:`ExperimentError` on ragged rows so malformed
    results fail loudly instead of printing misaligned columns.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append([_format_cell(cell, precision) for cell in row])

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


@dataclass
class Table:
    """An accumulating result table with named columns.

    Used by the experiment harness: runners ``add_row`` as the sweep
    progresses, then the bench prints ``str(table)`` and tests index columns
    with :meth:`column`.
    """

    headers: Sequence[str]
    title: str | None = None
    precision: int = 3
    rows: list[tuple] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row; must match the header arity."""
        if len(cells) != len(self.headers):
            raise ExperimentError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(tuple(cells))

    def column(self, name: str) -> list:
        """Return all values of the named column, in insertion order."""
        try:
            idx = list(self.headers).index(name)
        except ValueError as exc:
            raise ExperimentError(
                f"unknown column {name!r}; have {list(self.headers)!r}"
            ) from exc
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return format_table(
            self.headers, self.rows, precision=self.precision, title=self.title
        )
