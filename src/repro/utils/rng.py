"""Deterministic random-number management.

Every stochastic component in the library (mobility, fading, DRL, baselines)
takes either a seed or a :class:`numpy.random.Generator`. This module is the
single place that turns "seed or generator or None" into a generator, and it
provides named child streams so two subsystems seeded from one root do not
consume each other's randomness (a classic reproducibility bug in
simulations).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = ["as_generator", "spawn_children", "SeedSequenceRegistry"]

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce a seed-like value into a :class:`numpy.random.Generator`.

    - ``None`` -> fresh nondeterministic generator;
    - ``int`` / ``SeedSequence`` -> seeded PCG64 generator;
    - ``Generator`` -> returned unchanged (shared stream by design).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so they are reproducible given the root seed and independent of how many
    draws each sibling performs.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own stream so that the
        # children are reproducible relative to the generator state.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class SeedSequenceRegistry:
    """Named, reproducible random streams derived from one root seed.

    Example:
        >>> reg = SeedSequenceRegistry(42)
        >>> mobility_rng = reg.stream("mobility")
        >>> drl_rng = reg.stream("drl")

    Requesting the same name twice returns the *same* generator object, so a
    subsystem can be re-wired without re-seeding. Streams for distinct names
    are independent, and the mapping name->stream does not depend on the
    order in which streams are first requested.
    """

    def __init__(self, root_seed: int | None = None) -> None:
        self._root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int | None:
        """The root seed this registry was constructed with."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        if name not in self._streams:
            entropy = [self._root_seed] if self._root_seed is not None else None
            seq = np.random.SeedSequence(
                entropy=entropy,
                spawn_key=(_stable_hash(name),),
            )
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def names(self) -> Iterable[str]:
        """Names of all streams created so far."""
        return tuple(self._streams)

    def __repr__(self) -> str:
        return (
            f"SeedSequenceRegistry(root_seed={self._root_seed!r}, "
            f"streams={sorted(self._streams)!r})"
        )


def _stable_hash(name: str) -> int:
    """A process-independent 63-bit hash of a string (builtin ``hash`` is
    randomised per process, which would break reproducibility)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value *= 1099511628211
        value &= (1 << 63) - 1
    return value
