"""Shared utilities: units, validation, RNG streams, tables, serialization."""

from repro.utils.rng import SeedSequenceRegistry, as_generator, spawn_children
from repro.utils.stats import SummaryStats, bootstrap_ci, compare_means, summarize
from repro.utils.tables import Table, format_table
from repro.utils.units import (
    db_to_linear,
    dbm_to_milliwatts,
    dbm_to_watts,
    data_units_to_megabytes,
    hz_to_mhz,
    linear_to_db,
    megabits_to_megabytes,
    megabytes_to_data_units,
    megabytes_to_megabits,
    mhz_to_hz,
    milliwatts_to_dbm,
    watts_to_dbm,
)
from repro.utils.validation import (
    require_finite,
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_positive_int,
    require_probability,
    require_same_length,
)

__all__ = [
    "SummaryStats",
    "bootstrap_ci",
    "compare_means",
    "summarize",
    "SeedSequenceRegistry",
    "as_generator",
    "spawn_children",
    "Table",
    "format_table",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_milliwatts",
    "milliwatts_to_dbm",
    "megabytes_to_megabits",
    "megabits_to_megabytes",
    "megabytes_to_data_units",
    "data_units_to_megabytes",
    "mhz_to_hz",
    "hz_to_mhz",
    "require_finite",
    "require_in_range",
    "require_non_empty",
    "require_non_negative",
    "require_positive",
    "require_positive_int",
    "require_probability",
    "require_same_length",
]
