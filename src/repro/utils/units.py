"""Unit conversions used across the radio and migration substrates.

The paper mixes logarithmic radio units (dB, dBm) with linear ones (watts)
and data units (MB vs Mbit). Centralising the conversions here keeps every
formula in the rest of the library in linear SI-ish units and makes the
calibration in DESIGN.md §3 auditable.
"""

from __future__ import annotations

import math

from repro.errors import UnitError

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "dbm_to_milliwatts",
    "milliwatts_to_dbm",
    "megabytes_to_megabits",
    "megabits_to_megabytes",
    "megabytes_to_data_units",
    "data_units_to_megabytes",
    "mhz_to_hz",
    "hz_to_mhz",
]

_BITS_PER_BYTE = 8.0


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio from decibels to a linear ratio.

    >>> db_to_linear(0.0)
    1.0
    >>> db_to_linear(-20.0)
    0.01
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        UnitError: if ``ratio`` is not strictly positive (log undefined).
    """
    if ratio <= 0.0:
        raise UnitError(f"linear power ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_milliwatts(value_dbm: float) -> float:
    """Convert a power from dBm to milliwatts."""
    return 10.0 ** (value_dbm / 10.0)


def milliwatts_to_dbm(value_mw: float) -> float:
    """Convert a power from milliwatts to dBm.

    Raises:
        UnitError: if ``value_mw`` is not strictly positive.
    """
    if value_mw <= 0.0:
        raise UnitError(f"power must be > 0 mW, got {value_mw!r}")
    return 10.0 * math.log10(value_mw)


def dbm_to_watts(value_dbm: float) -> float:
    """Convert a power from dBm to watts.

    >>> dbm_to_watts(40.0)
    10.0
    """
    return dbm_to_milliwatts(value_dbm) / 1e3


def watts_to_dbm(value_w: float) -> float:
    """Convert a power from watts to dBm."""
    if value_w <= 0.0:
        raise UnitError(f"power must be > 0 W, got {value_w!r}")
    return milliwatts_to_dbm(value_w * 1e3)


def megabytes_to_megabits(size_mb: float) -> float:
    """Convert a data size from megabytes to megabits."""
    if size_mb < 0.0:
        raise UnitError(f"data size must be >= 0 MB, got {size_mb!r}")
    return size_mb * _BITS_PER_BYTE


def megabits_to_megabytes(size_mbit: float) -> float:
    """Convert a data size from megabits to megabytes."""
    if size_mbit < 0.0:
        raise UnitError(f"data size must be >= 0 Mbit, got {size_mbit!r}")
    return size_mbit / _BITS_PER_BYTE


def megabytes_to_data_units(size_mb: float, unit_mb: float = 100.0) -> float:
    """Convert megabytes to the game's natural data units (default 100 MB).

    The Stackelberg formulas consume ``D_n`` in units of ``unit_mb``
    megabytes; see DESIGN.md §3 for why the paper's numbers imply 100 MB.
    """
    if unit_mb <= 0.0:
        raise UnitError(f"data unit must be > 0 MB, got {unit_mb!r}")
    if size_mb < 0.0:
        raise UnitError(f"data size must be >= 0 MB, got {size_mb!r}")
    return size_mb / unit_mb


def data_units_to_megabytes(units: float, unit_mb: float = 100.0) -> float:
    """Inverse of :func:`megabytes_to_data_units`."""
    if unit_mb <= 0.0:
        raise UnitError(f"data unit must be > 0 MB, got {unit_mb!r}")
    if units < 0.0:
        raise UnitError(f"data units must be >= 0, got {units!r}")
    return units * unit_mb


def mhz_to_hz(value_mhz: float) -> float:
    """Convert a bandwidth from MHz to Hz."""
    if value_mhz < 0.0:
        raise UnitError(f"bandwidth must be >= 0 MHz, got {value_mhz!r}")
    return value_mhz * 1e6


def hz_to_mhz(value_hz: float) -> float:
    """Convert a bandwidth from Hz to MHz."""
    if value_hz < 0.0:
        raise UnitError(f"bandwidth must be >= 0 Hz, got {value_hz!r}")
    return value_hz / 1e6
