"""Result persistence: JSON and CSV writers for experiment outputs.

Experiments write their measured series to disk so EXPERIMENTS.md numbers can
be regenerated and diffed. Numpy scalars/arrays are converted to plain Python
types on the way out, so the files are readable without numpy.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.errors import ExperimentError

__all__ = ["to_jsonable", "save_json", "load_json", "save_csv", "load_csv"]


def to_jsonable(value: object) -> object:
    """Recursively convert numpy scalars/arrays and tuples to JSON-able types."""
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Path):
        return str(value)
    raise ExperimentError(f"cannot serialise value of type {type(value).__name__}")


def save_json(path: str | Path, payload: object, *, indent: int = 2) -> Path:
    """Write ``payload`` to ``path`` as JSON, creating parent directories."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_jsonable(payload), indent=indent) + "\n")
    return target


def load_json(path: str | Path) -> object:
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text())


def save_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to ``path`` as CSV with a header line."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            if len(row) != len(headers):
                raise ExperimentError(
                    f"row {row!r} has {len(row)} cells, expected {len(headers)}"
                )
            writer.writerow([to_jsonable(cell) for cell in row])
    return target


def load_csv(path: str | Path) -> tuple[list[str], list[list[str]]]:
    """Read a CSV written by :func:`save_csv`; returns (headers, rows)."""
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            headers = next(reader)
        except StopIteration as exc:
            raise ExperimentError(f"empty CSV file: {path}") from exc
        return headers, [row for row in reader]
