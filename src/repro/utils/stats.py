"""Statistics helpers for multi-seed experiment reporting.

Published-quality results need uncertainty: these helpers aggregate
metric values across seeds into mean ± confidence interval, and provide a
seeded bootstrap for non-Gaussian metrics (e.g. best-of-round utilities).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.utils.rng import SeedLike, as_generator

__all__ = ["SummaryStats", "summarize", "bootstrap_ci", "compare_means"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread, and a confidence interval for one metric."""

    mean: float
    std: float
    count: int
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the confidence-interval width."""
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.count})"


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> SummaryStats:
    """Mean with a Student-t confidence interval.

    With one sample the interval degenerates to the point estimate.
    """
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(values, dtype=float)
    mean = float(data.mean())
    if data.size == 1:
        return SummaryStats(
            mean=mean, std=0.0, count=1, ci_low=mean, ci_high=mean,
            confidence=confidence,
        )
    std = float(data.std(ddof=1))
    sem = std / math.sqrt(data.size)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    return SummaryStats(
        mean=mean,
        std=std,
        count=int(data.size),
        ci_low=mean - t_crit * sem,
        ci_high=mean + t_crit * sem,
        confidence=confidence,
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Percentile bootstrap interval for an arbitrary statistic."""
    if len(values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    data = np.asarray(values, dtype=float)
    rng = as_generator(seed)
    estimates = np.array(
        [
            statistic(data[rng.integers(0, data.size, size=data.size)])
            for _ in range(resamples)
        ]
    )
    low = float(np.percentile(estimates, 100.0 * (0.5 - confidence / 2.0)))
    high = float(np.percentile(estimates, 100.0 * (0.5 + confidence / 2.0)))
    return low, high


def compare_means(
    a: Sequence[float], b: Sequence[float]
) -> tuple[float, float]:
    """Welch's t-test: returns (t statistic, p value).

    Used by tests/benches to claim "scheme A beats scheme B" with
    statistical backing rather than a single-seed comparison.
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two samples per group")
    t_stat, p_value = scipy_stats.ttest_ind(a, b, equal_var=False)
    return float(t_stat), float(p_value)
