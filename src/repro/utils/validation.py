"""Small argument-validation helpers shared by every subsystem.

These raise :class:`repro.errors.ConfigurationError` with a consistent
message format, so configuration mistakes surface at construction time with
the offending name and value rather than as NaNs deep inside a sweep.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_finite",
    "require_positive_int",
    "require_probability",
    "require_same_length",
    "require_non_empty",
]


def require_finite(name: str, value: float) -> float:
    """Return ``value`` if it is a finite real number, else raise."""
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return float(value)


def require_positive(name: str, value: float) -> float:
    """Return ``value`` if it is finite and strictly positive, else raise."""
    require_finite(name, value)
    if value <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is finite and >= 0, else raise."""
    require_finite(name, value)
    if value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def require_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies in ``[low, high]`` (or ``(low, high)``)."""
    require_finite(name, value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ConfigurationError(f"{name} must be in {bounds}, got {value!r}")
    return float(value)


def require_positive_int(name: str, value: int) -> int:
    """Return ``value`` if it is an integer >= 1, else raise."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ConfigurationError(f"{name} must be a positive int, got {value!r}")
    return value


def require_probability(name: str, value: float) -> float:
    """Return ``value`` if it lies in ``[0, 1]``."""
    return require_in_range(name, value, 0.0, 1.0)


def require_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise unless the two sequences have equal length."""
    if len(a) != len(b):
        raise ConfigurationError(
            f"{name_a} and {name_b} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def require_non_empty(name: str, seq: Sequence) -> None:
    """Raise unless the sequence has at least one element."""
    if len(seq) == 0:
        raise ConfigurationError(f"{name} must be non-empty")
