"""Best-response dynamics for the follower subgame.

In the paper's model the followers' best responses are mutually decoupled
(each VMU's utility depends only on its own bandwidth and the price), so
simultaneous best-response dynamics converge in a single round. We still
implement general damped dynamics because the B_max-rationed variant *does*
couple followers (one VMU's demand dilutes everyone's allocation), and the
dynamics give the fixed point of that coupled game.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.utils.validation import require_in_range, require_positive_int

__all__ = [
    "BestResponseResult",
    "BatchBestResponseResult",
    "iterate_best_response",
    "iterate_best_response_batch",
]

BestResponseMap = Callable[[np.ndarray], np.ndarray]
"""Maps the full strategy profile to every player's best response."""


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of best-response dynamics.

    Attributes:
        strategies: the final strategy profile.
        iterations: rounds executed.
        converged: whether the sup-norm change fell below tolerance.
        residual: final sup-norm change between consecutive profiles.
    """

    strategies: np.ndarray
    iterations: int
    converged: bool
    residual: float


def iterate_best_response(
    best_response: BestResponseMap,
    initial: Sequence[float],
    *,
    damping: float = 1.0,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
) -> BestResponseResult:
    """Run damped simultaneous best-response dynamics to a fixed point.

    ``x_{t+1} = (1 − λ) x_t + λ BR(x_t)`` with damping ``λ``; ``λ = 1`` is
    undamped. Convergence to a fixed point of ``BR`` is exactly a Nash
    equilibrium of the underlying game.

    Raises:
        GameError: if the map returns a profile of the wrong shape.
    """
    require_in_range("damping", damping, 0.0, 1.0, inclusive=True)
    if damping == 0.0:
        raise GameError("damping must be > 0 (0 never moves)")
    require_positive_int("max_iterations", max_iterations)

    current = np.asarray(initial, dtype=float).copy()
    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        response = np.asarray(best_response(current), dtype=float)
        if response.shape != current.shape:
            raise GameError(
                f"best_response returned shape {response.shape}, "
                f"expected {current.shape}"
            )
        updated = (1.0 - damping) * current + damping * response
        residual = float(np.max(np.abs(updated - current))) if current.size else 0.0
        current = updated
        if residual <= tolerance:
            return BestResponseResult(
                strategies=current,
                iterations=iteration,
                converged=True,
                residual=residual,
            )
    return BestResponseResult(
        strategies=current,
        iterations=max_iterations,
        converged=False,
        residual=residual,
    )


BatchBestResponseMap = Callable[[np.ndarray], np.ndarray]
"""Maps an ``(M, K)`` stack of strategy profiles to the stack of best
responses, row ``m`` depending only on row ``m`` (the games are
independent; they merely iterate in lockstep)."""


@dataclass(frozen=True)
class BatchBestResponseResult:
    """Outcome of lockstep best-response dynamics over ``M`` games.

    Attributes:
        strategies: ``(M, K)`` final strategy profiles.
        iterations: ``(M,)`` rounds each row ran before freezing
            (``max_iterations`` for rows that never converged).
        converged: ``(M,)`` per-row convergence flags.
        residuals: ``(M,)`` final sup-norm change per row.
    """

    strategies: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    residuals: np.ndarray


def iterate_best_response_batch(
    best_response: BatchBestResponseMap,
    initial: Sequence[Sequence[float]] | np.ndarray,
    *,
    damping: float = 1.0,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
    mask: np.ndarray | None = None,
) -> BatchBestResponseResult:
    """Run ``M`` independent best-response dynamics in lockstep.

    Row ``m`` follows exactly the update rule of
    :func:`iterate_best_response` — ``x_{t+1} = (1 − λ) x_t + λ BR(x_t)``
    with per-row sup-norm residuals — so, for a row-independent map, row
    ``m`` of the result is bitwise-equal to running the scalar iterator
    on that row alone. Rows freeze once converged: their strategies stop
    updating and the map's later outputs for them are discarded, which is
    what makes the per-row trajectories identical to the scalar runs even
    though rows converge at different times.

    Ragged games (different player counts per row) pad to ``K`` columns
    and pass ``mask`` (``(M, K)`` bool, True on real entries); padded
    columns hold their initial values, are excluded from the residual,
    and never affect convergence.

    Raises:
        GameError: on a zero damping, a non-2-D initial stack, or a map
            output / mask of the wrong shape.
    """
    require_in_range("damping", damping, 0.0, 1.0, inclusive=True)
    if damping == 0.0:
        raise GameError("damping must be > 0 (0 never moves)")
    require_positive_int("max_iterations", max_iterations)

    current = np.asarray(initial, dtype=float).copy()
    if current.ndim != 2:
        raise GameError(
            f"initial must be an (M, K) profile stack, got shape {current.shape}"
        )
    num_games = current.shape[0]
    if mask is None:
        active = np.ones(current.shape, dtype=bool)
    else:
        active = np.asarray(mask, dtype=bool)
        if active.shape != current.shape:
            raise GameError(
                f"mask shape {active.shape} does not match profiles {current.shape}"
            )
    converged = np.zeros(num_games, dtype=bool)
    iterations = np.zeros(num_games, dtype=int)
    residuals = np.full(num_games, np.inf)
    if current.shape[1] == 0:
        # Degenerate zero-player games: the scalar iterator reports
        # residual 0.0 and convergence on round one.
        return BatchBestResponseResult(
            strategies=current,
            iterations=np.ones(num_games, dtype=int),
            converged=np.ones(num_games, dtype=bool),
            residuals=np.zeros(num_games),
        )
    for iteration in range(1, max_iterations + 1):
        response = np.asarray(best_response(current), dtype=float)
        if response.shape != current.shape:
            raise GameError(
                f"best_response returned shape {response.shape}, "
                f"expected {current.shape}"
            )
        updated = (1.0 - damping) * current + damping * response
        updated = np.where(active, updated, current)
        updated = np.where(converged[:, np.newaxis], current, updated)
        deltas = np.where(active, np.abs(updated - current), 0.0)
        row_residuals = deltas.max(axis=1)
        residuals = np.where(converged, residuals, row_residuals)
        current = updated
        newly = ~converged & (row_residuals <= tolerance)
        iterations[newly] = iteration
        converged |= newly
        if bool(converged.all()):
            break
    iterations[~converged] = max_iterations
    return BatchBestResponseResult(
        strategies=current,
        iterations=iterations,
        converged=converged,
        residuals=residuals,
    )
