"""Best-response dynamics for the follower subgame.

In the paper's model the followers' best responses are mutually decoupled
(each VMU's utility depends only on its own bandwidth and the price), so
simultaneous best-response dynamics converge in a single round. We still
implement general damped dynamics because the B_max-rationed variant *does*
couple followers (one VMU's demand dilutes everyone's allocation), and the
dynamics give the fixed point of that coupled game.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.utils.validation import require_in_range, require_positive_int

__all__ = ["BestResponseResult", "iterate_best_response"]

BestResponseMap = Callable[[np.ndarray], np.ndarray]
"""Maps the full strategy profile to every player's best response."""


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of best-response dynamics.

    Attributes:
        strategies: the final strategy profile.
        iterations: rounds executed.
        converged: whether the sup-norm change fell below tolerance.
        residual: final sup-norm change between consecutive profiles.
    """

    strategies: np.ndarray
    iterations: int
    converged: bool
    residual: float


def iterate_best_response(
    best_response: BestResponseMap,
    initial: Sequence[float],
    *,
    damping: float = 1.0,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
) -> BestResponseResult:
    """Run damped simultaneous best-response dynamics to a fixed point.

    ``x_{t+1} = (1 − λ) x_t + λ BR(x_t)`` with damping ``λ``; ``λ = 1`` is
    undamped. Convergence to a fixed point of ``BR`` is exactly a Nash
    equilibrium of the underlying game.

    Raises:
        GameError: if the map returns a profile of the wrong shape.
    """
    require_in_range("damping", damping, 0.0, 1.0, inclusive=True)
    if damping == 0.0:
        raise GameError("damping must be > 0 (0 never moves)")
    require_positive_int("max_iterations", max_iterations)

    current = np.asarray(initial, dtype=float).copy()
    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        response = np.asarray(best_response(current), dtype=float)
        if response.shape != current.shape:
            raise GameError(
                f"best_response returned shape {response.shape}, "
                f"expected {current.shape}"
            )
        updated = (1.0 - damping) * current + damping * response
        residual = float(np.max(np.abs(updated - current))) if current.size else 0.0
        current = updated
        if residual <= tolerance:
            return BestResponseResult(
                strategies=current,
                iterations=iteration,
                converged=True,
                residual=residual,
            )
    return BestResponseResult(
        strategies=current,
        iterations=max_iterations,
        converged=False,
        residual=residual,
    )
