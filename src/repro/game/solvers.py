"""Scalar optimisation primitives for concave game stages.

Both stages of the paper's Stackelberg game are strictly concave in their
scalar decision variable (Theorems 1-2), so golden-section search and
derivative bisection are exact tools here. They are also used to
cross-validate the closed-form solutions in tests.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.backend import xp

from repro.errors import ConfigurationError, GameError
from repro.utils.validation import require_finite

__all__ = [
    "golden_section_maximize",
    "golden_section_maximize_batch",
    "bisect_root",
    "grid_then_golden",
    "grid_then_golden_batch",
    "uniform_price_grid",
]


def uniform_price_grid(low: float, high: float, grid_points: int) -> xp.ndarray:
    """A uniform ``(grid_points,)`` grid on ``[low, high]``.

    The one grid construction every landscape scan shares: the leader's
    scan (:meth:`StackelbergMarket.leader_landscape`), the engine-level
    :func:`repro.sim.price_grid`, and :func:`grid_then_golden`'s coarse
    pass all build their grids here.
    """
    if grid_points < 2:
        raise ConfigurationError(f"grid_points must be >= 2, got {grid_points}")
    if not low < high:
        raise ConfigurationError(f"need low < high, got [{low}, {high}]")
    step = (high - low) / (grid_points - 1)
    return low + step * xp.arange(grid_points)

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/φ ≈ 0.618


def golden_section_maximize(
    objective: Callable[[float], float],
    low: float,
    high: float,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 500,
) -> tuple[float, float]:
    """Maximise a unimodal ``objective`` on ``[low, high]``.

    Returns ``(argmax, max_value)``. For strictly concave objectives the
    result is the global maximiser to within ``tolerance``.

    Raises:
        GameError: if ``low > high`` or the bracket is degenerate.
    """
    require_finite("low", low)
    require_finite("high", high)
    if low > high:
        raise GameError(f"invalid bracket: low={low} > high={high}")
    if high - low <= tolerance:
        mid = 0.5 * (low + high)
        return mid, objective(mid)

    a, b = low, high
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(max_iterations):
        if b - a <= tolerance:
            break
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = objective(d)
    best = 0.5 * (a + b)
    return best, objective(best)


def golden_section_maximize_batch(
    objective: Callable[[xp.ndarray], xp.ndarray],
    lows: xp.ndarray,
    highs: xp.ndarray,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 500,
) -> tuple[xp.ndarray, xp.ndarray]:
    """Maximise ``M`` unimodal objectives on ``M`` brackets in lockstep.

    The batched form of :func:`golden_section_maximize`: ``objective`` maps
    a probe vector ``(M,)`` to values ``(M,)`` (e.g. one stacked market
    solve), and every iteration advances **all** still-open brackets with a
    single evaluation. Per bracket the sequence of probe points, the
    ``fc >= fd`` branch decisions, and the iteration count are the exact
    elementwise replica of the scalar algorithm, so ``result[m]`` equals
    ``golden_section_maximize(obj_m, lows[m], highs[m])`` bitwise whenever
    the batched objective agrees with the scalar one row for row. Brackets
    converge at different rates; a converged bracket is frozen (its probe
    slot is filled with its midpoint and the evaluation discarded) while
    the rest keep iterating.

    Returns ``(argmaxes (M,), max_values (M,))``.

    Raises:
        GameError: if any bracket has ``lows[m] > highs[m]`` or a
            non-finite endpoint.
    """
    a = xp.array(lows, dtype=float)
    b = xp.array(highs, dtype=float)
    if a.ndim != 1 or a.shape != b.shape:
        raise GameError(
            f"lows and highs must share one (M,) shape, got {a.shape} "
            f"and {b.shape}"
        )
    if xp.any(~xp.isfinite(a)) or xp.any(~xp.isfinite(b)):
        raise GameError("brackets must be finite")
    if xp.any(a > b):
        raise GameError("invalid bracket: low > high")

    # Scalar early-return case: brackets already within tolerance resolve
    # to their midpoint and never iterate.
    mid = 0.5 * (a + b)
    degenerate = (b - a) <= tolerance
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc = xp.asarray(objective(xp.where(degenerate, mid, c)), dtype=float)
    fd = xp.asarray(objective(xp.where(degenerate, mid, d)), dtype=float)
    size = a.shape[0]
    active = ~degenerate
    for _ in range(max_iterations):
        active = active & ((b - a) > tolerance)
        open_count = int(active.sum())
        if not open_count:
            break
        ge = fc >= fd
        old_c, old_d, old_fc, old_fd = c, d, fc, fd
        # left:  b, d, fd = d, c, fc; then c = b - 1/φ·(b-a), eval fc
        # right: a, c, fc = c, d, fd; then d = a + 1/φ·(b-a), eval fd
        if open_count == size:
            # Brackets of similar width converge in lockstep, so most
            # iterations have every row open: with ``right == ~left`` each
            # three-way select below collapses to one ``xp.where`` — the
            # same elementwise values, about half the dispatches. This
            # loop's fixed ~50 sequential rounds are the latency floor of
            # a small dirty-row re-solve, so the overhead matters.
            left = ge
            b = xp.where(left, old_d, b)
            a = xp.where(left, a, old_c)
            step = _INV_PHI * (b - a)
            c = xp.where(left, b - step, old_d)
            d = xp.where(left, old_c, a + step)
            probe = xp.where(left, c, d)
            values = xp.asarray(objective(probe), dtype=float)
            fc = xp.where(left, values, old_fd)
            fd = xp.where(left, old_fc, values)
            continue
        left = active & ge
        right = active & ~ge
        b = xp.where(left, old_d, b)
        a = xp.where(right, old_c, a)
        new_c = b - _INV_PHI * (b - a)
        new_d = a + _INV_PHI * (b - a)
        c = xp.where(left, new_c, xp.where(right, old_d, old_c))
        d = xp.where(right, new_d, xp.where(left, old_c, old_d))
        # One evaluation advances every open bracket; frozen rows probe
        # their current midpoint and the value is discarded.
        probe = xp.where(left, c, xp.where(right, d, 0.5 * (a + b)))
        values = xp.asarray(objective(probe), dtype=float)
        fc = xp.where(left, values, xp.where(right, old_fd, old_fc))
        fd = xp.where(right, values, xp.where(left, old_fc, old_fd))
    best = xp.where(degenerate, mid, 0.5 * (a + b))
    return best, xp.asarray(objective(best), dtype=float)


def bisect_root(
    func: Callable[[float], float],
    low: float,
    high: float,
    *,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Find a root of a continuous ``func`` with a sign change on
    ``[low, high]`` by bisection.

    Used on first-order conditions (monotone derivatives of concave
    utilities). Raises :class:`GameError` if there is no sign change.
    """
    f_low, f_high = func(low), func(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if f_low * f_high > 0.0:
        raise GameError(
            f"no sign change on [{low}, {high}]: f(low)={f_low}, f(high)={f_high}"
        )
    a, b = low, high
    fa = f_low
    for _ in range(max_iterations):
        mid = 0.5 * (a + b)
        f_mid = func(mid)
        if f_mid == 0.0 or (b - a) <= tolerance:
            return mid
        if fa * f_mid < 0.0:
            b = mid
        else:
            a, fa = mid, f_mid
    return 0.5 * (a + b)


def _probe_vector_scan(
    objective: Callable[[float], float], grid: xp.ndarray
) -> xp.ndarray | None:
    """Try evaluating a scalar objective over the whole grid in one call.

    Many objectives are written with numpy ufuncs and transparently map a
    price vector to a value vector; when that works, the coarse scan costs
    one batched evaluation instead of ``grid_points`` Python-level calls.
    The probe is rejected (``None``; callers run the scalar loop) when the
    callable raises the typical scalar-only errors (``TypeError`` /
    ``ValueError``, e.g. ``float(array)`` or an ambiguous ``if p > t``) or
    returns anything but one finite-shaped value per grid point — a scalar
    objective that silently reduces over the grid comes back with the
    wrong shape and is therefore never trusted. An accepted batched
    evaluation performs the same elementwise float64 arithmetic as the
    per-point loop, so its argmax (first maximum, the scalar loop's
    tie-break) picks the identical bracket bitwise.
    """
    try:
        values = xp.asarray(objective(grid), dtype=float)
    except (TypeError, ValueError):
        return None
    if values.shape != grid.shape:
        return None
    return values


def grid_then_golden(
    objective: Callable[[float], float],
    low: float,
    high: float,
    *,
    grid_points: int = 256,
    tolerance: float = 1e-10,
    vector_objective: Callable[[xp.ndarray], xp.ndarray] | None = None,
    bracket_low: float | None = None,
    bracket_high: float | None = None,
) -> tuple[float, float]:
    """Global maximisation of a (possibly piecewise) continuous objective.

    Coarse grid scan to find the best bracket, then golden-section
    refinement inside it. Robust to the kinks the B_max rationing and
    follower drop-out thresholds introduce into the leader's utility.

    When ``vector_objective`` is supplied (a batched form evaluating a whole
    price vector ``(P,)`` to values ``(P,)`` in one call), the grid scan runs
    as a single vectorised evaluation instead of ``grid_points`` Python-level
    calls — the hot path of every equilibrium solve and fig-3 sweep. The
    golden refinement stays scalar (it brackets three points at a time), so
    the two entry points return identical results whenever the batched form
    agrees with ``objective`` pointwise. Without an explicit
    ``vector_objective`` the scan first probes ``objective`` with the whole
    grid vector and uses the batched result when the callable transparently
    vectorises (ufunc-style objectives); scalar-only callables fall back to
    the per-point loop with identical results.

    ``bracket_low``/``bracket_high`` (given together) warm-start the
    search: the coarse scan is skipped and golden refinement runs directly
    on the warm bracket, clipped to ``[low, high]``. The warm optimum is
    trusted unless it is *stale* — the refined argmax lands within
    ``tolerance`` of a warm-bracket endpoint that is strictly inside the
    full interval (the true optimum may have escaped the bracket) — in
    which case the full scan-then-refine path runs as if no warm bracket
    had been given. Non-finite warm endpoints disable the warm start for
    this call (callers batch them as "no previous optimum"). With a warm
    bracket the result agrees with the cold path to refinement tolerance,
    not bitwise.
    """
    if grid_points < 3:
        raise GameError(f"grid_points must be >= 3, got {grid_points}")
    if low > high:
        raise GameError(f"invalid bracket: low={low} > high={high}")
    if (bracket_low is None) != (bracket_high is None):
        raise GameError(
            "bracket_low and bracket_high must be given together"
        )
    if (
        bracket_low is not None
        and math.isfinite(bracket_low)
        and math.isfinite(bracket_high)
    ):
        if bracket_low > bracket_high:
            raise GameError(
                f"invalid warm bracket: low={bracket_low} > "
                f"high={bracket_high}"
            )
        warm_low = min(max(float(bracket_low), low), high)
        warm_high = min(max(float(bracket_high), low), high)
        price, value = golden_section_maximize(
            objective, warm_low, warm_high, tolerance=tolerance
        )
        stale = (
            (price - warm_low <= tolerance and warm_low > low)
            or (warm_high - price <= tolerance and warm_high < high)
        )
        if not stale:
            return price, value
    if high == low:
        return low, objective(low)
    step = (high - low) / (grid_points - 1)
    grid = uniform_price_grid(low, high, grid_points)
    if vector_objective is not None:
        values = xp.asarray(vector_objective(grid), dtype=float)
        if values.shape != grid.shape:
            raise GameError(
                f"vector_objective returned shape {values.shape}, "
                f"expected {grid.shape}"
            )
        best_idx = int(xp.argmax(values))
    else:
        values = _probe_vector_scan(objective, grid)
        if values is not None:
            best_idx = int(xp.argmax(values))
        else:
            scalar_values = [objective(float(p)) for p in grid]
            best_idx = max(range(grid_points), key=scalar_values.__getitem__)
    bracket_low = low + max(0, best_idx - 1) * step
    bracket_high = low + min(grid_points - 1, best_idx + 1) * step
    return golden_section_maximize(
        objective, bracket_low, bracket_high, tolerance=tolerance
    )


def grid_then_golden_batch(
    objective: Callable[[xp.ndarray], xp.ndarray],
    lows: xp.ndarray,
    highs: xp.ndarray,
    *,
    grid_points: int = 256,
    tolerance: float = 1e-10,
    bracket_lows: xp.ndarray | None = None,
    bracket_highs: xp.ndarray | None = None,
) -> tuple[xp.ndarray, xp.ndarray]:
    """Global maximisation of ``M`` objectives on ``M`` intervals, stacked.

    The batched form of :func:`grid_then_golden`: one coarse scan over the
    ``(M, grid_points)`` grid matrix (every interval gets the same
    ``lows[m] + step_m·arange`` grid the scalar path builds), then a
    lockstep :func:`golden_section_maximize_batch` refinement inside each
    interval's best bracket. ``objective`` must accept both probe shapes —
    a grid matrix ``(M, R)`` and a probe vector ``(M,)`` — returning values
    of the same shape (``MarketStack.outcomes_stacked`` does exactly this).

    Per interval the result equals ``grid_then_golden(obj_m, lows[m],
    highs[m], ...)`` bitwise whenever the batched objective agrees with the
    scalar one row for row; degenerate intervals (``lows[m] == highs[m]``)
    resolve to their single point like the scalar early return.

    ``bracket_lows``/``bracket_highs`` (given together, shape ``(M,)``)
    warm-start individual rows: a row whose warm endpoints are both finite
    skips the coarse scan and refines directly inside its warm bracket
    (clipped to the row's interval); rows with a non-finite endpoint take
    the cold scan-then-refine path. A warm row whose refined argmax lands
    within ``tolerance`` of a warm endpoint strictly inside its full
    interval is *stale*: it is re-solved through the cold path (the warm
    bracket no longer contains the optimum). Row for row this is the exact
    elementwise replica of the scalar warm-start rule, so the batch stays
    bitwise-equal to a loop of :func:`grid_then_golden` calls with the
    matching scalar warm brackets. When every row is warm and none comes
    back stale, the ``(M, grid_points)`` scan is never evaluated — the
    whole point of warm-starting a dirty-row re-solve.
    """
    if grid_points < 3:
        raise GameError(f"grid_points must be >= 3, got {grid_points}")
    low_v = xp.asarray(lows, dtype=float)
    high_v = xp.asarray(highs, dtype=float)
    if low_v.ndim != 1 or low_v.shape != high_v.shape:
        raise GameError(
            f"lows and highs must share one (M,) shape, got {low_v.shape} "
            f"and {high_v.shape}"
        )
    if xp.any(low_v > high_v):
        raise GameError("invalid bracket: low > high")
    if (bracket_lows is None) != (bracket_highs is None):
        raise GameError(
            "bracket_lows and bracket_highs must be given together"
        )
    steps = (high_v - low_v) / (grid_points - 1)
    scan_cache: tuple[xp.ndarray, xp.ndarray] | None = None

    def scan_brackets() -> tuple[xp.ndarray, xp.ndarray]:
        """Cold coarse scan: each row's best grid bracket (computed once)."""
        nonlocal scan_cache
        if scan_cache is None:
            grids = (
                low_v[:, xp.newaxis]
                + steps[:, xp.newaxis] * xp.arange(grid_points)
            )
            values = xp.asarray(objective(grids), dtype=float)
            if values.shape != grids.shape:
                raise GameError(
                    f"objective returned shape {values.shape}, expected "
                    f"{grids.shape}"
                )
            best_idx = xp.argmax(values, axis=1)
            scan_cache = (
                low_v + xp.maximum(0, best_idx - 1) * steps,
                low_v + xp.minimum(grid_points - 1, best_idx + 1) * steps,
            )
        return scan_cache

    if bracket_lows is None:
        cold_lows, cold_highs = scan_brackets()
        return golden_section_maximize_batch(
            objective, cold_lows, cold_highs, tolerance=tolerance
        )

    warm_low_v = xp.asarray(bracket_lows, dtype=float)
    warm_high_v = xp.asarray(bracket_highs, dtype=float)
    if warm_low_v.shape != low_v.shape or warm_high_v.shape != low_v.shape:
        raise GameError(
            f"warm brackets must share the (M,) shape {low_v.shape}, got "
            f"{warm_low_v.shape} and {warm_high_v.shape}"
        )
    warm = xp.isfinite(warm_low_v) & xp.isfinite(warm_high_v)
    if xp.any(warm & (warm_low_v > warm_high_v)):
        raise GameError("invalid warm bracket: low > high")
    clipped_low = xp.where(warm, xp.clip(warm_low_v, low_v, high_v), low_v)
    clipped_high = xp.where(warm, xp.clip(warm_high_v, low_v, high_v), high_v)
    if bool(xp.all(warm)):
        refine_lows, refine_highs = clipped_low, clipped_high
    else:
        cold_lows, cold_highs = scan_brackets()
        refine_lows = xp.where(warm, clipped_low, cold_lows)
        refine_highs = xp.where(warm, clipped_high, cold_highs)
    prices, values = golden_section_maximize_batch(
        objective, refine_lows, refine_highs, tolerance=tolerance
    )
    stale = warm & (
        ((prices - clipped_low <= tolerance) & (clipped_low > low_v))
        | ((clipped_high - prices <= tolerance) & (clipped_high < high_v))
    )
    if bool(xp.any(stale)):
        cold_lows, cold_highs = scan_brackets()
        # Non-stale rows ride along frozen on a degenerate [p, p] bracket
        # (resolving back to p bitwise); only stale rows re-refine.
        redo_prices, redo_values = golden_section_maximize_batch(
            objective,
            xp.where(stale, cold_lows, prices),
            xp.where(stale, cold_highs, prices),
            tolerance=tolerance,
        )
        prices = xp.where(stale, redo_prices, prices)
        values = xp.where(stale, redo_values, values)
    return prices, values
