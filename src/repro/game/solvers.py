"""Scalar optimisation primitives for concave game stages.

Both stages of the paper's Stackelberg game are strictly concave in their
scalar decision variable (Theorems 1-2), so golden-section search and
derivative bisection are exact tools here. They are also used to
cross-validate the closed-form solutions in tests.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, GameError
from repro.utils.validation import require_finite

__all__ = [
    "golden_section_maximize",
    "bisect_root",
    "grid_then_golden",
    "uniform_price_grid",
]


def uniform_price_grid(low: float, high: float, grid_points: int) -> np.ndarray:
    """A uniform ``(grid_points,)`` grid on ``[low, high]``.

    The one grid construction every landscape scan shares: the leader's
    scan (:meth:`StackelbergMarket.leader_landscape`), the engine-level
    :func:`repro.sim.price_grid`, and :func:`grid_then_golden`'s coarse
    pass all build their grids here.
    """
    if grid_points < 2:
        raise ConfigurationError(f"grid_points must be >= 2, got {grid_points}")
    if not low < high:
        raise ConfigurationError(f"need low < high, got [{low}, {high}]")
    step = (high - low) / (grid_points - 1)
    return low + step * np.arange(grid_points)

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/φ ≈ 0.618


def golden_section_maximize(
    objective: Callable[[float], float],
    low: float,
    high: float,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 500,
) -> tuple[float, float]:
    """Maximise a unimodal ``objective`` on ``[low, high]``.

    Returns ``(argmax, max_value)``. For strictly concave objectives the
    result is the global maximiser to within ``tolerance``.

    Raises:
        GameError: if ``low > high`` or the bracket is degenerate.
    """
    require_finite("low", low)
    require_finite("high", high)
    if low > high:
        raise GameError(f"invalid bracket: low={low} > high={high}")
    if high - low <= tolerance:
        mid = 0.5 * (low + high)
        return mid, objective(mid)

    a, b = low, high
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(max_iterations):
        if b - a <= tolerance:
            break
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = objective(d)
    best = 0.5 * (a + b)
    return best, objective(best)


def bisect_root(
    func: Callable[[float], float],
    low: float,
    high: float,
    *,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Find a root of a continuous ``func`` with a sign change on
    ``[low, high]`` by bisection.

    Used on first-order conditions (monotone derivatives of concave
    utilities). Raises :class:`GameError` if there is no sign change.
    """
    f_low, f_high = func(low), func(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if f_low * f_high > 0.0:
        raise GameError(
            f"no sign change on [{low}, {high}]: f(low)={f_low}, f(high)={f_high}"
        )
    a, b = low, high
    fa = f_low
    for _ in range(max_iterations):
        mid = 0.5 * (a + b)
        f_mid = func(mid)
        if f_mid == 0.0 or (b - a) <= tolerance:
            return mid
        if fa * f_mid < 0.0:
            b = mid
        else:
            a, fa = mid, f_mid
    return 0.5 * (a + b)


def grid_then_golden(
    objective: Callable[[float], float],
    low: float,
    high: float,
    *,
    grid_points: int = 256,
    tolerance: float = 1e-10,
    vector_objective: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[float, float]:
    """Global maximisation of a (possibly piecewise) continuous objective.

    Coarse grid scan to find the best bracket, then golden-section
    refinement inside it. Robust to the kinks the B_max rationing and
    follower drop-out thresholds introduce into the leader's utility.

    When ``vector_objective`` is supplied (a batched form evaluating a whole
    price vector ``(P,)`` to values ``(P,)`` in one call), the grid scan runs
    as a single vectorised evaluation instead of ``grid_points`` Python-level
    calls — the hot path of every equilibrium solve and fig-3 sweep. The
    golden refinement stays scalar (it brackets three points at a time), so
    the two entry points return identical results whenever the batched form
    agrees with ``objective`` pointwise.
    """
    if grid_points < 3:
        raise GameError(f"grid_points must be >= 3, got {grid_points}")
    if low > high:
        raise GameError(f"invalid bracket: low={low} > high={high}")
    if high == low:
        return low, objective(low)
    step = (high - low) / (grid_points - 1)
    grid = uniform_price_grid(low, high, grid_points)
    if vector_objective is not None:
        values = np.asarray(vector_objective(grid), dtype=float)
        if values.shape != grid.shape:
            raise GameError(
                f"vector_objective returned shape {values.shape}, "
                f"expected {grid.shape}"
            )
        best_idx = int(np.argmax(values))
    else:
        scalar_values = [objective(float(p)) for p in grid]
        best_idx = max(range(grid_points), key=scalar_values.__getitem__)
    bracket_low = low + max(0, best_idx - 1) * step
    bracket_high = low + min(grid_points - 1, best_idx + 1) * step
    return golden_section_maximize(
        objective, bracket_low, bracket_high, tolerance=tolerance
    )
