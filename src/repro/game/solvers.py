"""Scalar optimisation primitives for concave game stages.

Both stages of the paper's Stackelberg game are strictly concave in their
scalar decision variable (Theorems 1-2), so golden-section search and
derivative bisection are exact tools here. They are also used to
cross-validate the closed-form solutions in tests.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError, GameError
from repro.utils.validation import require_finite

__all__ = [
    "golden_section_maximize",
    "golden_section_maximize_batch",
    "bisect_root",
    "grid_then_golden",
    "grid_then_golden_batch",
    "uniform_price_grid",
]


def uniform_price_grid(low: float, high: float, grid_points: int) -> np.ndarray:
    """A uniform ``(grid_points,)`` grid on ``[low, high]``.

    The one grid construction every landscape scan shares: the leader's
    scan (:meth:`StackelbergMarket.leader_landscape`), the engine-level
    :func:`repro.sim.price_grid`, and :func:`grid_then_golden`'s coarse
    pass all build their grids here.
    """
    if grid_points < 2:
        raise ConfigurationError(f"grid_points must be >= 2, got {grid_points}")
    if not low < high:
        raise ConfigurationError(f"need low < high, got [{low}, {high}]")
    step = (high - low) / (grid_points - 1)
    return low + step * np.arange(grid_points)

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/φ ≈ 0.618


def golden_section_maximize(
    objective: Callable[[float], float],
    low: float,
    high: float,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 500,
) -> tuple[float, float]:
    """Maximise a unimodal ``objective`` on ``[low, high]``.

    Returns ``(argmax, max_value)``. For strictly concave objectives the
    result is the global maximiser to within ``tolerance``.

    Raises:
        GameError: if ``low > high`` or the bracket is degenerate.
    """
    require_finite("low", low)
    require_finite("high", high)
    if low > high:
        raise GameError(f"invalid bracket: low={low} > high={high}")
    if high - low <= tolerance:
        mid = 0.5 * (low + high)
        return mid, objective(mid)

    a, b = low, high
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(max_iterations):
        if b - a <= tolerance:
            break
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = objective(d)
    best = 0.5 * (a + b)
    return best, objective(best)


def golden_section_maximize_batch(
    objective: Callable[[np.ndarray], np.ndarray],
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 500,
) -> tuple[np.ndarray, np.ndarray]:
    """Maximise ``M`` unimodal objectives on ``M`` brackets in lockstep.

    The batched form of :func:`golden_section_maximize`: ``objective`` maps
    a probe vector ``(M,)`` to values ``(M,)`` (e.g. one stacked market
    solve), and every iteration advances **all** still-open brackets with a
    single evaluation. Per bracket the sequence of probe points, the
    ``fc >= fd`` branch decisions, and the iteration count are the exact
    elementwise replica of the scalar algorithm, so ``result[m]`` equals
    ``golden_section_maximize(obj_m, lows[m], highs[m])`` bitwise whenever
    the batched objective agrees with the scalar one row for row. Brackets
    converge at different rates; a converged bracket is frozen (its probe
    slot is filled with its midpoint and the evaluation discarded) while
    the rest keep iterating.

    Returns ``(argmaxes (M,), max_values (M,))``.

    Raises:
        GameError: if any bracket has ``lows[m] > highs[m]`` or a
            non-finite endpoint.
    """
    a = np.array(lows, dtype=float)
    b = np.array(highs, dtype=float)
    if a.ndim != 1 or a.shape != b.shape:
        raise GameError(
            f"lows and highs must share one (M,) shape, got {a.shape} "
            f"and {b.shape}"
        )
    if np.any(~np.isfinite(a)) or np.any(~np.isfinite(b)):
        raise GameError("brackets must be finite")
    if np.any(a > b):
        raise GameError("invalid bracket: low > high")

    # Scalar early-return case: brackets already within tolerance resolve
    # to their midpoint and never iterate.
    mid = 0.5 * (a + b)
    degenerate = (b - a) <= tolerance
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc = np.asarray(objective(np.where(degenerate, mid, c)), dtype=float)
    fd = np.asarray(objective(np.where(degenerate, mid, d)), dtype=float)
    active = ~degenerate
    for _ in range(max_iterations):
        active = active & ((b - a) > tolerance)
        if not active.any():
            break
        left = active & (fc >= fd)
        right = active & ~(fc >= fd)
        old_c, old_d, old_fc, old_fd = c, d, fc, fd
        # left:  b, d, fd = d, c, fc; then c = b - 1/φ·(b-a), eval fc
        # right: a, c, fc = c, d, fd; then d = a + 1/φ·(b-a), eval fd
        b = np.where(left, old_d, b)
        a = np.where(right, old_c, a)
        new_c = b - _INV_PHI * (b - a)
        new_d = a + _INV_PHI * (b - a)
        c = np.where(left, new_c, np.where(right, old_d, old_c))
        d = np.where(right, new_d, np.where(left, old_c, old_d))
        # One evaluation advances every open bracket; frozen rows probe
        # their current midpoint and the value is discarded.
        probe = np.where(left, c, np.where(right, d, 0.5 * (a + b)))
        values = np.asarray(objective(probe), dtype=float)
        fc = np.where(left, values, np.where(right, old_fd, old_fc))
        fd = np.where(right, values, np.where(left, old_fc, old_fd))
    best = np.where(degenerate, mid, 0.5 * (a + b))
    return best, np.asarray(objective(best), dtype=float)


def bisect_root(
    func: Callable[[float], float],
    low: float,
    high: float,
    *,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Find a root of a continuous ``func`` with a sign change on
    ``[low, high]`` by bisection.

    Used on first-order conditions (monotone derivatives of concave
    utilities). Raises :class:`GameError` if there is no sign change.
    """
    f_low, f_high = func(low), func(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if f_low * f_high > 0.0:
        raise GameError(
            f"no sign change on [{low}, {high}]: f(low)={f_low}, f(high)={f_high}"
        )
    a, b = low, high
    fa = f_low
    for _ in range(max_iterations):
        mid = 0.5 * (a + b)
        f_mid = func(mid)
        if f_mid == 0.0 or (b - a) <= tolerance:
            return mid
        if fa * f_mid < 0.0:
            b = mid
        else:
            a, fa = mid, f_mid
    return 0.5 * (a + b)


def grid_then_golden(
    objective: Callable[[float], float],
    low: float,
    high: float,
    *,
    grid_points: int = 256,
    tolerance: float = 1e-10,
    vector_objective: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[float, float]:
    """Global maximisation of a (possibly piecewise) continuous objective.

    Coarse grid scan to find the best bracket, then golden-section
    refinement inside it. Robust to the kinks the B_max rationing and
    follower drop-out thresholds introduce into the leader's utility.

    When ``vector_objective`` is supplied (a batched form evaluating a whole
    price vector ``(P,)`` to values ``(P,)`` in one call), the grid scan runs
    as a single vectorised evaluation instead of ``grid_points`` Python-level
    calls — the hot path of every equilibrium solve and fig-3 sweep. The
    golden refinement stays scalar (it brackets three points at a time), so
    the two entry points return identical results whenever the batched form
    agrees with ``objective`` pointwise.
    """
    if grid_points < 3:
        raise GameError(f"grid_points must be >= 3, got {grid_points}")
    if low > high:
        raise GameError(f"invalid bracket: low={low} > high={high}")
    if high == low:
        return low, objective(low)
    step = (high - low) / (grid_points - 1)
    grid = uniform_price_grid(low, high, grid_points)
    if vector_objective is not None:
        values = np.asarray(vector_objective(grid), dtype=float)
        if values.shape != grid.shape:
            raise GameError(
                f"vector_objective returned shape {values.shape}, "
                f"expected {grid.shape}"
            )
        best_idx = int(np.argmax(values))
    else:
        scalar_values = [objective(float(p)) for p in grid]
        best_idx = max(range(grid_points), key=scalar_values.__getitem__)
    bracket_low = low + max(0, best_idx - 1) * step
    bracket_high = low + min(grid_points - 1, best_idx + 1) * step
    return golden_section_maximize(
        objective, bracket_low, bracket_high, tolerance=tolerance
    )


def grid_then_golden_batch(
    objective: Callable[[np.ndarray], np.ndarray],
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    grid_points: int = 256,
    tolerance: float = 1e-10,
) -> tuple[np.ndarray, np.ndarray]:
    """Global maximisation of ``M`` objectives on ``M`` intervals, stacked.

    The batched form of :func:`grid_then_golden`: one coarse scan over the
    ``(M, grid_points)`` grid matrix (every interval gets the same
    ``lows[m] + step_m·arange`` grid the scalar path builds), then a
    lockstep :func:`golden_section_maximize_batch` refinement inside each
    interval's best bracket. ``objective`` must accept both probe shapes —
    a grid matrix ``(M, R)`` and a probe vector ``(M,)`` — returning values
    of the same shape (``MarketStack.outcomes_stacked`` does exactly this).

    Per interval the result equals ``grid_then_golden(obj_m, lows[m],
    highs[m], ...)`` bitwise whenever the batched objective agrees with the
    scalar one row for row; degenerate intervals (``lows[m] == highs[m]``)
    resolve to their single point like the scalar early return.
    """
    if grid_points < 3:
        raise GameError(f"grid_points must be >= 3, got {grid_points}")
    low_v = np.asarray(lows, dtype=float)
    high_v = np.asarray(highs, dtype=float)
    if low_v.ndim != 1 or low_v.shape != high_v.shape:
        raise GameError(
            f"lows and highs must share one (M,) shape, got {low_v.shape} "
            f"and {high_v.shape}"
        )
    if np.any(low_v > high_v):
        raise GameError("invalid bracket: low > high")
    steps = (high_v - low_v) / (grid_points - 1)
    grids = low_v[:, np.newaxis] + steps[:, np.newaxis] * np.arange(grid_points)
    values = np.asarray(objective(grids), dtype=float)
    if values.shape != grids.shape:
        raise GameError(
            f"objective returned shape {values.shape}, expected {grids.shape}"
        )
    best_idx = np.argmax(values, axis=1)
    bracket_lows = low_v + np.maximum(0, best_idx - 1) * steps
    bracket_highs = low_v + np.minimum(grid_points - 1, best_idx + 1) * steps
    return golden_section_maximize_batch(
        objective, bracket_lows, bracket_highs, tolerance=tolerance
    )
