"""Game-theory toolkit: concave solvers, best-response dynamics, analysis."""

from repro.game.analysis import (
    is_concave_on,
    numerical_derivative,
    numerical_second_derivative,
    verify_best_response,
    verify_no_profitable_deviation,
)
from repro.game.best_response import (
    BatchBestResponseResult,
    BestResponseResult,
    iterate_best_response,
    iterate_best_response_batch,
)
from repro.game.solvers import (
    bisect_root,
    golden_section_maximize,
    golden_section_maximize_batch,
    grid_then_golden,
    grid_then_golden_batch,
)

__all__ = [
    "is_concave_on",
    "numerical_derivative",
    "numerical_second_derivative",
    "verify_best_response",
    "verify_no_profitable_deviation",
    "BatchBestResponseResult",
    "BestResponseResult",
    "iterate_best_response",
    "iterate_best_response_batch",
    "bisect_root",
    "golden_section_maximize",
    "golden_section_maximize_batch",
    "grid_then_golden",
    "grid_then_golden_batch",
]
