"""Numerical verification of game-theoretic properties.

Theorems 1 and 2 of the paper prove concavity and equilibrium uniqueness
analytically. These helpers verify the same properties numerically for any
instantiated market, which is how the test suite checks our implementation
matches the theory (and how users can sanity-check modified models).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import GameError

__all__ = [
    "numerical_derivative",
    "numerical_second_derivative",
    "is_concave_on",
    "verify_best_response",
    "verify_no_profitable_deviation",
]


def numerical_derivative(
    func: Callable[[float], float], x: float, *, h: float = 1e-6
) -> float:
    """Central-difference first derivative of ``func`` at ``x``."""
    return (func(x + h) - func(x - h)) / (2.0 * h)


def numerical_second_derivative(
    func: Callable[[float], float], x: float, *, h: float = 1e-4
) -> float:
    """Central-difference second derivative of ``func`` at ``x``."""
    return (func(x + h) - 2.0 * func(x) + func(x - h)) / (h * h)


def is_concave_on(
    func: Callable[[float], float],
    low: float,
    high: float,
    *,
    samples: int = 128,
    tolerance: float = 1e-9,
) -> bool:
    """Check midpoint concavity of ``func`` on random chords in ``[low, high]``.

    Deterministic: uses an evenly spaced triple grid, not random draws.
    """
    if samples < 2 or low >= high:
        raise GameError("need samples >= 2 and low < high")
    xs = np.linspace(low, high, samples)
    values = np.array([func(float(x)) for x in xs])
    mids = 0.5 * (values[:-2] + values[2:])
    return bool(np.all(values[1:-1] + tolerance >= mids))


def verify_best_response(
    utility: Callable[[float], float],
    claimed_argmax: float,
    low: float,
    high: float,
    *,
    samples: int = 512,
    tolerance: float = 1e-6,
) -> bool:
    """Check that no grid point in ``[low, high]`` beats ``claimed_argmax``.

    Relative tolerance guards against float noise near the optimum.
    """
    best = utility(claimed_argmax)
    xs = np.linspace(low, high, samples)
    for x in xs:
        if utility(float(x)) > best + tolerance * max(1.0, abs(best)):
            return False
    return True


def verify_no_profitable_deviation(
    utilities: Sequence[Callable[[float], float]],
    strategies: Sequence[float],
    bounds: Sequence[tuple[float, float]],
    *,
    samples: int = 256,
    tolerance: float = 1e-6,
) -> bool:
    """Nash check: each player's strategy is a grid-argmax of their utility
    with everyone else fixed.

    ``utilities[i]`` must already close over the opponents' strategies.
    """
    if not (len(utilities) == len(strategies) == len(bounds)):
        raise GameError("utilities, strategies, bounds must align")
    for utility, strategy, (low, high) in zip(utilities, strategies, bounds):
        if not verify_best_response(
            utility, strategy, low, high, samples=samples, tolerance=tolerance
        ):
            return False
    return True
