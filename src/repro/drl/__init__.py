"""DRL substrate: rollout buffer, GAE, PPO, and the Algorithm-1 trainer."""

from repro.drl.buffer import (
    MiniBatch,
    RolloutBuffer,
    Transition,
    concatenate_minibatches,
    sample_minibatch,
)
from repro.drl.checkpoints import load_agent, save_agent
from repro.drl.gae import discounted_returns, generalized_advantages, paper_advantages
from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig, UpdateStats
from repro.drl.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialSchedule,
    LinearSchedule,
    Schedule,
    apply_lr_schedule,
)
from repro.drl.trainer import (
    Trainer,
    TrainerConfig,
    TrainingResult,
    VectorTrainer,
    train_pricing_agent,
)

__all__ = [
    "load_agent",
    "save_agent",
    "MiniBatch",
    "RolloutBuffer",
    "Transition",
    "concatenate_minibatches",
    "sample_minibatch",
    "discounted_returns",
    "generalized_advantages",
    "paper_advantages",
    "ActionScaler",
    "ActorCritic",
    "PPOAgent",
    "PPOConfig",
    "UpdateStats",
    "ConstantSchedule",
    "CosineSchedule",
    "ExponentialSchedule",
    "LinearSchedule",
    "Schedule",
    "apply_lr_schedule",
    "Trainer",
    "TrainerConfig",
    "TrainingResult",
    "VectorTrainer",
    "train_pricing_agent",
]
