"""Hyper-parameter schedules for training (lr / entropy / clip annealing).

Standard PPO practice anneals the learning rate and entropy bonus over
training. Schedules are plain callables ``fraction -> value`` where
``fraction`` is training progress in [0, 1]; the trainer applies them
between episodes via :func:`apply_lr_schedule`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.nn.optim import Optimizer

__all__ = [
    "Schedule",
    "ConstantSchedule",
    "LinearSchedule",
    "CosineSchedule",
    "ExponentialSchedule",
    "apply_lr_schedule",
]


class Schedule:
    """Interface: value as a function of training progress in [0, 1]."""

    def value(self, fraction: float) -> float:
        """The scheduled value at ``fraction`` of training elapsed."""
        raise NotImplementedError

    def __call__(self, fraction: float) -> float:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in [0, 1], got {fraction}"
            )
        return self.value(fraction)


@dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """Always the same value."""

    constant: float

    def value(self, fraction: float) -> float:
        return self.constant


@dataclass(frozen=True)
class LinearSchedule(Schedule):
    """Linear interpolation from ``start`` to ``end``."""

    start: float
    end: float

    def value(self, fraction: float) -> float:
        # Convex-combination form reaches the endpoints exactly.
        return (1.0 - fraction) * self.start + fraction * self.end


@dataclass(frozen=True)
class CosineSchedule(Schedule):
    """Cosine annealing from ``start`` to ``end``."""

    start: float
    end: float

    def value(self, fraction: float) -> float:
        cosine = 0.5 * (1.0 + math.cos(math.pi * fraction))
        return self.end + (self.start - self.end) * cosine


@dataclass(frozen=True)
class ExponentialSchedule(Schedule):
    """Geometric decay from ``start`` toward ``end`` with rate ``decay``.

    ``value(f) = end + (start − end) · decay^f`` — ``decay`` is the
    fraction of the gap remaining after the full run.
    """

    start: float
    end: float
    decay: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {self.decay}")

    def value(self, fraction: float) -> float:
        return self.end + (self.start - self.end) * self.decay**fraction


def apply_lr_schedule(
    optimizer: Optimizer, schedule: Schedule, fraction: float
) -> float:
    """Set the optimiser's learning rate from a schedule; returns it."""
    new_rate = schedule(fraction)
    if new_rate <= 0.0:
        raise ConfigurationError(
            f"schedule produced non-positive learning rate {new_rate}"
        )
    optimizer.learning_rate = float(new_rate)
    return optimizer.learning_rate
