"""Replay buffer for on-policy rollouts (Algorithm 1's ``BF``).

The paper stores transitions ``(o_k, p_k, R_k, o_{k+1})`` plus the data PPO
needs (log-prob and value at collection time), then samples random
mini-batches of size ``I`` for ``M`` epochs per update. Advantages and
value targets are computed when the buffer is *finalised* (end of rollout
segment), after which mini-batch sampling is allowed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drl.gae import discounted_returns, generalized_advantages
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "Transition",
    "MiniBatch",
    "RolloutBuffer",
    "concatenate_minibatches",
    "sample_minibatch",
]


@dataclass(frozen=True)
class Transition:
    """One stored step of the POMDP."""

    observation: np.ndarray
    action: np.ndarray
    reward: float
    log_prob: float
    value: float


@dataclass(frozen=True)
class MiniBatch:
    """A sampled training batch (arrays stacked along axis 0)."""

    observations: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray


class RolloutBuffer:
    """Accumulates one rollout segment, then serves mini-batches.

    Lifecycle: ``add`` × K → ``finalize(bootstrap_value)`` →
    ``minibatches`` / ``sample`` → ``clear``.
    """

    def __init__(self, *, gamma: float, lam: float = 1.0) -> None:
        if not 0.0 <= gamma <= 1.0 or not 0.0 <= lam <= 1.0:
            raise ConfigurationError(
                f"gamma and lam must be in [0, 1], got {gamma}, {lam}"
            )
        self._gamma = gamma
        self._lam = lam
        self._transitions: list[Transition] = []
        self._advantages: np.ndarray | None = None
        self._returns: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._transitions)

    @property
    def finalized(self) -> bool:
        """Whether advantages/returns have been computed."""
        return self._advantages is not None

    def add(
        self,
        observation: np.ndarray,
        action: np.ndarray,
        reward: float,
        log_prob: float,
        value: float,
    ) -> None:
        """Store one transition (must precede :meth:`finalize`)."""
        if self.finalized:
            raise ConfigurationError("buffer already finalized; clear() first")
        self._transitions.append(
            Transition(
                observation=np.asarray(observation, dtype=np.float64).copy(),
                action=np.asarray(action, dtype=np.float64).copy(),
                reward=float(reward),
                log_prob=float(log_prob),
                value=float(value),
            )
        )

    def finalize(self, bootstrap_value: float = 0.0) -> None:
        """Compute advantages (GAE) and value targets for the segment."""
        if not self._transitions:
            raise ConfigurationError("cannot finalize an empty buffer")
        rewards = np.array([t.reward for t in self._transitions])
        values = np.array([t.value for t in self._transitions])
        self._advantages = generalized_advantages(
            rewards, values, self._gamma, self._lam, bootstrap_value=bootstrap_value
        )
        self._returns = discounted_returns(
            rewards, self._gamma, bootstrap_value=bootstrap_value
        )

    def clear(self) -> None:
        """Drop all stored data (start of a new segment)."""
        self._transitions.clear()
        self._advantages = None
        self._returns = None

    def _stacked(self) -> MiniBatch:
        if not self.finalized:
            raise ConfigurationError("finalize() before sampling")
        assert self._advantages is not None and self._returns is not None
        return MiniBatch(
            observations=np.stack([t.observation for t in self._transitions]),
            actions=np.stack([t.action for t in self._transitions]),
            old_log_probs=np.array([t.log_prob for t in self._transitions]),
            advantages=self._advantages.copy(),
            returns=self._returns.copy(),
        )

    def stacked(self) -> MiniBatch:
        """The whole finalized segment as one stacked :class:`MiniBatch`.

        The vector trainer pools the per-env segments with
        :func:`concatenate_minibatches` before sampling, so the batch axis
        of every stored array is the shared contract between the scalar and
        batched update paths.
        """
        return self._stacked()

    def sample(self, batch_size: int, seed: SeedLike = None) -> MiniBatch:
        """One random mini-batch of ``batch_size`` (with replacement if the
        buffer is smaller) — Algorithm 1, line 12."""
        return sample_minibatch(self._stacked(), batch_size, seed=seed)

    def minibatches(self, batch_size: int, seed: SeedLike = None) -> list[MiniBatch]:
        """Shuffle the segment and split into consecutive mini-batches
        (the common PPO epoch schedule; covers every sample once)."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        full = self._stacked()
        rng = as_generator(seed)
        count = len(self._transitions)
        order = rng.permutation(count)
        batches = []
        for start in range(0, count, batch_size):
            idx = order[start : start + batch_size]
            batches.append(
                MiniBatch(
                    observations=full.observations[idx],
                    actions=full.actions[idx],
                    old_log_probs=full.old_log_probs[idx],
                    advantages=full.advantages[idx],
                    returns=full.returns[idx],
                )
            )
        return batches


def concatenate_minibatches(batches: list[MiniBatch]) -> MiniBatch:
    """Concatenate stacked segments along the batch axis.

    Used by the vector trainer to pool the ``E`` per-env rollout segments
    into one sampling population before the PPO epochs — the batched
    analogue of sampling from a single env's buffer.
    """
    if not batches:
        raise ConfigurationError("need at least one mini-batch to concatenate")
    if len(batches) == 1:
        return batches[0]
    return MiniBatch(
        observations=np.concatenate([b.observations for b in batches]),
        actions=np.concatenate([b.actions for b in batches]),
        old_log_probs=np.concatenate([b.old_log_probs for b in batches]),
        advantages=np.concatenate([b.advantages for b in batches]),
        returns=np.concatenate([b.returns for b in batches]),
    )


def sample_minibatch(
    full: MiniBatch, batch_size: int, seed: SeedLike = None
) -> MiniBatch:
    """Draw one random mini-batch from a stacked segment (Algorithm 1, line 12).

    Sampling is uniform over the population, with replacement only when the
    population is smaller than ``batch_size`` — the same rule (and the same
    RNG consumption) as :meth:`RolloutBuffer.sample`, so a one-env pool
    reproduces the scalar trainer's draws exactly.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    rng = as_generator(seed)
    count = len(full.observations)
    replace = batch_size > count
    idx = rng.choice(count, size=batch_size, replace=replace)
    return MiniBatch(
        observations=full.observations[idx],
        actions=full.actions[idx],
        old_log_probs=full.old_log_probs[idx],
        advantages=full.advantages[idx],
        returns=full.returns[idx],
    )
