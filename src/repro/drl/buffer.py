"""Replay buffer for on-policy rollouts (Algorithm 1's ``BF``).

The paper stores transitions ``(o_k, p_k, R_k, o_{k+1})`` plus the data PPO
needs (log-prob and value at collection time), then samples random
mini-batches of size ``I`` for ``M`` epochs per update. Advantages and
value targets are computed when the buffer is *finalised* (end of rollout
segment), after which mini-batch sampling is allowed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drl.gae import (
    discounted_returns,
    discounted_returns_batch,
    generalized_advantages,
    generalized_advantages_batch,
)
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "Transition",
    "MiniBatch",
    "RolloutBuffer",
    "VectorRolloutStorage",
    "concatenate_minibatches",
    "sample_minibatch",
]


@dataclass(frozen=True)
class Transition:
    """One stored step of the POMDP."""

    observation: np.ndarray
    action: np.ndarray
    reward: float
    log_prob: float
    value: float


@dataclass(frozen=True)
class MiniBatch:
    """A sampled training batch (arrays stacked along axis 0)."""

    observations: np.ndarray
    actions: np.ndarray
    old_log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray


class RolloutBuffer:
    """Accumulates one rollout segment, then serves mini-batches.

    Lifecycle: ``add`` × K → ``finalize(bootstrap_value)`` →
    ``minibatches`` / ``sample`` → ``clear``.
    """

    def __init__(self, *, gamma: float, lam: float = 1.0) -> None:
        if not 0.0 <= gamma <= 1.0 or not 0.0 <= lam <= 1.0:
            raise ConfigurationError(
                f"gamma and lam must be in [0, 1], got {gamma}, {lam}"
            )
        self._gamma = gamma
        self._lam = lam
        self._transitions: list[Transition] = []
        self._advantages: np.ndarray | None = None
        self._returns: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._transitions)

    @property
    def finalized(self) -> bool:
        """Whether advantages/returns have been computed."""
        return self._advantages is not None

    def add(
        self,
        observation: np.ndarray,
        action: np.ndarray,
        reward: float,
        log_prob: float,
        value: float,
    ) -> None:
        """Store one transition (must precede :meth:`finalize`)."""
        if self.finalized:
            raise ConfigurationError("buffer already finalized; clear() first")
        self._transitions.append(
            Transition(
                observation=np.asarray(observation, dtype=np.float64).copy(),
                action=np.asarray(action, dtype=np.float64).copy(),
                reward=float(reward),
                log_prob=float(log_prob),
                value=float(value),
            )
        )

    def finalize(self, bootstrap_value: float = 0.0) -> None:
        """Compute advantages (GAE) and value targets for the segment."""
        if not self._transitions:
            raise ConfigurationError("cannot finalize an empty buffer")
        rewards = np.array([t.reward for t in self._transitions])
        values = np.array([t.value for t in self._transitions])
        self._advantages = generalized_advantages(
            rewards, values, self._gamma, self._lam, bootstrap_value=bootstrap_value
        )
        self._returns = discounted_returns(
            rewards, self._gamma, bootstrap_value=bootstrap_value
        )

    def clear(self) -> None:
        """Drop all stored data (start of a new segment)."""
        self._transitions.clear()
        self._advantages = None
        self._returns = None

    def _stacked(self) -> MiniBatch:
        if not self.finalized:
            raise ConfigurationError("finalize() before sampling")
        assert self._advantages is not None and self._returns is not None
        return MiniBatch(
            observations=np.stack([t.observation for t in self._transitions]),
            actions=np.stack([t.action for t in self._transitions]),
            old_log_probs=np.array([t.log_prob for t in self._transitions]),
            advantages=self._advantages.copy(),
            returns=self._returns.copy(),
        )

    def stacked(self) -> MiniBatch:
        """The whole finalized segment as one stacked :class:`MiniBatch`.

        The vector trainer pools the per-env segments with
        :func:`concatenate_minibatches` before sampling, so the batch axis
        of every stored array is the shared contract between the scalar and
        batched update paths.
        """
        return self._stacked()

    def sample(self, batch_size: int, seed: SeedLike = None) -> MiniBatch:
        """One random mini-batch of ``batch_size`` (with replacement if the
        buffer is smaller) — Algorithm 1, line 12."""
        return sample_minibatch(self._stacked(), batch_size, seed=seed)

    def minibatches(self, batch_size: int, seed: SeedLike = None) -> list[MiniBatch]:
        """Shuffle the segment and split into consecutive mini-batches
        (the common PPO epoch schedule; covers every sample once)."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        full = self._stacked()
        rng = as_generator(seed)
        count = len(self._transitions)
        order = rng.permutation(count)
        batches = []
        for start in range(0, count, batch_size):
            idx = order[start : start + batch_size]
            batches.append(
                MiniBatch(
                    observations=full.observations[idx],
                    actions=full.actions[idx],
                    old_log_probs=full.old_log_probs[idx],
                    advantages=full.advantages[idx],
                    returns=full.returns[idx],
                )
            )
        return batches


class VectorRolloutStorage:
    """Preallocated ``(E, K, ·)`` rollout scratch for the vector trainer.

    The per-env :class:`RolloutBuffer` path allocates a ``Transition``
    (five array copies) per env per round and re-stacks everything at
    finalize time. This storage instead writes each round's batched
    arrays into fixed columns of preallocated buffers and computes
    advantages/returns for all envs in one vectorised pass
    (:func:`generalized_advantages_batch`). The pooled minibatch it
    produces is bitwise-identical to
    ``concatenate_minibatches([b.stacked() for b in buffers])`` over
    per-env buffers fed the same rounds: C-order ``(E, K, ·) →
    (E·K, ·)`` reshape reproduces the env-major concatenation order
    exactly, and the batched GAE is bitwise the scalar recursion per row.

    Lifecycle: ``add_round`` × K → ``pooled(bootstrap_values)`` →
    ``clear``. The pooled batch may alias the internal buffers — consume
    it before the next ``add_round``/``clear`` (the trainer's update
    epochs sample copies out of it, so this holds by construction).
    """

    def __init__(
        self,
        num_envs: int,
        capacity: int,
        obs_dim: int,
        action_dim: int,
        *,
        gamma: float,
        lam: float = 1.0,
    ) -> None:
        if num_envs < 1 or capacity < 1 or obs_dim < 1 or action_dim < 1:
            raise ConfigurationError(
                "num_envs, capacity, obs_dim and action_dim must be >= 1, "
                f"got {num_envs}, {capacity}, {obs_dim}, {action_dim}"
            )
        if not 0.0 <= gamma <= 1.0 or not 0.0 <= lam <= 1.0:
            raise ConfigurationError(
                f"gamma and lam must be in [0, 1], got {gamma}, {lam}"
            )
        self._gamma = gamma
        self._lam = lam
        self._observations = np.empty((num_envs, capacity, obs_dim))
        self._actions = np.empty((num_envs, capacity, action_dim))
        self._rewards = np.empty((num_envs, capacity))
        self._log_probs = np.empty((num_envs, capacity))
        self._values = np.empty((num_envs, capacity))
        self._count = 0

    @property
    def num_envs(self) -> int:
        """Number of concurrent env slots."""
        return self._observations.shape[0]

    @property
    def capacity(self) -> int:
        """Maximum rounds per segment."""
        return self._observations.shape[1]

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        """Start a new segment (buffers are reused, not reallocated)."""
        self._count = 0

    def add_round(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        log_probs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Store one lockstep round of ``(E, ·)`` batched arrays."""
        if self._count >= self.capacity:
            raise ConfigurationError(
                f"storage full: capacity {self.capacity} rounds; pooled()/clear() first"
            )
        column = self._count
        self._observations[:, column, :] = observations
        self._actions[:, column, :] = actions
        self._rewards[:, column] = rewards
        self._log_probs[:, column] = log_probs
        self._values[:, column] = values
        self._count += 1

    def pooled(self, bootstrap_values: np.ndarray) -> MiniBatch:
        """The segment as one env-major pooled :class:`MiniBatch`."""
        if self._count == 0:
            raise ConfigurationError("cannot pool an empty storage")
        count = self._count
        num_envs = self.num_envs
        rewards = self._rewards[:, :count]
        values = self._values[:, :count]
        advantages = generalized_advantages_batch(
            rewards,
            values,
            self._gamma,
            self._lam,
            bootstrap_values=bootstrap_values,
        )
        returns = discounted_returns_batch(
            rewards, self._gamma, bootstrap_values=bootstrap_values
        )
        pooled_rows = num_envs * count
        return MiniBatch(
            observations=self._observations[:, :count, :].reshape(pooled_rows, -1),
            actions=self._actions[:, :count, :].reshape(pooled_rows, -1),
            old_log_probs=self._log_probs[:, :count].reshape(pooled_rows),
            advantages=advantages.reshape(pooled_rows),
            returns=returns.reshape(pooled_rows),
        )


def concatenate_minibatches(batches: list[MiniBatch]) -> MiniBatch:
    """Concatenate stacked segments along the batch axis.

    Used by the vector trainer to pool the ``E`` per-env rollout segments
    into one sampling population before the PPO epochs — the batched
    analogue of sampling from a single env's buffer.
    """
    if not batches:
        raise ConfigurationError("need at least one mini-batch to concatenate")
    if len(batches) == 1:
        return batches[0]
    return MiniBatch(
        observations=np.concatenate([b.observations for b in batches]),
        actions=np.concatenate([b.actions for b in batches]),
        old_log_probs=np.concatenate([b.old_log_probs for b in batches]),
        advantages=np.concatenate([b.advantages for b in batches]),
        returns=np.concatenate([b.returns for b in batches]),
    )


def sample_minibatch(
    full: MiniBatch, batch_size: int, seed: SeedLike = None
) -> MiniBatch:
    """Draw one random mini-batch from a stacked segment (Algorithm 1, line 12).

    Sampling is uniform over the population, with replacement only when the
    population is smaller than ``batch_size`` — the same rule (and the same
    RNG consumption) as :meth:`RolloutBuffer.sample`, so a one-env pool
    reproduces the scalar trainer's draws exactly.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    rng = as_generator(seed)
    count = len(full.observations)
    replace = batch_size > count
    idx = rng.choice(count, size=batch_size, replace=replace)
    # np.take gathers the same rows as fancy indexing (identical values)
    # with less per-call overhead — this runs once per PPO epoch.
    return MiniBatch(
        observations=np.take(full.observations, idx, axis=0),
        actions=np.take(full.actions, idx, axis=0),
        old_log_probs=np.take(full.old_log_probs, idx, axis=0),
        advantages=np.take(full.advantages, idx, axis=0),
        returns=np.take(full.returns, idx, axis=0),
    )
