"""Fused (graph-free) execution of the actor-critic training hot path.

The autograd engine in ``nn/tensor.py`` is the bitwise ground truth for
the PPO update, but building and walking its graph dominates the training
wall clock: one fig2-style update allocates ~50 Tensor nodes and runs a
Python closure per node per backward. This module replays the *same*
arithmetic — every forward op and every pull-back expression, in the same
association order — as straight array code over the :data:`repro.backend.xp`
seam, writing gradients directly into a :class:`repro.nn.optim.FlatOptimizer`'s
contiguous gradient buffer.

Bitwise contract (pinned by ``tests/test_drl_fused.py`` and the backend
conformance suite):

- :meth:`FusedActorCritic.act_batch` / :meth:`value_batch` reproduce
  ``ActorCritic.act_batch`` / ``PPOAgent.value_batch`` exactly, including
  RNG consumption (one Gaussian block per call);
- :meth:`FusedActorCritic.update` reproduces ``PPOAgent.update`` exactly:
  identical ``UpdateStats`` and identical post-step parameters. The only
  subtlety is gradient-accumulation order at shared graph nodes; the one
  node with three incoming contributions is ``log_std``, whose autograd
  accumulation order (log-prob's ``exp(-log_std)`` path, then its
  ``-log_std`` term, then the entropy head) is replicated literally.

Only the exact architecture ``ActorCritic`` builds — alternating
Linear/Tanh trunk, Linear heads, free ``log_std`` — is supported;
:meth:`FusedActorCritic.compile` returns ``None`` for anything else and
callers fall back to the graph path.
"""

from __future__ import annotations

from repro.backend import xp

from repro.errors import ConfigurationError
from repro.nn.distributions import _LOG_SQRT_2PI
from repro.nn.modules import Linear, Tanh
from repro.nn.optim import FlatOptimizer
from repro.utils.rng import SeedLike, as_generator

__all__ = ["FusedActorCritic"]

# ``UpdateStats`` lives in repro.drl.ppo, which imports this module —
# resolved lazily on the first update and cached to keep the hot loop free
# of repeated imports.
_UPDATE_STATS = None


class FusedActorCritic:
    """Graph-free twin of an :class:`repro.drl.policy.ActorCritic`.

    Holds references to the network's parameter *tensors* (not their data
    arrays), so weight updates and ``load_state_dict`` re-binds are always
    visible — every call reads ``parameter.data`` afresh.
    """

    def __init__(self, network, trunk_linears: list[Linear]) -> None:
        self._network = network
        self._trunk = [(layer.weight, layer.bias) for layer in trunk_linears]
        self._actor = (network.actor_head.weight, network.actor_head.bias)
        self._critic = (network.critic_head.weight, network.critic_head.bias)
        self._log_std = network.log_std
        self.obs_dim = int(network.obs_dim)
        self.action_dim = int(network.action_dim)

    @classmethod
    def compile(cls, network) -> "FusedActorCritic | None":
        """Build a fused twin, or ``None`` if the architecture differs
        from the canonical alternating Linear/Tanh ``ActorCritic``."""
        trunk = getattr(getattr(network, "trunk", None), "_layers", None)
        actor = getattr(network, "actor_head", None)
        critic = getattr(network, "critic_head", None)
        log_std = getattr(network, "log_std", None)
        if (
            not trunk
            or len(trunk) % 2 != 0
            or not isinstance(actor, Linear)
            or not isinstance(critic, Linear)
            or critic.out_features != 1
            or log_std is None
            or getattr(log_std, "ndim", None) != 1
            or not getattr(log_std, "requires_grad", False)
        ):
            return None
        linears: list[Linear] = []
        for layer, expected in zip(trunk, [Linear, Tanh] * (len(trunk) // 2)):
            if not isinstance(layer, expected):
                return None
            if isinstance(layer, Linear):
                linears.append(layer)
        fused = cls(network, linears)
        # The flat optimizer and the fused backward both rely on the
        # canonical parameter order; verify by identity.
        expected_params = [log_std]
        for weight, bias in fused._trunk:
            expected_params += [weight, bias]
        expected_params += [*fused._actor, *fused._critic]
        if [id(p) for p in network.parameters()] != [id(p) for p in expected_params]:
            return None
        return fused

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    def _check_observations(self, obs) -> None:
        if obs.ndim != 2 or obs.shape[1] != self.obs_dim:
            raise ConfigurationError(
                f"expected observations of shape (batch, {self.obs_dim}), "
                f"got {obs.shape}"
            )

    def _forward(self, obs):
        """Trunk + heads; returns (linear inputs, tanh outputs, mean, values).

        ``inputs[i]``/``outs[i]`` are the i-th trunk Linear's input and the
        following Tanh's output — retained for the backward pass.
        """
        inputs, outs = [], []
        x = obs
        for weight, bias in self._trunk:
            inputs.append(x)
            x = xp.tanh(x @ weight.data + bias.data)
            outs.append(x)
        actor_w, actor_b = self._actor
        critic_w, critic_b = self._critic
        mean = x @ actor_w.data + actor_b.data
        vpre = x @ critic_w.data + critic_b.data
        values = xp.squeeze(vpre, axis=-1)
        return inputs, outs, mean, values

    def _log_prob_data(self, actions, mean):
        """Data-path replica of ``DiagonalGaussian.log_prob`` internals."""
        log_std = self._log_std.data
        inv_std = xp.exp(-log_std)
        standardized = (actions - mean) * inv_std
        per_dim = standardized * standardized * (-0.5) - log_std - _LOG_SQRT_2PI
        return inv_std, standardized, per_dim.sum(axis=-1)

    def act_batch(
        self,
        observations,
        *,
        seed: SeedLike = None,
        deterministic: bool = False,
    ):
        """Bitwise twin of ``ActorCritic.act_batch`` (no graph, no Tensor)."""
        rng = as_generator(seed)
        obs = xp.asarray(observations, dtype=xp.float64)
        self._check_observations(obs)
        _, _, mean, values = self._forward(obs)
        if deterministic:
            raws = mean.copy()
        else:
            # exp once per action dim, not per (batch, dim) copy — the
            # broadcast multiply pairs the identical operands elementwise,
            # so the sampled prices carry the exact same bits.
            std = xp.exp(self._log_std.data)
            raws = mean + std * rng.normal(size=mean.shape)
        _, _, log_probs = self._log_prob_data(raws, mean)
        return raws, log_probs, values

    def value_batch(self, observations):
        """Bitwise twin of ``PPOAgent.value_batch``."""
        obs = xp.asarray(observations, dtype=xp.float64)
        self._check_observations(obs)
        return self._forward(obs)[3]

    # ------------------------------------------------------------------ #
    # fused PPO update
    # ------------------------------------------------------------------ #
    def update(self, optimizer: FlatOptimizer, config, batch):
        """One PPO step, bitwise-equal to ``PPOAgent.update``.

        Gradients are written straight into ``optimizer.grad_views`` and
        applied with one :meth:`FlatOptimizer.fused_step` (which also does
        the global-norm clip). The parameters' ``.grad`` attributes are
        not populated.
        """
        global _UPDATE_STATS
        if _UPDATE_STATS is None:
            from repro.drl.ppo import UpdateStats

            _UPDATE_STATS = UpdateStats

        cfg = config
        advantages = batch.advantages.astype(xp.float64)
        if cfg.normalize_advantages and advantages.size > 1:
            std = advantages.std()
            advantages = (advantages - advantages.mean()) / (std + 1e-8)

        obs = xp.asarray(batch.observations, dtype=xp.float64)
        self._check_observations(obs)
        actions = xp.asarray(batch.actions, dtype=xp.float64)
        old_log_probs = xp.asarray(batch.old_log_probs, dtype=xp.float64)
        returns = xp.asarray(batch.returns, dtype=xp.float64)

        # ---------------- forward (data path of PPOAgent.update) -------- #
        inputs, outs, mean, values = self._forward(obs)
        features = outs[-1]
        if actions.shape != mean.shape:
            raise ValueError(
                f"actions shape {actions.shape} != mean shape {mean.shape}"
            )
        batch_size = obs.shape[0]
        inv_b = 1.0 / batch_size
        inv_std, standardized, log_probs = self._log_prob_data(actions, mean)

        ratio = xp.exp(log_probs - old_log_probs)  # Eq. (17)
        unclipped = ratio * advantages
        clip_lo, clip_hi = 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon
        clipped_ratio = xp.clip(ratio, clip_lo, clip_hi)
        clipped = clipped_ratio * advantages
        surrogate = xp.minimum(unclipped, clipped)
        policy_objective = surrogate.sum() * (1.0 / batch_size)  # Eq. (15)
        vdiff = values - returns
        vsq = vdiff**2.0
        value_loss = vsq.sum() * (1.0 / batch_size)  # Eq. (16)
        log_std = self._log_std.data
        action_dim = mean.shape[1]
        per_dim_entropy = log_std + (0.5 + _LOG_SQRT_2PI)
        entropy_value = (per_dim_entropy + xp.zeros(mean.shape)).sum(
            axis=-1
        ).sum() * (1.0 / batch_size)

        # ---------------- backward (closure-for-closure replica) -------- #
        # Loss seed 1.0; constant scalar gradients stay Python floats —
        # scalar·array is elementwise-identical to the autograd
        # constant-array·array products.
        g_surr = -1.0 * (1.0 / batch_size)
        self_smaller = unclipped < clipped
        tie = unclipped == clipped
        inside = (ratio >= clip_lo) & (ratio <= clip_hi)
        g_unclipped = g_surr * (self_smaller + 0.5 * tie)
        g_clipped = g_surr * (~self_smaller & ~tie) + g_surr * 0.5 * tie
        # ratio's two contributions, unclipped path first (autograd order;
        # two-way float addition is commutative so order is cosmetic here).
        g_ratio = g_unclipped * advantages + (g_clipped * advantages) * inside
        g_log_probs = g_ratio * ratio
        # Contiguous copy: autograd accumulates a copy before the axis-0
        # reduction below, and reduction order is part of the bitwise
        # contract. (A one-dim action space needs no broadcast pass — the
        # expanded column already has the target shape.)
        expanded = xp.expand_dims(g_log_probs, -1)
        if expanded.shape != (batch_size, action_dim):
            expanded = xp.broadcast_to(expanded, (batch_size, action_dim))
        g_per_dim = expanded.copy()
        g_m1 = g_per_dim * (-0.5)
        g_std_half = g_m1 * standardized
        g_standardized = g_std_half + g_std_half  # shared self·self node
        g_diff = g_standardized * inv_std
        g_mean = -g_diff

        g_vsq = (1.0 * cfg.value_coef) * (1.0 / batch_size)
        # The power rule's ``vdiff ** 1.0`` is ``vdiff`` bit for bit
        # (IEEE 754 pow with exponent 1 is the identity) — skip the pass.
        g_vdiff = (g_vsq * 2.0) * vdiff
        g_vpre = xp.expand_dims(g_vdiff, -1)

        views = optimizer.grad_views
        actor_w, _ = self._actor
        critic_w, _ = self._critic
        base = 1 + 2 * len(self._trunk)
        views[base][...] = features.T @ g_mean  # actor weight
        views[base + 1][...] = g_mean.sum(axis=0)  # actor bias
        views[base + 2][...] = features.T @ g_vpre  # critic weight
        views[base + 3][...] = g_vpre.sum(axis=0)  # critic bias

        # log_std: three contributions, in autograd's accumulation order —
        # exp(-log_std) path, log-prob's -log_std term, entropy head.
        g_inv_std = (g_standardized * (actions - mean)).sum(axis=0)
        g_ls_a = -(g_inv_std * inv_std)
        g_ls_b = -(g_per_dim.sum(axis=0))
        g_entropy = (-1.0 * cfg.entropy_coef) * (1.0 / batch_size)
        g_ls_c = xp.full((batch_size, action_dim), g_entropy).sum(axis=0)
        views[0][...] = (g_ls_a + g_ls_b) + g_ls_c

        # Trunk: actor contribution accumulates before critic (autograd
        # order; two-way addition, so again cosmetic).
        g_features = g_mean @ actor_w.data.T + g_vpre @ critic_w.data.T
        grad = g_features
        for index in range(len(self._trunk) - 1, -1, -1):
            weight, _ = self._trunk[index]
            g_pre = grad * (1.0 - outs[index] ** 2)
            views[1 + 2 * index][...] = inputs[index].T @ g_pre
            views[2 + 2 * index][...] = g_pre.sum(axis=0)
            if index > 0:
                grad = g_pre @ weight.data.T

        norm = optimizer.fused_step(
            max_grad_norm=cfg.max_grad_norm, from_views=True
        )

        clip_fraction = float(xp.mean(xp.abs(ratio - 1.0) > cfg.clip_epsilon))
        approx_kl = float(xp.mean(old_log_probs - log_probs))
        return _UPDATE_STATS(
            policy_loss=float(-policy_objective),
            value_loss=float(value_loss),
            entropy=float(entropy_value),
            clip_fraction=clip_fraction,
            approx_kl=approx_kl,
            grad_norm=float(norm),
        )
