"""Algorithm 1: the DRL training loop for VT migration pricing.

Faithful to the paper's pseudo-code: for each of ``E`` episodes, reset the
environment and replay buffer; each round, the MSP observes ``o_k``, its
actor proposes a price, followers best-respond inside the environment, the
Eq.-12 reward is computed, and the transition is stored. Every ``I`` rounds
the agent performs ``M`` mini-batch updates sampled from the buffer.

Returns a :class:`TrainingResult` with per-episode return and utility
traces — the series plotted in Fig. 2(a) and Fig. 2(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.drl.buffer import (
    RolloutBuffer,
    VectorRolloutStorage,
    concatenate_minibatches,
    sample_minibatch,
)
from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig, UpdateStats
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "TrainerConfig",
    "TrainingResult",
    "Trainer",
    "VectorTrainer",
    "train_pricing_agent",
]


@dataclass(frozen=True)
class TrainerConfig:
    """Algorithm-1 knobs (paper defaults from Sec. V-A)."""

    num_episodes: int = 500
    update_interval: int = 20
    """Rounds between updates, ``I`` (Algorithm 1 line 10)."""
    update_epochs: int = 10
    """Mini-batch updates per trigger, ``M`` (line 11)."""
    batch_size: int = 20
    """Mini-batch size ``|I|`` (line 12)."""
    gamma: float = 0.99
    gae_lambda: float = 1.0
    """λ = 1 reproduces the paper's Eq. (18) advantage exactly."""

    def __post_init__(self) -> None:
        for name in ("num_episodes", "update_interval", "update_epochs", "batch_size"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if not 0.0 <= self.gamma <= 1.0 or not 0.0 <= self.gae_lambda <= 1.0:
            raise ConfigurationError("gamma and gae_lambda must be in [0, 1]")


@dataclass
class TrainingResult:
    """Per-episode training traces.

    Attributes:
        episode_returns: Σ rewards per episode — Fig. 2(a)'s series.
        episode_best_utilities: episode-end ``U_best`` — Fig. 2(b)'s series.
        episode_mean_utilities: mean per-round MSP utility per episode.
        episode_final_prices: deterministic (mode) price after each episode.
        update_stats: diagnostics of every gradient step.
    """

    episode_returns: list[float] = field(default_factory=list)
    episode_best_utilities: list[float] = field(default_factory=list)
    episode_mean_utilities: list[float] = field(default_factory=list)
    episode_final_prices: list[float] = field(default_factory=list)
    update_stats: list[UpdateStats] = field(default_factory=list)

    @property
    def num_episodes(self) -> int:
        """Episodes trained."""
        return len(self.episode_returns)

    def tail_mean_best_utility(self, fraction: float = 0.1) -> float:
        """Mean episode-best utility over the last ``fraction`` of training
        (the converged value compared against the Stackelberg optimum)."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(len(self.episode_best_utilities) * fraction))
        return float(np.mean(self.episode_best_utilities[-count:]))


class Trainer:
    """Runs Algorithm 1 against any env following the base protocol."""

    def __init__(
        self,
        env,
        agent: PPOAgent,
        scaler: ActionScaler,
        config: TrainerConfig | None = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        self.env = env
        self.agent = agent
        self.scaler = scaler
        self.config = config if config is not None else TrainerConfig()
        self._rng = as_generator(seed)
        self.buffer = RolloutBuffer(
            gamma=self.config.gamma, lam=self.config.gae_lambda
        )

    def _update_from_buffer(self, bootstrap_value: float) -> None:
        cfg = self.config
        self.buffer.finalize(bootstrap_value)
        for _ in range(cfg.update_epochs):
            batch = self.buffer.sample(cfg.batch_size, seed=self._rng)
            self.result.update_stats.append(self.agent.update(batch))
        self.buffer.clear()

    def train(self) -> TrainingResult:
        """Run the full Algorithm-1 loop; returns the training traces."""
        cfg = self.config
        self.result = TrainingResult()
        for _episode in range(cfg.num_episodes):
            observation = self.env.reset()
            self.buffer.clear()
            episode_return = 0.0
            utilities: list[float] = []
            best_utility = float("-inf")
            done = False
            round_index = 0
            while not done:
                raw_action, log_prob, value = self.agent.act(
                    observation, seed=self._rng
                )
                price = float(self.scaler.to_price(raw_action[0]))
                next_observation, reward, done, info = self.env.step(price)
                self.buffer.add(observation, raw_action, reward, log_prob, value)
                episode_return += reward
                utilities.append(float(info["msp_utility"]))
                best_utility = max(best_utility, float(info["best_utility"]))
                observation = next_observation
                round_index += 1
                # Algorithm 1 line 10: update every I rounds (and flush at
                # episode end so no transition is wasted).
                if round_index % cfg.update_interval == 0 or done:
                    bootstrap = 0.0 if done else self.agent.value(observation)
                    self._update_from_buffer(bootstrap)
            self.result.episode_returns.append(episode_return)
            self.result.episode_best_utilities.append(best_utility)
            self.result.episode_mean_utilities.append(float(np.mean(utilities)))
            self.result.episode_final_prices.append(self.evaluate_price())
        return self.result

    def evaluate_price(self) -> float:
        """The deterministic (distribution-mode) price at the current
        parameters, evaluated on a fresh observation."""
        observation = self.env.reset()
        raw_action, _, _ = self.agent.act(
            observation, seed=self._rng, deterministic=True
        )
        return float(self.scaler.to_price(raw_action[0]))


class VectorTrainer:
    """Algorithm 1 over a batch of envs stepped in lockstep.

    One iteration of the outer loop collects ``E`` episodes concurrently
    from a :class:`repro.env.VectorMigrationEnv` (or anything exposing
    ``num_envs`` plus batched ``reset``/``step``): the actor-critic forward
    pass, the reward bookkeeping, and the bootstrap values all run on the
    ``(E, ·)`` batch axis, while each env keeps its private RNG stream and
    :class:`RolloutBuffer` so GAE sees per-episode trajectories. At update
    time the ``E`` finalized segments are pooled into one sampling
    population.

    The member envs need not share a market: a *heterogeneous* fleet (one
    env per market, built with ``VectorMigrationEnv.from_markets``) trains
    **one** policy across all member markets — each iteration's pooled
    update mixes every market's transitions, and the env batch still
    solves its whole market stack in one vectorised pass per round. The
    action scaler spans the fleet's price envelope; each member env clamps
    to its own ``[C, p_max]``.

    RNG contract: the trainer's own stream is consumed in the same order as
    the scalar :class:`Trainer` (one Gaussian noise block per round, one
    ``choice`` per PPO epoch), so an ``E = 1`` vector run is bit-compatible
    with the scalar trainer on the same seeds — verified by a regression
    test.

    The result traces carry ``E`` entries per outer iteration, appended in
    env order, so ``TrainingResult.num_episodes`` counts *episodes*, not
    iterations.
    """

    def __init__(
        self,
        venv,
        agent: PPOAgent,
        scaler: ActionScaler,
        config: TrainerConfig | None = None,
        *,
        seed: SeedLike = None,
        preallocate: bool = True,
    ) -> None:
        if getattr(venv, "num_envs", 0) < 1:
            raise ConfigurationError(
                "VectorTrainer needs a vector env exposing num_envs >= 1"
            )
        self.venv = venv
        self.agent = agent
        self.scaler = scaler
        self.config = config if config is not None else TrainerConfig()
        self._rng = as_generator(seed)
        self._preallocate = bool(preallocate)
        # Built lazily on the first round (needs the obs/action widths);
        # reused — never reallocated — across segments and iterations.
        self._storage: VectorRolloutStorage | None = None
        self.buffers = [
            RolloutBuffer(gamma=self.config.gamma, lam=self.config.gae_lambda)
            for _ in range(venv.num_envs)
        ]

    def _ensure_storage(self, obs_dim: int, action_dim: int) -> VectorRolloutStorage:
        if self._storage is None:
            self._storage = VectorRolloutStorage(
                self.venv.num_envs,
                self.config.update_interval,
                obs_dim,
                action_dim,
                gamma=self.config.gamma,
                lam=self.config.gae_lambda,
            )
        return self._storage

    def _update_from_buffers(self, bootstrap_values: np.ndarray) -> None:
        cfg = self.config
        if self._preallocate and self._storage is not None:
            pool = self._storage.pooled(bootstrap_values)
        else:
            for buffer, bootstrap in zip(self.buffers, bootstrap_values):
                buffer.finalize(float(bootstrap))
            pool = concatenate_minibatches([b.stacked() for b in self.buffers])
        for _ in range(cfg.update_epochs):
            batch = sample_minibatch(pool, cfg.batch_size, seed=self._rng)
            self.result.update_stats.append(self.agent.update(batch))
        if self._preallocate and self._storage is not None:
            self._storage.clear()
        else:
            for buffer in self.buffers:
                buffer.clear()

    def train(self) -> TrainingResult:
        """Run the batched Algorithm-1 loop; returns the training traces."""
        cfg = self.config
        num_envs = self.venv.num_envs
        self.result = TrainingResult()
        for _iteration in range(cfg.num_episodes):
            observations = self.venv.reset()
            if self._preallocate:
                if self._storage is not None:
                    self._storage.clear()
            else:
                for buffer in self.buffers:
                    buffer.clear()
            episode_returns = np.zeros(num_envs)
            utilities: list[list[float]] = [[] for _ in range(num_envs)]
            best_utilities = np.full(num_envs, float("-inf"))
            done = False
            round_index = 0
            while not done:
                raws, log_probs, values = self.agent.act_batch(
                    observations, seed=self._rng
                )
                prices = self.scaler.to_price(raws[:, 0])
                next_observations, rewards, dones, infos = self.venv.step(prices)
                if self._preallocate:
                    storage = self._ensure_storage(
                        np.asarray(observations).shape[1], raws.shape[1]
                    )
                    storage.add_round(observations, raws, rewards, log_probs, values)
                    for e in range(num_envs):
                        utilities[e].append(float(infos[e]["msp_utility"]))
                else:
                    for e in range(num_envs):
                        self.buffers[e].add(
                            observations[e], raws[e], rewards[e], log_probs[e], values[e]
                        )
                        utilities[e].append(float(infos[e]["msp_utility"]))
                episode_returns += rewards
                best_utilities = np.maximum(
                    best_utilities, [float(i["best_utility"]) for i in infos]
                )
                observations = next_observations
                round_index += 1
                done = bool(dones.all())
                if round_index % cfg.update_interval == 0 or done:
                    bootstraps = (
                        np.zeros(num_envs)
                        if done
                        else self.agent.value_batch(observations)
                    )
                    self._update_from_buffers(bootstraps)
            for e in range(num_envs):
                self.result.episode_returns.append(float(episode_returns[e]))
                self.result.episode_best_utilities.append(float(best_utilities[e]))
                self.result.episode_mean_utilities.append(
                    float(np.mean(utilities[e]))
                )
            self.result.episode_final_prices.extend(self.evaluate_prices())
        return self.result

    def evaluate_prices(self) -> list[float]:
        """Deterministic (distribution-mode) prices at the current
        parameters, one per env, evaluated on fresh observations."""
        observations = self.venv.reset()
        raws, _, _ = self.agent.act_batch(
            observations, seed=self._rng, deterministic=True
        )
        return [float(p) for p in self.scaler.to_price(raws[:, 0])]


def train_pricing_agent(
    env,
    *,
    trainer_config: TrainerConfig | None = None,
    ppo_config: PPOConfig | None = None,
    hidden_sizes: tuple[int, ...] = (64, 64),
    seed: SeedLike = None,
    fused: bool = True,
    preallocate: bool = True,
) -> tuple[PPOAgent, TrainingResult, ActionScaler]:
    """Convenience constructor + training run for the pricing POMDP.

    Builds the shared-trunk actor-critic sized to ``env``, trains with
    Algorithm 1, and returns ``(agent, result, scaler)``. Vector envs
    (anything exposing ``num_envs``) are routed through
    :class:`VectorTrainer`, which collects all their episodes concurrently;
    plain envs keep the scalar :class:`Trainer`.

    ``fused`` and ``preallocate`` toggle the fused (graph-free) PPO hot
    path and the preallocated rollout scratch; both default on and both
    are bitwise-equal to the seed reference paths (the training benchmark
    turns them off to measure the speedup).
    """
    rng = as_generator(seed)
    network = ActorCritic(env.observation_dim, hidden_sizes, seed=rng)
    agent = PPOAgent(network, ppo_config, fused=fused)
    scaler = ActionScaler(low=env.action_low, high=env.action_high)
    if hasattr(env, "num_envs"):
        trainer = VectorTrainer(
            env, agent, scaler, trainer_config, seed=rng, preallocate=preallocate
        )
    else:
        trainer = Trainer(env, agent, scaler, trainer_config, seed=rng)
    result = trainer.train()
    return agent, result, scaler
