"""Agent checkpointing: persist a trained pricing policy to disk.

Saves the actor-critic parameters plus the metadata needed to rebuild the
agent (architecture, action bounds, history length) into a single ``.npz``
file, so a policy trained once can price markets in later processes —
the deployment path a real MSP would use.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

import numpy as np

from repro.drl.policy import ActionScaler, ActorCritic
from repro.drl.ppo import PPOAgent, PPOConfig
from repro.errors import ConfigurationError, NeuralNetworkError

__all__ = ["save_agent", "load_agent"]

_FORMAT_VERSION = 1
_META_KEY = "__checkpoint_meta__"


def save_agent(
    path: str | Path,
    agent: PPOAgent,
    scaler: ActionScaler,
    *,
    history_length: int | None = None,
) -> Path:
    """Write the agent's parameters and architecture to ``path`` (.npz).

    The archive is written through a per-writer-unique temporary file,
    ``fsync``-ed, and renamed into place, so a checkpoint parked as a
    cache/queue artifact is all-or-nothing: a worker SIGKILLed mid-save
    leaves no truncated ``.npz`` for a resumed run to trip over, and two
    at-least-once workers saving the same job's checkpoint cannot
    interleave writes.
    """
    network = agent.network
    meta = {
        "format_version": _FORMAT_VERSION,
        "obs_dim": network.obs_dim,
        "action_dim": network.action_dim,
        "hidden_sizes": _hidden_sizes(network),
        "action_low": scaler.low,
        "action_high": scaler.high,
        "history_length": history_length,
        "learning_rate": agent.config.learning_rate,
        "clip_epsilon": agent.config.clip_epsilon,
    }
    arrays = {
        name.replace(".", "__"): tensor
        for name, tensor in network.state_dict().items()
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    target = Path(path)
    # np.savez appends .npz to bare paths; normalise up front so the
    # atomic rename lands on the final name.
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    temporary = target.with_name(
        f"{target.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    )
    try:
        with open(temporary, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, target)
    finally:
        temporary.unlink(missing_ok=True)
    return target


def load_agent(path: str | Path) -> tuple[PPOAgent, ActionScaler, dict]:
    """Rebuild ``(agent, scaler, metadata)`` from a checkpoint file.

    The npz archive is opened under a context manager so the file handle
    is closed before returning — a leaked handle keeps the checkpoint
    undeletable on platforms with mandatory file locking, breaking cache
    cleanup. The stored parameter set must match the rebuilt network
    exactly; any mismatch raises :class:`ConfigurationError` naming the
    offending keys.
    """
    with np.load(Path(path)) as archive:
        if _META_KEY not in archive:
            raise ConfigurationError(f"{path} is not a repro agent checkpoint")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint version {meta.get('format_version')!r}"
            )
        # Materialise the arrays while the archive is open; NpzFile reads
        # lazily from the underlying zip.
        state = {
            key.replace("__", "."): archive[key]
            for key in archive.files
            if key != _META_KEY
        }
    network = ActorCritic(
        obs_dim=int(meta["obs_dim"]),
        hidden_sizes=tuple(int(h) for h in meta["hidden_sizes"]),
        action_dim=int(meta["action_dim"]),
        seed=0,
    )
    expected = set(network.state_dict())
    stored = set(state)
    if expected != stored:
        missing = sorted(expected - stored)
        unexpected = sorted(stored - expected)
        raise ConfigurationError(
            f"checkpoint {path} does not match the rebuilt "
            f"{meta['hidden_sizes']} network: missing parameters "
            f"{missing}, unexpected parameters {unexpected}"
        )
    try:
        network.load_state_dict(state)
    except NeuralNetworkError as exc:
        raise ConfigurationError(
            f"checkpoint {path} parameters do not fit the rebuilt "
            f"architecture: {exc}"
        ) from exc
    agent = PPOAgent(
        network,
        PPOConfig(
            learning_rate=float(meta["learning_rate"]),
            clip_epsilon=float(meta["clip_epsilon"]),
        ),
    )
    scaler = ActionScaler(
        low=float(meta["action_low"]), high=float(meta["action_high"])
    )
    return agent, scaler, meta


def _hidden_sizes(network: ActorCritic) -> list[int]:
    sizes: list[int] = []
    for layer in network.trunk._layers:  # noqa: SLF001 - introspection
        out_features = getattr(layer, "out_features", None)
        if out_features is not None:
            sizes.append(int(out_features))
    return sizes
